# Convenience entry points for the reproduction repo.
#
#   make test      - fast tier-1 run (skips the paper-reproduction benchmarks)
#   make bench     - the paper-reproduction benchmarks only
#   make replan    - the incremental re-planning equivalence sweep
#   make migration - the migration + transition-aware planning suite
#   make scenarios - the generated straggler-scenario suite
#   make gate      - run the planner hot-path benchmark and gate it against
#                    the committed baseline (one-liner perf gate)
#   make gate-update - refresh the committed baseline from a fresh run
#   make gate-transition - run the transition study and gate it against the
#                    committed (deterministic) baseline
#   make gate-transition-update - refresh the transition-study baseline
#   make gate-scenarios - run the generated-trace scenario sweep and gate it
#                    against the committed (deterministic) baseline
#   make gate-scenarios-update - refresh the scenario-sweep baseline

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench replan migration scenarios gate gate-update \
	gate-transition gate-transition-update gate-scenarios \
	gate-scenarios-update

test:
	$(PYTHON) -m pytest -x -q -m "not bench"

bench:
	$(PYTHON) -m pytest -q -m bench -s

replan:
	$(PYTHON) -m pytest -q -m replan

migration:
	$(PYTHON) -m pytest -q -m migration

scenarios:
	$(PYTHON) -m pytest -q -m "scenario and not bench"

gate:
	$(PYTHON) -m repro.experiments.planner_hotpath --gate

gate-update:
	$(PYTHON) -m repro.experiments.planner_hotpath --update

gate-transition:
	$(PYTHON) -m repro.experiments.transition_study --gate

gate-transition-update:
	$(PYTHON) -m repro.experiments.transition_study --update

gate-scenarios:
	$(PYTHON) -m repro.experiments.scenario_sweep --gate

gate-scenarios-update:
	$(PYTHON) -m repro.experiments.scenario_sweep --update
