# Convenience entry points for the reproduction repo.
#
#   make test    - fast tier-1 run (skips the paper-reproduction benchmarks)
#   make bench   - the paper-reproduction benchmarks only
#   make replan  - the incremental re-planning equivalence sweep
#   make gate    - run the planner hot-path benchmark and gate it against
#                  the committed baseline (one-liner perf gate)
#   make gate-update - refresh the committed baseline from a fresh run

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench replan gate gate-update

test:
	$(PYTHON) -m pytest -x -q -m "not bench"

bench:
	$(PYTHON) -m pytest -q -m bench -s

replan:
	$(PYTHON) -m pytest -q -m replan

gate:
	$(PYTHON) -m repro.experiments.planner_hotpath --gate

gate-update:
	$(PYTHON) -m repro.experiments.planner_hotpath --update
