# Convenience entry points for the reproduction repo.
#
#   make test      - fast tier-1 run (skips the paper-reproduction benchmarks)
#   make bench     - the paper-reproduction benchmarks only
#   make replan    - the incremental re-planning equivalence sweep
#   make migration - the migration + transition-aware planning suite
#   make scenarios - the generated straggler-scenario suite
#   make sweep     - the candidate-sweep engine suite (executors + warm cache)
#   make service   - the planning-service suite (admission control, deadlines,
#                    fault injection)
#   make speculative - the speculative pre-solving suite (hit bit-identity,
#                    staleness invalidation, fault isolation)
#   make whatif    - the what-if replay suite (session recording, edit
#                    replays, leave-one-out attribution)
#   make gate      - run the planner hot-path benchmark and gate it against
#                    the committed baseline (one-liner perf gate)
#   make gate-update - refresh the committed baseline from a fresh run
#   make gate-hotpath-16k - only the 16384-GPU rows of the hot-path gate
#                    (numpy kernels: cold plan < 1s, repair < 50ms,
#                    plans bit-identical to the python reference)
#   make gate-hotpath-64k - only the 65536-GPU rows of the hot-path gate
#                    (numpy kernels: cold plan < 5s, repair < 150ms;
#                    the python reference arm is skipped above
#                    --reference-max-gpus, so these rows gate on the
#                    absolute ceilings alone)
#   make gate-transition - run the transition study and gate it against the
#                    committed (deterministic) baseline
#   make gate-transition-update - refresh the transition-study baseline
#   make gate-scenarios - run the generated-trace scenario sweep and gate it
#                    against the committed (deterministic) baseline
#   make gate-scenarios-update - refresh the scenario-sweep baseline
#   make gate-presets - run the generated-trace preset scalability sweep and
#                    gate its (deterministic) winners against the baseline
#   make gate-presets-update - refresh the preset-scalability baseline
#   make gate-service - run the planning-service latency benchmark and gate
#                    its deterministic fields against the committed baseline
#   make gate-service-update - refresh the service-latency baseline
#   make gate-speculative - run the service-latency benchmark and gate only
#                    its speculative arm (hit rate, repairs served from the
#                    speculation cache, spec p50/p99) against the baseline
#   make gate-speculative-update - refresh the same baseline (shared with
#                    gate-service; one benchmark feeds both gates)
#   make gate-whatif - record the two what-if preset sessions, verify the
#                    no-edit replays are bit-identical, and gate the
#                    leave-one-out attribution rankings against the
#                    committed (deterministic) baseline
#   make gate-whatif-update - refresh the what-if baseline
#   make gate-all  - every committed gate (hotpath incl. the 16384- and
#                    65536-GPU rows, transition, scenarios, Table-5
#                    presets, service latency incl. the speculative arm,
#                    what-if replay) plus the fast tier-1 run

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench replan migration scenarios sweep service speculative \
	whatif gate gate-update \
	gate-hotpath-16k gate-hotpath-64k gate-transition \
	gate-transition-update gate-scenarios \
	gate-scenarios-update gate-presets gate-presets-update \
	gate-service gate-service-update gate-speculative \
	gate-speculative-update gate-whatif gate-whatif-update gate-all

test:
	$(PYTHON) -m pytest -x -q -m "not bench"

bench:
	$(PYTHON) -m pytest -q -m bench -s

replan:
	$(PYTHON) -m pytest -q -m replan

migration:
	$(PYTHON) -m pytest -q -m migration

scenarios:
	$(PYTHON) -m pytest -q -m "scenario and not bench"

sweep:
	$(PYTHON) -m pytest -q -m "sweep and not bench"

service:
	$(PYTHON) -m pytest -q -m "service and not bench"

speculative:
	$(PYTHON) -m pytest -q -m "speculative and not bench"

whatif:
	$(PYTHON) -m pytest -q -m "whatif and not bench"

gate:
	$(PYTHON) -m repro.experiments.planner_hotpath --gate

gate-update:
	$(PYTHON) -m repro.experiments.planner_hotpath --update

gate-hotpath-16k:
	$(PYTHON) -m repro.experiments.planner_hotpath --gate --only 16384

gate-hotpath-64k:
	$(PYTHON) -m repro.experiments.planner_hotpath --gate --only 65536

gate-transition:
	$(PYTHON) -m repro.experiments.transition_study --gate

gate-transition-update:
	$(PYTHON) -m repro.experiments.transition_study --update

gate-scenarios:
	$(PYTHON) -m repro.experiments.scenario_sweep --gate

gate-scenarios-update:
	$(PYTHON) -m repro.experiments.scenario_sweep --update

gate-presets:
	$(PYTHON) -m repro.experiments.planning_scalability --gate

gate-presets-update:
	$(PYTHON) -m repro.experiments.planning_scalability --update

gate-service:
	$(PYTHON) -m repro.experiments.service_latency --gate

gate-service-update:
	$(PYTHON) -m repro.experiments.service_latency --update

gate-speculative:
	$(PYTHON) -m repro.experiments.service_latency --gate --speculative

gate-speculative-update:
	$(PYTHON) -m repro.experiments.service_latency --update

gate-whatif:
	$(PYTHON) -m repro.experiments.whatif --gate

gate-whatif-update:
	$(PYTHON) -m repro.experiments.whatif --update

gate-all: gate gate-hotpath-64k gate-transition gate-scenarios \
	gate-presets gate-service gate-speculative gate-whatif test
