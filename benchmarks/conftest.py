"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the formatted rows/series so that ``pytest benchmarks/
--benchmark-only -s`` doubles as the reproduction report.  Each experiment
runs exactly once per benchmark (``rounds=1``): the measured quantity is the
wall-clock cost of regenerating the artefact, not a micro-benchmark.

All tests in this directory carry the ``bench`` marker (added below), so
``pytest -m bench`` runs only the reproduction benchmarks and
``pytest -m "not bench"`` gives a fast tier-1 run; the default invocation
still collects everything.
"""

from __future__ import annotations

import os

import pytest

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__)) + os.sep


def pytest_collection_modifyitems(items):
    """Mark every test collected from this directory as a benchmark."""
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.bench)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              iterations=1, rounds=1, warmup_rounds=0)


@pytest.fixture
def once():
    """Fixture exposing the run-once helper to benchmark modules."""
    return run_once
