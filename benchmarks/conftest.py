"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints the formatted rows/series so that ``pytest benchmarks/
--benchmark-only -s`` doubles as the reproduction report.  Each experiment
runs exactly once per benchmark (``rounds=1``): the measured quantity is the
wall-clock cost of regenerating the artefact, not a micro-benchmark.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              iterations=1, rounds=1, warmup_rounds=0)


@pytest.fixture
def once():
    """Fixture exposing the run-once helper to benchmark modules."""
    return run_once
