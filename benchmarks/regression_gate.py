#!/usr/bin/env python
"""Planning-time regression gate.

Compares a fresh ``BENCH_planner_hotpath.json`` (written by
``pytest benchmarks/test_bench_planner_hotpath.py``) against the committed
baseline under ``benchmarks/baselines/`` and fails when the overhauled
planner's time regresses by more than ``--tolerance`` (default 20%) on any
scenario, or when a run reports non-identical plans.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_planner_hotpath.py
    PYTHONPATH=src python benchmarks/regression_gate.py

Exit code 0 means within tolerance; 1 means regression (or missing files).
Absolute timings are machine-dependent, so the gate is a tool for comparing
runs on the *same* machine (e.g. before/after a planner change in CI), not
across hardware; refresh the baseline with ``--update`` after an accepted
change.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))

from repro.experiments.planner_hotpath import read_hotpath_json  # noqa: E402

DEFAULT_FRESH = os.path.join(HERE, "BENCH_planner_hotpath.json")
DEFAULT_BASELINE = os.path.join(HERE, "baselines",
                                "BENCH_planner_hotpath.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", default=DEFAULT_FRESH,
                        help="fresh benchmark JSON (default: %(default)s)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative planning-time regression "
                             "(default: 20%%)")
    parser.add_argument("--min-delta", type=float, default=0.010,
                        help="absolute slack in seconds added to the limit "
                             "so timer jitter on millisecond-scale rows "
                             "does not trip the relative gate "
                             "(default: %(default)ss)")
    parser.add_argument("--update", action="store_true",
                        help="copy the fresh run over the baseline and exit")
    args = parser.parse_args(argv)

    if not os.path.exists(args.fresh):
        print(f"regression_gate: fresh run not found at {args.fresh}; "
              "run the hot-path benchmark first")
        return 1
    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"regression_gate: baseline updated from {args.fresh}")
        return 0
    if not os.path.exists(args.baseline):
        print(f"regression_gate: no baseline at {args.baseline}; "
              "seed it with --update")
        return 1

    fresh = read_hotpath_json(args.fresh)
    baseline = read_hotpath_json(args.baseline)

    failures = []
    for base_row in baseline.rows:
        try:
            fresh_row = fresh.row(base_row.scenario)
        except KeyError:
            failures.append(f"{base_row.scenario}: missing from fresh run")
            continue
        if not fresh_row.plans_identical:
            failures.append(f"{base_row.scenario}: before/after plans differ")
        limit = max(base_row.after_seconds * (1.0 + args.tolerance),
                    base_row.after_seconds + args.min_delta)
        status = "ok" if fresh_row.after_seconds <= limit else "REGRESSED"
        print(f"{base_row.scenario:>16}: baseline "
              f"{base_row.after_seconds:.3f}s, fresh "
              f"{fresh_row.after_seconds:.3f}s (limit {limit:.3f}s) "
              f"[{status}]")
        if fresh_row.after_seconds > limit:
            failures.append(
                f"{base_row.scenario}: planning time "
                f"{fresh_row.after_seconds:.3f}s exceeds "
                f"{limit:.3f}s (baseline {base_row.after_seconds:.3f}s "
                f"+ {args.tolerance:.0%})"
            )

    if failures:
        print("regression_gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("regression_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
