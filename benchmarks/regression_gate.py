#!/usr/bin/env python
"""Planning-time regression gate (thin wrapper).

Compares a fresh ``BENCH_planner_hotpath.json`` (written by
``pytest benchmarks/test_bench_planner_hotpath.py``) against the committed
baseline under ``benchmarks/baselines/`` and fails when the overhauled
planner's time regresses by more than ``--tolerance`` (default 20%) on any
scenario, or when a run reports non-identical plans (for the incremental
rows: a repair outside the engine's epsilon).  The 16384- and 65536-GPU
kernel rows additionally carry absolute latency ceilings (see
``repro.experiments.planner_hotpath.ABSOLUTE_CEILINGS``); pass
``--only 65536`` to gate just the 64k rows, matching
``make gate-hotpath-64k`` (above ``--reference-max-gpus`` the python
reference arm is skipped, so those rows gate on the ceilings alone).

When a fresh ``BENCH_transition_study.json`` exists (written by ``pytest
benchmarks/test_bench_transition_study.py``), the transition-study gate
runs too: unlike the timing rows it is fully deterministic, so it checks
the study's invariants (strictly lower migration downtime, step regression
within epsilon) and exact agreement with its committed baseline (see
``python -m repro.experiments.transition_study --gate``).  Likewise for a
fresh ``BENCH_scenario_sweep.json`` (written by ``pytest
benchmarks/test_bench_scenario_sweep.py``): the generated-trace scenario
sweep is gated on its invariants (overlapped migration strictly reduces
downtime on the frequent-small-events and node-correlated presets, step
regression within epsilon of a cold plan) plus exact baseline agreement
(``python -m repro.experiments.scenario_sweep --gate``).  A fresh
``BENCH_service_latency.json`` (written by ``pytest
benchmarks/test_bench_service_latency.py``) adds the planning-service
gate: deterministic fields (repair counts, coalesce ratios, plan
equality, queue waits, service counters, and the speculative arm's hit
rate / served-repair counts / plan bit-identity) must agree with the
committed baseline exactly, wall-clock latency percentiles — including
the speculative arm's served p50/p99 — within the timing tolerance
(``python -m repro.experiments.service_latency --gate``; the
speculative slice alone gates via ``--gate --speculative``, see
``make gate-speculative``).  A fresh ``BENCH_whatif.json`` (written by
``pytest benchmarks/test_bench_whatif.py``) adds the what-if replay
gate: each recorded preset session's no-edit replay must be
bit-identical to the live run, and the leave-one-out culprit/event
rankings — GPU identities exactly, lost seconds to 1e-6 — must agree
with the committed baseline (``python -m repro.experiments.whatif
--gate``, see ``make gate-whatif``).

The comparison logic lives in
:func:`repro.experiments.planner_hotpath.gate_against_baseline`; this
script only parses arguments.  ``python -m
repro.experiments.planner_hotpath --gate`` additionally *runs* the
benchmark first, making the whole perf gate a one-liner (see also
``make gate``).

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_planner_hotpath.py
    PYTHONPATH=src python benchmarks/regression_gate.py

Exit code 0 means within tolerance; 1 means regression (or missing files).
Absolute timings are machine-dependent, so the gate is a tool for comparing
runs on the *same* machine (e.g. before/after a planner change in CI), not
across hardware; refresh the baseline with ``--update`` after an accepted
change.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))

from repro.experiments.planner_hotpath import gate_against_baseline  # noqa: E402
from repro.experiments.scenario_sweep import (  # noqa: E402
    gate_against_baseline as gate_scenario_sweep,
)
from repro.experiments.service_latency import (  # noqa: E402
    gate_against_baseline as gate_service_latency,
)
from repro.experiments.transition_study import (  # noqa: E402
    gate_against_baseline as gate_transition_study,
)
from repro.experiments.whatif import (  # noqa: E402
    gate_against_baseline as gate_whatif,
)

DEFAULT_FRESH = os.path.join(HERE, "BENCH_planner_hotpath.json")
DEFAULT_BASELINE = os.path.join(HERE, "baselines",
                                "BENCH_planner_hotpath.json")
TRANSITION_FRESH = os.path.join(HERE, "BENCH_transition_study.json")
TRANSITION_BASELINE = os.path.join(HERE, "baselines",
                                   "BENCH_transition_study.json")
SCENARIO_FRESH = os.path.join(HERE, "BENCH_scenario_sweep.json")
SCENARIO_BASELINE = os.path.join(HERE, "baselines",
                                 "BENCH_scenario_sweep.json")
SERVICE_FRESH = os.path.join(HERE, "BENCH_service_latency.json")
SERVICE_BASELINE = os.path.join(HERE, "baselines",
                                "BENCH_service_latency.json")
WHATIF_FRESH = os.path.join(HERE, "BENCH_whatif.json")
WHATIF_BASELINE = os.path.join(HERE, "baselines", "BENCH_whatif.json")


def reject_non_finite_json(paths) -> int:
    """Fail on gate files carrying the invalid-JSON ``NaN``/``Infinity``.

    ``json.dump`` emits those tokens for non-finite floats unless told
    otherwise (empty-sample percentiles are ``math.nan``), and strict
    parsers reject the file.  The experiment writers sanitize such values
    to ``null``; any baseline that still contains the tokens predates the
    fix and must be regenerated, so the gate refuses to compare it.
    """
    status = 0
    for path in paths:
        if not os.path.exists(path):
            continue

        def _reject(token, _path=path):
            raise ValueError(
                f"{_path} contains the non-JSON token {token!r}; "
                "regenerate it with the current writers (--update)")

        try:
            with open(path) as handle:
                json.load(handle, parse_constant=_reject)
        except ValueError as exc:
            print(f"regression_gate: {exc}")
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", default=DEFAULT_FRESH,
                        help="fresh benchmark JSON (default: %(default)s)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative planning-time regression "
                             "(default: 20%%)")
    parser.add_argument("--min-delta", type=float, default=0.010,
                        help="absolute slack in seconds added to the limit "
                             "so timer jitter on millisecond-scale rows "
                             "does not trip the relative gate "
                             "(default: %(default)ss)")
    parser.add_argument("--only", default=None,
                        help="restrict the hot-path gate to baseline "
                             "scenarios containing this substring "
                             "(e.g. 65536 for the 64k-GPU rows)")
    parser.add_argument("--update", action="store_true",
                        help="copy the fresh run over the baseline and exit")
    args = parser.parse_args(argv)

    if not os.path.exists(args.fresh):
        print(f"regression_gate: fresh run not found at {args.fresh}; "
              "run the hot-path benchmark first")
        return 1
    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"regression_gate: baseline updated from {args.fresh}")
        return 0
    if not os.path.exists(args.baseline):
        print(f"regression_gate: no baseline at {args.baseline}; "
              "seed it with --update")
        return 1
    status = reject_non_finite_json([
        args.fresh, args.baseline,
        TRANSITION_FRESH, TRANSITION_BASELINE,
        SCENARIO_FRESH, SCENARIO_BASELINE,
        SERVICE_FRESH, SERVICE_BASELINE,
        WHATIF_FRESH, WHATIF_BASELINE,
    ])
    if status:
        return status
    status = gate_against_baseline(args.fresh, args.baseline,
                                   args.tolerance, args.min_delta,
                                   only=args.only)
    if os.path.exists(TRANSITION_FRESH) and \
            os.path.exists(TRANSITION_BASELINE):
        status = max(status, gate_transition_study(TRANSITION_FRESH,
                                                   TRANSITION_BASELINE))
    if os.path.exists(SCENARIO_FRESH) and \
            os.path.exists(SCENARIO_BASELINE):
        status = max(status, gate_scenario_sweep(SCENARIO_FRESH,
                                                 SCENARIO_BASELINE))
    if os.path.exists(SERVICE_FRESH) and \
            os.path.exists(SERVICE_BASELINE):
        status = max(status, gate_service_latency(SERVICE_FRESH,
                                                  SERVICE_BASELINE))
    if os.path.exists(WHATIF_FRESH) and os.path.exists(WHATIF_BASELINE):
        status = max(status, gate_whatif(WHATIF_FRESH, WHATIF_BASELINE))
    return status


if __name__ == "__main__":
    sys.exit(main())
