"""Benchmark regenerating Figure 10 (Appendix A.1): cost-model validation by
exhaustive enumeration of layer and data partitionings."""

import pytest

from repro.experiments.costmodel_validation import (
    format_costmodel_validation,
    run_costmodel_validation,
)


@pytest.mark.benchmark(group="figure10")
def test_fig10_costmodel_enumeration(benchmark, once):
    result = once(benchmark, run_costmodel_validation)
    print("\n" + format_costmodel_validation(result))

    # The cost model's optimum must coincide with the enumerated optimum for
    # both the layer and the data partitioning sweeps (the paper's headline
    # finding for Appendix A.1).
    assert result.layer_optimum_coincides
    assert result.data_optimum_coincides

    # The estimated times must track the measured ones: the end-to-end time is
    # minimised where the straggling and non-straggling parts are balanced.
    best = min(result.layer_sweep, key=lambda p: p.actual_end_to_end)
    imbalance = abs(best.estimated_straggler_time - best.estimated_normal_time)
    worst = max(result.layer_sweep, key=lambda p: p.actual_end_to_end)
    worst_imbalance = abs(
        worst.estimated_straggler_time - worst.estimated_normal_time
    )
    assert imbalance < worst_imbalance
