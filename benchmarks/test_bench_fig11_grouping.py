"""Benchmark regenerating Figure 11 (Appendix B.7): Theorem 2 ranking of the
grouping possibilities after isolating a heavy straggler."""

import pytest

from repro.experiments.grouping_validation import (
    format_grouping_validation,
    run_grouping_validation,
)


@pytest.mark.benchmark(group="figure11")
def test_fig11_theorem2_validation(benchmark, once):
    result = once(benchmark, run_grouping_validation, "110b")
    print("\n" + format_grouping_validation(result))

    # Appendix B.7: splitting the 7 remaining GPUs into {4, 2, 1} admits six
    # possibilities.
    assert len(result.candidates) == 6

    # The Theorem 2 estimator must correlate with the simulated times: the
    # candidate it ranks best must simulate no worse than the one it ranks
    # worst, and the overall best simulated candidate must be within a few
    # percent of what the estimator picks.
    estimates = [c.estimated_relative_time for c in result.candidates]
    simulated = [c.simulated_step_time for c in result.candidates]
    best_by_estimate = min(range(6), key=lambda i: estimates[i])
    worst_by_estimate = max(range(6), key=lambda i: estimates[i])
    assert simulated[best_by_estimate] <= simulated[worst_by_estimate] + 1e-9
    assert simulated[best_by_estimate] <= min(simulated) * 1.05
