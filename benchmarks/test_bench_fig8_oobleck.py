"""Benchmark regenerating Figure 8: comparison with the fault-tolerant
baseline Oobleck on the 32B model."""

import pytest

from repro.experiments.oobleck_compare import (
    format_oobleck_comparison,
    run_oobleck_comparison,
)


@pytest.mark.benchmark(group="figure8")
def test_fig8_oobleck_comparison(benchmark, once):
    result = once(benchmark, run_oobleck_comparison, "32b")
    print("\n" + format_oobleck_comparison(result))

    # Oobleck trades training efficiency for fault tolerance: the paper
    # measures 1.82-2.49x slower than Malleus in every situation.
    for row in result.rows:
        assert row.slowdown > 1.3

    # Some transitions exceed Oobleck's pre-computed templates and force a
    # full restart, while Malleus only ever migrates.
    assert result.restart_transitions(), "expected at least one restart"
    assert result.migrate_transitions(), "expected at least one migration"
    for row in result.rows:
        assert row.malleus_adjustment != "restart"
        if row.oobleck_adjustment == "restart":
            assert row.oobleck_downtime > 10 * max(row.malleus_downtime, 0.1)
