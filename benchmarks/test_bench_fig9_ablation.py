"""Benchmark regenerating Figure 9: ablation of the four non-uniform
partitioning dimensions on the 110B model."""

import math

import pytest

from repro.experiments.ablation import format_ablation, run_ablation


@pytest.mark.benchmark(group="figure9")
def test_fig9_partitioning_ablation(benchmark, once):
    result = once(benchmark, run_ablation, "110b")
    print("\n" + format_ablation(result))

    for row in result.rows:
        # Every added non-uniform dimension must help (or at least not hurt)
        # compared to uniform Megatron, and the full planner must be close to
        # the best variant.
        assert row.layer_data <= row.megatron * 1.01
        assert row.full <= row.layer_data * 1.10
        assert row.full <= row.megatron
        assert not math.isinf(row.full)
        # The full planner lands reasonably close to the theoretic optimum.
        assert row.gap(row.full) < 0.35

    # The paper's key observation: once the stragglers spread over multiple
    # nodes the upper-level (device+stage) non-uniformity matters — the full
    # planner must not lose to the lower-level-only variant there.
    by_name = {row.scenario: row for row in result.rows}
    multi = by_name["three-nodes"]
    assert multi.full <= multi.layer_data * 1.05
