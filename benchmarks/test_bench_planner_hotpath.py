"""Benchmark for the planner hot-path overhaul and the incremental engine.

Runs the Table-5-scale scenarios with the pre-overhaul reference planner
(no cost-model caches, no pruning, legacy division kernels, eager plan
materialization) and with the overhauled defaults, asserting a >=5x
planning-time speedup on the largest configuration *and* bit-identical plan
quality.  The incremental rows measure the re-planning engine
(``repro.runtime.replan``) on single-GPU rate-shift events at 1024, 4096
and 8192 GPUs against a full warm re-plan, asserting the >=3x repair
speedup at the 1024-GPU Table-5 configuration with step times within the
engine's epsilon.  The fresh timings are written to
``BENCH_planner_hotpath.json`` next to this file; compare against the
committed baseline with::

    python benchmarks/regression_gate.py

or, as a self-contained one-liner that runs the benchmark first::

    python -m repro.experiments.planner_hotpath --gate
"""

import os

import pytest

from repro.experiments.planner_hotpath import (
    format_planner_hotpath,
    run_planner_hotpath,
    write_hotpath_json,
)

FRESH_JSON = os.path.join(os.path.dirname(__file__),
                          "BENCH_planner_hotpath.json")


@pytest.mark.benchmark(group="planner-hotpath")
def test_planner_hotpath_speedup(benchmark, once):
    result = once(benchmark, run_planner_hotpath)
    print("\n" + format_planner_hotpath(result))
    write_hotpath_json(result, FRESH_JSON)

    # Plan quality must be untouched on every scenario: same estimated step
    # time, same layer/micro-batch splits, same GPUs removed (for the
    # incremental rows: repaired step time within the engine's epsilon).
    for row in result.rows:
        assert row.plans_identical, row.scenario

    # The headline target: >=5x on the largest Table-5 configuration.
    large = result.row("1024 GPUs")
    assert large.speedup >= 5.0, format_planner_hotpath(result)

    # The small scenario must not regress either (generous floor: the 64-GPU
    # sweep is dominated by the ordering enumeration, which benefits less).
    small = result.row("64 GPUs (S3)")
    assert small.speedup >= 1.2, format_planner_hotpath(result)

    # Incremental re-planning: a single-GPU rate shift at the 1024-GPU
    # Table-5 configuration must repair >=3x faster than the (already
    # overhauled) full re-plan, and the past-the-paper scales must keep
    # widening the gap in absolute terms (8192 exists and stays sane).
    incremental = result.row("1024 GPUs (incremental)")
    assert incremental.speedup >= 3.0, format_planner_hotpath(result)
    for scale in (4096, 8192):
        row = result.row(f"{scale} GPUs (incremental)")
        assert row.speedup >= 3.0, format_planner_hotpath(result)
        assert row.after_seconds < 2.0, format_planner_hotpath(result)

    # Warm-start cache: a group_change repair sweep at the 64-GPU scale
    # (where the bounds cannot prune) must be measurably faster with
    # SweepConfig(warm_cache=True) than cold, at a step time within the
    # engine's epsilon of the cold sweep (asserted via plans_identical
    # above; measured: identical).
    warm = result.row("64 GPUs (warm-cache sweep)")
    assert warm.speedup >= 1.3, format_planner_hotpath(result)

    # Array-kernel rows: at 16384 GPUs the numpy backend must plan cold
    # in under a second and repair a single-GPU rate shift in under
    # 50 ms, with plans bit-identical to the python reference kernels
    # (covered by the plans_identical loop above).
    cold_16k = result.row("16384 GPUs (numpy cold)")
    assert cold_16k.after_seconds < 1.0, format_planner_hotpath(result)
    assert cold_16k.kernel_seconds, "cold run recorded no kernel timings"
    repair_16k = result.row("16384 GPUs (numpy repair)")
    assert repair_16k.after_seconds < 0.050, format_planner_hotpath(result)
