"""Benchmark for the planner hot-path overhaul.

Runs the Table-5-scale scenarios with the pre-overhaul reference planner
(no cost-model caches, no pruning, legacy division kernels, eager plan
materialization) and with the overhauled defaults, asserting a >=5x
planning-time speedup on the largest configuration *and* bit-identical plan
quality.  The fresh timings are written to ``BENCH_planner_hotpath.json``
next to this file; compare against the committed baseline with::

    python benchmarks/regression_gate.py
"""

import os

import pytest

from repro.experiments.planner_hotpath import (
    format_planner_hotpath,
    run_planner_hotpath,
    write_hotpath_json,
)

FRESH_JSON = os.path.join(os.path.dirname(__file__),
                          "BENCH_planner_hotpath.json")


@pytest.mark.benchmark(group="planner-hotpath")
def test_planner_hotpath_speedup(benchmark, once):
    result = once(benchmark, run_planner_hotpath)
    print("\n" + format_planner_hotpath(result))
    write_hotpath_json(result, FRESH_JSON)

    # Plan quality must be untouched on every scenario: same estimated step
    # time, same layer/micro-batch splits, same GPUs removed.
    for row in result.rows:
        assert row.plans_identical, row.scenario

    # The headline target: >=5x on the largest Table-5 configuration.
    large = result.row("1024 GPUs")
    assert large.speedup >= 5.0, format_planner_hotpath(result)

    # The small scenario must not regress either (generous floor: the 64-GPU
    # sweep is dominated by the ordering enumeration, which benefits less).
    small = result.row("64 GPUs (S3)")
    assert small.speedup >= 1.2, format_planner_hotpath(result)
