"""Ablation benchmark (§5.3): asynchronous vs synchronous re-planning vs the
restart-based alternative, measured as accumulated training downtime."""

import pytest

from repro.experiments.replanning import format_replanning, run_replanning_ablation


@pytest.mark.benchmark(group="replanning")
def test_replanning_overhead_ablation(benchmark, once):
    result = once(benchmark, run_replanning_ablation, "32b")
    print("\n" + format_replanning(result))

    asynchronous = result.variant("async re-planning")
    synchronous = result.variant("sync re-planning")
    restart = result.variant("restart-based (Megatron w/ Restart)")

    # Asynchronous re-planning hides the planning latency, so it stalls
    # training strictly less than synchronous re-planning...
    assert asynchronous.total_downtime < synchronous.total_downtime
    # ...and both are orders of magnitude cheaper than restarting, which pays
    # checkpoint save/load plus framework re-initialisation every time.
    assert restart.total_downtime > 10 * synchronous.total_downtime
    # Migration downtime stays in the seconds range across the whole trace.
    assert asynchronous.total_downtime < 60.0
