"""Ablation benchmark (§5.3): asynchronous vs synchronous re-planning vs the
restart-based alternative, measured as accumulated training downtime; plus
the incremental-repair engine's latency/quality comparison on the trace."""

import pytest

from repro.experiments.replanning import (
    format_incremental_comparison,
    format_replanning,
    run_incremental_comparison,
    run_replanning_ablation,
)


@pytest.mark.benchmark(group="replanning")
def test_incremental_vs_full_replanning(benchmark, once):
    result = once(benchmark, run_incremental_comparison, "32b")
    print("\n" + format_incremental_comparison(result))

    # Every situation change of the paper trace must be classified...
    assert result.rows
    assert all(row.event_kind for row in result.rows)
    # ...and the straggler events (no failures in this trace) must be
    # repaired incrementally, not routed through the full-planner fallback.
    assert result.repaired_rows() == result.rows
    # Repaired plans must match the full planner within the engine's
    # default epsilon (1%); in practice the bound sweep makes them exact.
    assert result.max_quality_gap <= 0.01
    # At the 32-GPU scale the sweep solves what the full planner solves, so
    # only parity is guaranteed; the latency win is asserted at the
    # 1024-GPU scale by the hot-path benchmark.
    assert result.total_incremental_time <= result.total_full_time * 2.0


@pytest.mark.benchmark(group="replanning")
def test_replanning_overhead_ablation(benchmark, once):
    result = once(benchmark, run_replanning_ablation, "32b")
    print("\n" + format_replanning(result))

    asynchronous = result.variant("async re-planning")
    synchronous = result.variant("sync re-planning")
    restart = result.variant("restart-based (Megatron w/ Restart)")

    # Asynchronous re-planning hides the planning latency, so it stalls
    # training strictly less than synchronous re-planning...
    assert asynchronous.total_downtime < synchronous.total_downtime
    # ...and both are orders of magnitude cheaper than restarting, which pays
    # checkpoint save/load plus framework re-initialisation every time.
    assert restart.total_downtime > 10 * synchronous.total_downtime
    # Migration downtime stays in the seconds range across the whole trace.
    assert asynchronous.total_downtime < 60.0
