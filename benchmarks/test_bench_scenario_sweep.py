"""Scenario-sweep benchmark: overlapped migration on generated regimes.

Runs the deterministic generated-trace sweep
(:mod:`repro.experiments.scenario_sweep`) and asserts its contract:

* overlapped migration's cumulative downtime is strictly lower than the
  baseline's on the ``frequent-small-events`` and ``node-correlated``
  presets and never higher anywhere;
* no arm's chosen plan regresses the planning objective beyond epsilon
  of a cold full plan for the identical rates.

Writes ``BENCH_scenario_sweep.json`` so ``benchmarks/regression_gate.py``
(or ``make gate-scenarios``) can compare the fully deterministic numbers
against the committed baseline exactly.
"""

import os

import pytest

from repro.experiments.scenario_sweep import (
    STRICT_PRESETS,
    check_sweep_invariants,
    format_scenario_sweep,
    run_scenario_sweep,
    write_sweep_json,
)

pytestmark = [pytest.mark.bench, pytest.mark.scenario]

HERE = os.path.dirname(os.path.abspath(__file__))
FRESH_PATH = os.path.join(HERE, "BENCH_scenario_sweep.json")


@pytest.fixture(scope="module")
def sweep_result():
    result = run_scenario_sweep()
    write_sweep_json(result, FRESH_PATH)
    return result


def test_contract_invariants_hold(sweep_result):
    failures = check_sweep_invariants(sweep_result)
    assert not failures, "\n".join(failures)


def test_overlap_strictly_reduces_downtime_on_strict_presets(sweep_result):
    for preset in STRICT_PRESETS:
        row = sweep_result.row(preset)
        assert row.arms["overlap"].downtime < \
            row.arms["baseline"].downtime - 1e-9


def test_overlap_never_increases_downtime(sweep_result):
    for row in sweep_result.rows:
        assert row.arms["overlap"].downtime <= \
            row.arms["baseline"].downtime + 1e-9


def test_hidden_time_accounts_for_the_saving(sweep_result):
    # Whatever downtime the overlap arm avoids relative to its own drain
    # is recorded as hidden time, never silently dropped.
    for row in sweep_result.rows:
        overlap = row.arms["overlap"]
        assert overlap.hidden_seconds >= -1e-9
        if overlap.migration_gb > 0:
            assert overlap.hidden_seconds + overlap.downtime > 0


def test_step_regression_within_epsilon(sweep_result):
    assert sweep_result.max_step_regression <= sweep_result.epsilon + 1e-9


def test_report_renders(sweep_result, capsys):
    print()
    print(format_scenario_sweep(sweep_result))
    assert "Scenario sweep" in capsys.readouterr().out
