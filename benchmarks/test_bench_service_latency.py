"""Planning-service benchmark: coalesced storms vs raw event processing.

Runs the service-latency benchmark
(:mod:`repro.experiments.service_latency`) and asserts its contract:

* on the ``flapping`` and ``frequent-small-events`` storm presets the
  service's repair count is at most half the raw (one-episode-per-event)
  repair count;
* the service's final plan equals what directly processing its coalesced
  deltas produces (the queueing machinery changes *when* planning runs,
  never *what* is planned);
* no planning episode raised and every admitted event settled;
* the speculative arm (PR 8) serves at least half of its repairs from
  the speculation cache, with a served p50 at least 10x below the plain
  service arm's and a final plan bit-identical to it.

Writes ``BENCH_service_latency.json`` so ``benchmarks/regression_gate.py``
(or ``make gate-service``) can compare the deterministic fields against
the committed baseline exactly (wall-clock latency percentiles are gated
with the usual timing tolerance instead).
"""

import os

import pytest

from repro.experiments.service_latency import (
    RATIO_BOUND,
    SPEC_HIT_BOUND,
    SPEC_SPEEDUP_BOUND,
    check_service_invariants,
    format_service_latency,
    run_service_latency,
    write_service_json,
)

pytestmark = [pytest.mark.bench, pytest.mark.service,
              pytest.mark.speculative]

HERE = os.path.dirname(os.path.abspath(__file__))
FRESH_PATH = os.path.join(HERE, "BENCH_service_latency.json")


@pytest.fixture(scope="module")
def latency_result():
    result = run_service_latency()
    write_service_json(result, FRESH_PATH)
    return result


def test_contract_invariants_hold(latency_result):
    failures = check_service_invariants(latency_result)
    assert not failures, "\n".join(failures)


def test_storms_coalesce_to_half_the_raw_repairs(latency_result):
    for row in latency_result.rows:
        assert row.raw_repairs > 0
        assert row.service_repairs <= RATIO_BOUND * row.raw_repairs + 1e-9


def test_final_plans_match_direct_processing(latency_result):
    assert latency_result.all_plans_match


def test_every_event_settles_without_a_fault(latency_result):
    for row in latency_result.rows:
        stats = row.stats
        assert stats["faults"] == 0
        assert stats["repairs"] + stats["no_ops"] == stats["episodes"] - \
            stats["deferrals"]
        assert stats["submitted"] == row.num_events


def test_speculative_arm_serves_majority_from_cache(latency_result):
    for row in latency_result.rows:
        assert row.spec_repairs > 0
        assert row.spec_hit_rate >= SPEC_HIT_BOUND
        assert row.spec_plans_match
        assert row.spec_latency_p50 * SPEC_SPEEDUP_BOUND <= row.latency_p50
        assert row.spec_stats["spec_hits"] == row.spec_served


def test_report_renders(latency_result, capsys):
    print()
    print(format_service_latency(latency_result))
    assert "Planning-service latency" in capsys.readouterr().out
