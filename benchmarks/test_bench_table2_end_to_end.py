"""Benchmark regenerating Table 2 / Figure 7: end-to-end step times.

For every model the harness drives Malleus, Megatron-LM and DeepSpeed (with
and without restarts) through the Normal/S1-S6 trace and prints the same
rows the paper's Table 2 reports: per-situation step times, theoretic
optimum, MFU in the straggler-free case and the geometric-mean improvement
of Malleus over every baseline.
"""

import pytest

from repro.experiments.end_to_end import format_end_to_end, run_end_to_end


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("model_name", ["32b", "70b", "110b"])
def test_table2_end_to_end(benchmark, once, model_name):
    result = once(benchmark, run_end_to_end, model_name)
    print("\n" + format_end_to_end(result))

    # Shape checks mirroring the paper's headline claims.
    normal = result.step_times["Malleus"]["Normal"]
    for situation in result.situations:
        if situation == "Normal":
            continue
        # Malleus never degrades by more than ~1.6x even in the worst
        # situation (the paper reports at most 1.34x on hardware).
        assert result.step_times["Malleus"][situation] < 1.8 * normal
        # and it beats both no-restart baselines in every straggler situation.
        assert result.improvement("Megatron-LM", situation) > 1.2
        assert result.improvement("DeepSpeed", situation) > 1.2

    assert result.average_improvement("Megatron-LM") > 1.5
    assert result.average_improvement("DeepSpeed") > 1.5
    # Restart-based baselines are better than no-restart ones but still lose.
    assert result.average_improvement("Megatron-LM w/ Restart") > 1.0
