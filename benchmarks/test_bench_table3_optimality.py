"""Benchmark regenerating Table 3: distance to the theoretic optimum and
cost-model estimation error."""

import pytest

from repro.experiments.optimality import format_optimality, run_optimality


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("model_name", ["32b", "110b"])
def test_table3_optimality(benchmark, once, model_name):
    result = once(benchmark, run_optimality, model_name)
    print("\n" + format_optimality(result))

    # The paper reports <= 10% optimality loss and <= 6.3% estimation error on
    # hardware; the analytic substrate stays within looser but firm bounds.
    assert result.worst_optimality_gap() < 0.30
    assert result.worst_estimation_error() < 0.30
    for row in result.rows:
        assert row.r_actual >= 1.0
        assert row.r_opt <= row.r_actual + 1e-9
