"""Benchmark regenerating Table 4: case studies of discovered plans."""

import pytest

from repro.experiments.case_studies import format_case_study, run_case_study


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("which", ["110b-s4", "32b-s5"])
def test_table4_case_study(benchmark, once, which):
    result = once(benchmark, run_case_study, which)
    print("\n" + format_case_study(result))

    plan = result.plan
    plan.validate()
    assert sum(result.micro_batches) == 64

    if which == "110b-s4":
        # The paper's plan isolates the per-node stragglers into small groups
        # and balances pipelines with different stage counts; structurally we
        # expect non-uniform TP degrees and a small layer share on stragglers.
        tp_degrees = {tp for sizes in result.group_sizes() for tp in sizes}
        assert len(tp_degrees) > 1
        assert result.straggler_layer_share() < 0.25
    else:
        # 32B under S5: the level-1 node keeps training with reduced work.
        level1_active = [g for g in range(8) if g in plan.active_gpus]
        assert level1_active
        slow_data = sum(
            p.num_micro_batches for p in plan.pipelines
            if any(g in p.gpu_ids for g in range(8))
        )
        fast_data = sum(
            p.num_micro_batches for p in plan.pipelines
            if not any(g in p.gpu_ids for g in range(8))
        )
        if fast_data:
            assert slow_data < fast_data
