"""Benchmark regenerating Table 5 (Appendix A.2): planning-time breakdown at
64 GPUs and at simulated 1024/4096/8192-GPU scales, with incremental-repair
timings for a single-GPU rate shift at every large scale, plus the
generated-trace preset sweep across sweep-engine configurations
(serial vs process backend, cold vs warm-start cache)."""

import pytest

from repro.experiments.planning_scalability import (
    format_planning_scalability,
    format_preset_scalability,
    run_planning_scalability,
    run_preset_scalability,
)


@pytest.mark.benchmark(group="table5")
def test_table5_planning_scalability(benchmark, once):
    result = once(benchmark, run_planning_scalability,
                  extra_scales=(4096, 8192), incremental_timings=True)
    print("\n" + format_planning_scalability(result))

    small = result.row("64 GPUs (S3)")
    large = result.row("1024 GPUs")
    assert small.feasible and large.feasible

    # The paper's observation: pipeline division dominates the planning time,
    # grouping is negligible, and even at 1024 GPUs the whole planning pass
    # finishes within a minute (ours is far faster thanks to the specialised
    # solvers, but the ordering of magnitudes must hold).
    assert small.breakdown["grouping"] < small.breakdown["total"] * 0.5
    assert large.total_time < 120.0
    assert large.total_time >= small.total_time * 0.5

    # Past-the-paper scales stay tractable and the incremental engine keeps
    # single-GPU events off the full re-plan path at every scale.
    for scale in (1024, 4096, 8192):
        row = result.row(f"{scale} GPUs")
        assert row.feasible
        assert row.total_time < 120.0
        assert row.incremental_event == "minor_rate_shift/rebalance"
        assert row.incremental_speedup >= 3.0
        assert row.incremental_seconds < 2.0


@pytest.mark.benchmark(group="table5")
def test_table5_preset_sweep_configurations(benchmark, once):
    """PR-4 scenario presets at 512-1024 GPU scale across sweep configs.

    Replays generated straggler traces through the repair engine under
    serial-cold, serial-warm and process-warm sweep configurations; every
    arm must stay feasible and select bit-identical winners event for
    event (the warm cache and the process backend change latency, never
    plans), and the warm arms must actually exercise the cache.
    """
    result = once(benchmark, run_preset_scalability,
                  presets=("frequent-small-events", "node-correlated"),
                  scales=(512, 1024))
    print("\n" + format_preset_scalability(result))

    for preset, num_gpus in result.arms():
        assert result.winners_identical(preset, num_gpus), \
            f"{preset}/{num_gpus}: sweep configs disagree on winners"
    for row in result.rows:
        assert row.events > 0
        assert all(step > 0 for step in row.event_steps), \
            f"{row.preset}/{row.num_gpus}/{row.config}"
        if row.config.endswith("-warm"):
            assert row.warm_hits > 0, \
                f"{row.preset}/{row.num_gpus}/{row.config}: cache never hit"
        else:
            assert row.warm_hits == 0
