"""Benchmark regenerating Tables 6 and 7 (Appendix A.3): the tuned parallel
configurations the restart-based baselines need after excluding nodes."""

import pytest

from repro.experiments.restart_configs import (
    format_restart_configs,
    run_restart_configs,
)


@pytest.mark.benchmark(group="tables6_7")
@pytest.mark.parametrize("model_name", ["32b", "70b", "110b"])
def test_tables6_7_restart_configs(benchmark, once, model_name):
    result = once(benchmark, run_restart_configs, model_name)
    print("\n" + format_restart_configs(result))

    assert len(result.rows) == 4
    for row in result.rows:
        assert row.megatron is not None, f"no Megatron config for {row.scenario}"
        assert row.deepspeed is not None, f"no DeepSpeed config for {row.scenario}"
        assert row.megatron.dp * row.megatron.tp * row.megatron.pp == \
            row.surviving_gpus
        assert row.deepspeed.dp * row.deepspeed.sp == row.surviving_gpus

    if model_name == "32b":
        normal = result.rows[0].megatron
        # Appendix A.3: DP2 TP4 PP4 is the best full-cluster configuration.
        assert (normal.dp, normal.tp, normal.pp) == (2, 4, 4)
    else:
        normal = result.rows[0].megatron
        # 70B/110B train on 64 GPUs with TP8 pipelines in the paper.
        assert normal.tp == 8
