"""Transition-aware planning benchmark: migration downtime vs step time.

Drives the paper straggler trace with the step-time-only objective and the
transition-aware objective (``TransitionConfig(enabled=True)``) and asserts
the acceptance contract of transition-aware planning: strictly lower
cumulative migration downtime at no more than epsilon (1%) per-situation
step-time regression.  Also asserts the off-switch: with the default
``TransitionConfig(enabled=False)`` the planner's outputs are bit-identical
to planning without any incumbent context, across the whole paper trace.

Writes ``BENCH_transition_study.json`` for the deterministic regression
gate (``python -m repro.experiments.transition_study --gate`` or
``make gate-transition``).
"""

import os

import pytest

from repro.cluster.trace import paper_trace
from repro.core.planner import MalleusPlanner, TransitionConfig
from repro.experiments.common import paper_workload
from repro.experiments.planner_hotpath import _plan_signature
from repro.experiments.transition_study import (
    check_study_invariants,
    format_transition_study,
    run_transition_study,
    write_study_json,
)

HERE = os.path.dirname(os.path.abspath(__file__))
FRESH_JSON = os.path.join(HERE, "BENCH_transition_study.json")


@pytest.mark.migration
@pytest.mark.benchmark(group="transition")
def test_transition_study(benchmark, once):
    result = once(benchmark, run_transition_study, "32b")
    print("\n" + format_transition_study(result))
    write_study_json(result, FRESH_JSON)

    # The acceptance contract: strictly lower cumulative migration downtime
    # at <= epsilon (1%) per-situation step-time regression.
    failures = check_study_invariants(result)
    assert not failures, failures
    assert result.aware_migration_downtime < result.baseline_migration_downtime
    assert result.max_step_regression <= result.epsilon + 1e-9
    # The byte accounting must agree with the downtime direction: planning
    # transition-aware also moves strictly less model state over the trace.
    assert result.aware_migration_gb < result.baseline_migration_gb
    # Migration stays in the paper's seconds range across the whole trace.
    assert result.baseline_migration_downtime < 60.0


@pytest.mark.migration
@pytest.mark.benchmark(group="transition")
def test_transition_disabled_is_bit_identical(benchmark, once):
    """The off-switch: a disabled TransitionConfig with an incumbent context
    reproduces planning without any context, bit for bit, on the full trace."""

    def run():
        workload = paper_workload("32b")
        planner = MalleusPlanner(workload.task, workload.cluster,
                                 workload.cost_model,
                                 transition_config=TransitionConfig())
        signatures = []
        previous = None
        for situation in paper_trace(workload.cluster).situations:
            rates = situation.rate_map(workload.cluster)
            plain = planner.plan(rates)
            with_context = planner.plan(rates, previous=previous)
            signatures.append(
                (_plan_signature(plain), _plan_signature(with_context))
            )
            previous = plain.context
        return signatures

    signatures = once(benchmark, run)
    for plain, with_context in signatures:
        assert plain == with_context
