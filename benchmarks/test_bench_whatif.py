"""What-if replay benchmark: record, replay bit-identically, attribute.

Runs the deterministic two-preset what-if benchmark
(:mod:`repro.experiments.whatif`) and asserts its contract:

* the no-edit replay of each recorded session is bit-identical to the
  live run (plan fingerprints, step times, deterministic adjustment
  fields);
* leave-one-out attribution ranks the seeded persistent degrader as the
  top culprit on the ``persistent-degraders`` preset — degraded across
  multiple episodes with a strictly positive cost;
* culprit and event rankings are sorted by lost seconds.

Writes ``BENCH_whatif.json`` so ``benchmarks/regression_gate.py`` (or
``make gate-whatif``) can compare the fully deterministic rankings
against the committed baseline exactly.
"""

import os

import pytest

from repro.experiments.whatif import (
    check_whatif_invariants,
    format_whatif,
    run_whatif_report,
    write_whatif_json,
)

pytestmark = [pytest.mark.bench, pytest.mark.whatif, pytest.mark.scenario]

HERE = os.path.dirname(os.path.abspath(__file__))
FRESH_PATH = os.path.join(HERE, "BENCH_whatif.json")


@pytest.fixture(scope="module")
def whatif_result():
    result = run_whatif_report()
    write_whatif_json(result, FRESH_PATH)
    return result


def test_contract_invariants_hold(whatif_result):
    failures = check_whatif_invariants(whatif_result)
    assert not failures, "\n".join(failures)


def test_no_edit_replay_is_bit_identical(whatif_result):
    for row in whatif_result.rows:
        assert row.replay_matches, \
            f"{row.preset}: replay diverged from the recording"


def test_persistent_degrader_is_top_culprit(whatif_result):
    row = whatif_result.row("persistent-degraders")
    assert row.culprits, "no culprits attributed"
    top = row.culprits[0]
    assert top["lost_seconds"] > 0.0
    assert top["degraded_events"] >= 2
    # Leave-one-out dominance: strictly worse than every other candidate.
    for other in row.culprits[1:]:
        assert top["lost_seconds"] >= other["lost_seconds"]


def test_rankings_sorted_by_loss(whatif_result):
    for row in whatif_result.rows:
        losses = [c["lost_seconds"] for c in row.culprits]
        assert losses == sorted(losses, reverse=True)
        event_losses = [e["lost_seconds"] for e in row.events]
        assert event_losses == sorted(event_losses, reverse=True)


def test_report_renders(whatif_result, capsys):
    print()
    print(format_whatif(whatif_result))
    assert "What-if replay" in capsys.readouterr().out
