#!/usr/bin/env python
"""Planning for a custom model and a custom (smaller) cluster.

The library is not tied to the paper's three workloads: this example defines
a 13B-parameter model, a 16-GPU cluster with 48 GB GPUs, and a messy
straggler situation, then compares the plans Malleus produces for different
maximum TP degrees and shows the memory head-room of the chosen plan.

Run with ``python examples/custom_cluster_planning.py``.
"""

from repro import (
    ExecutionSimulator,
    MalleusCostModel,
    MalleusPlanner,
    TrainingTask,
    TransformerModelSpec,
    make_cluster,
)
from repro.simulator import plan_memory_report


def main() -> None:
    model = TransformerModelSpec(
        name="custom-13b",
        num_layers=40,
        hidden_size=5120,
        ffn_hidden_size=13824,
        num_attention_heads=40,
        num_kv_heads=40,
        vocab_size=32000,
        seq_length=4096,
    )
    task = TrainingTask(model=model, global_batch_size=32, micro_batch_size=1)
    cluster = make_cluster(num_nodes=2, gpus_per_node=8, memory_gib=48.0,
                           peak_tflops=312.0, name="two-node-cluster")
    cost_model = MalleusCostModel(model, cluster)
    simulator = ExecutionSimulator(cost_model)

    print(model.describe())
    print(f"cluster: {cluster.num_nodes} nodes x {cluster.gpus_per_node} GPUs, "
          f"48 GiB each\n")

    # A messy situation: two stragglers of different severity on node 0 and a
    # mild one on node 1.
    rates = {g: 1.0 for g in cluster.gpu_ids()}
    rates[0] = 4.0
    rates[3] = 1.8
    rates[9] = 1.3

    print("per-TP-degree candidates (DP fixed to 2):")
    for tp_limit in (1, 2, 4, 8):
        planner = MalleusPlanner(task, cluster, cost_model,
                                 tp_candidates=(tp_limit,))
        result = planner.plan(rates, dp=2)
        if not result.feasible:
            print(f"  TP<= {tp_limit}: infeasible (memory)")
            continue
        simulated = simulator.simulate_step(
            result.plan, rates, check_memory=False
        ).step_time
        print(f"  TP<= {tp_limit}: estimated {result.estimated_step_time:6.2f}s, "
              f"simulated {simulated:6.2f}s, "
              f"removed GPUs {result.plan.removed_gpus}")

    print("\nfull planner (all TP candidates, free DP):")
    planner = MalleusPlanner(task, cluster, cost_model)
    result = planner.plan(rates)
    print(result.plan.describe())

    report = plan_memory_report(result.plan, cost_model)
    print(f"\nper-GPU memory of the chosen plan: "
          f"peak {report.peak_bytes / 1024 ** 3:.1f} GiB "
          f"(capacity 48 GiB, fits: {report.fits})")
    print(f"planning time: {result.breakdown.total:.2f}s "
          f"({result.breakdown.as_dict()})")


if __name__ == "__main__":
    main()
