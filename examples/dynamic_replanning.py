#!/usr/bin/env python
"""Dynamic re-planning and model migration (§5) in action.

This example drives the Malleus runtime step by step instead of through a
pre-baked trace: a straggler appears, intensifies, and finally recovers,
while a second GPU fails outright.  After every event the example shows what
the profiler detected, what the planner decided, how much model state had to
be migrated and how long the adjustment stalled training.

Run with ``python examples/dynamic_replanning.py``.
"""

from repro import MalleusCostModel, MalleusSystem, paper_cluster, paper_task
from repro.cluster import ClusterState
from repro.parallel import estimate_migration_time, plan_migration


def describe(system: MalleusSystem, label: str, state: ClusterState) -> None:
    plan = system.current_plan
    step = system.step_time(state)
    shape = ", ".join(
        f"p{p.pipeline_index}:{p.pp_degree} stages/m={p.num_micro_batches}"
        for p in plan.pipelines
    )
    print(f"  [{label}] step={step:6.2f}s  dp={plan.dp_degree}  {shape}  "
          f"removed={plan.removed_gpus}")


def main() -> None:
    task = paper_task("32b")
    cluster = paper_cluster(32)
    cost_model = MalleusCostModel(task.model, cluster)
    system = MalleusSystem(task, cluster, cost_model)

    state = ClusterState(cluster=cluster)
    system.setup(state)
    print("initial plan (no stragglers):")
    describe(system, "normal", state)

    events = [
        ("GPU 0 becomes a level-1 straggler (x=2.6)", {0: 2.6}),
        ("GPU 0 worsens to level-3 (x=5.42)", {0: 5.42}),
        ("a second straggler appears on node 1 (x=3.8)", {0: 5.42, 8: 3.8}),
        ("GPU 0 recovers, GPU 8 keeps straggling", {8: 3.8}),
        ("all GPUs healthy again", {}),
    ]

    for description, stragglers in events:
        print(f"\nevent: {description}")
        state = ClusterState(cluster=cluster)
        for gpu, rate in stragglers.items():
            state.set_rate(gpu, rate)
        old_plan = system.current_plan
        adjustment = system.on_situation_change(state)
        print(f"  profiler/planner reaction: {adjustment.kind} "
              f"(downtime {adjustment.downtime:.1f}s, planning "
              f"{adjustment.planning_time:.1f}s "
              f"{'overlapped with training' if adjustment.overlapped else ''})")
        if adjustment.kind == "migrate":
            migration = plan_migration(
                old_plan, system.current_plan, cluster,
                layer_param_bytes=task.model.layer_param_bytes(),
                layer_optimizer_bytes=task.model.params_per_layer() * 12.0,
            )
            print(f"  migration: {migration.num_transfers} transfers, "
                  f"{migration.total_bytes / 1e9:.1f} GB moved, "
                  f"~{estimate_migration_time(migration, cluster):.1f}s")
        describe(system, "after", state)

    print("\nGPU 3 fails hard (communication timeout):")
    state = ClusterState(cluster=cluster)
    state.fail(3)
    adjustment = system.on_situation_change(state)
    print(f"  reaction: {adjustment.kind} (downtime {adjustment.downtime:.1f}s "
          f"- checkpoint reload, failed GPU excluded)")
    describe(system, "after failure", state)


if __name__ == "__main__":
    main()
