#!/usr/bin/env python
"""Dynamic re-planning and model migration (§5) in action.

This example drives the Malleus runtime step by step instead of through a
pre-baked trace: a straggler appears, intensifies, and finally recovers,
while a second GPU fails outright.  After every event the example shows what
the profiler detected, what the planner decided, how much model state had to
be migrated and how long the adjustment stalled training.

The same event sequence is then replayed with **transition-aware planning**
(``TransitionConfig(enabled=True)``): the planner scores every candidate's
migration cost from the incumbent plan and prefers minimally-disruptive
plans within a 1% step-time window, so the cumulative migration downtime
drops at (bounded) step-time cost.

The first system also runs the candidate sweep with
``SweepConfig(warm_cache=True)``: every event prints which sweep backend
ran, how many candidates were solved versus served from the cross-event
warm-start cache, and the cache's cumulative hit rate.

Run with ``python examples/dynamic_replanning.py``.
"""

from repro import (
    MalleusCostModel,
    MalleusSystem,
    SweepConfig,
    TransitionConfig,
    paper_cluster,
    paper_task,
)
from repro.cluster import ClusterState


def describe(system: MalleusSystem, label: str, state: ClusterState) -> None:
    plan = system.current_plan
    step = system.step_time(state)
    shape = ", ".join(
        f"p{p.pipeline_index}:{p.pp_degree} stages/m={p.num_micro_batches}"
        for p in plan.pipelines
    )
    print(f"  [{label}] step={step:6.2f}s  dp={plan.dp_degree}  {shape}  "
          f"removed={plan.removed_gpus}")


EVENTS = [
    ("GPU 0 becomes a level-1 straggler (x=2.6)", {0: 2.6}),
    ("GPU 0 worsens to level-3 (x=5.42)", {0: 5.42}),
    ("a second straggler appears on node 1 (x=3.8)", {0: 5.42, 8: 3.8}),
    ("GPU 0 recovers, GPU 8 keeps straggling", {8: 3.8}),
    ("all GPUs healthy again", {}),
]


def drive(system: MalleusSystem, cluster, verbose: bool) -> float:
    """Run the event sequence; return the cumulative migration downtime."""
    state = ClusterState(cluster=cluster)
    system.setup(state)
    if verbose:
        print("initial plan (no stragglers):")
        describe(system, "normal", state)

    downtime = 0.0
    for description, stragglers in EVENTS:
        state = ClusterState(cluster=cluster)
        for gpu, rate in stragglers.items():
            state.set_rate(gpu, rate)
        adjustment = system.on_situation_change(state)
        downtime += adjustment.downtime
        if verbose:
            print(f"\nevent: {description}")
            print(f"  profiler/planner reaction: {adjustment.kind} "
                  f"(downtime {adjustment.downtime:.2f}s, planning "
                  f"{adjustment.planning_time:.1f}s "
                  f"{'overlapped with training' if adjustment.overlapped else ''})")
            if adjustment.kind == "migrate":
                print(f"  migration: {adjustment.migration_bytes / 1e9:.1f} GB "
                      f"moved in {adjustment.downtime:.2f}s "
                      f"[{adjustment.event_kind or 'n/a'}"
                      f"/{adjustment.repair_tier or 'n/a'}]")
            if adjustment.sweep_stats:
                stats = adjustment.sweep_stats
                cache = system.cache_stats()["sweep_solutions"]
                lookups = cache["hits"] + cache["misses"]
                rate = cache["hits"] / lookups if lookups else 0.0
                print(f"  sweep: backend={stats['backend']} "
                      f"solved {stats['evaluated']}/{stats['candidates']} "
                      f"candidates (warm hits {stats['warm_hits']}, "
                      f"infeasible skips {stats['infeasible_skips']}, "
                      f"bound-pruned {stats['pruned']}); "
                      f"cache hit rate {rate:.0%}")
            describe(system, "after", state)
    return downtime


def main() -> None:
    task = paper_task("32b")
    cluster = paper_cluster(32)

    system = MalleusSystem(task, cluster, MalleusCostModel(task.model, cluster),
                           sweep_config=SweepConfig(warm_cache=True))
    baseline_downtime = drive(system, cluster, verbose=True)

    print("\nGPU 3 fails hard (communication timeout):")
    state = ClusterState(cluster=cluster)
    state.fail(3)
    adjustment = system.on_situation_change(state)
    print(f"  reaction: {adjustment.kind} (downtime {adjustment.downtime:.1f}s "
          f"- checkpoint reload, failed GPU excluded)")
    describe(system, "after failure", state)

    # Replay the same events with migration cost on the planning objective.
    aware = MalleusSystem(
        task, cluster, MalleusCostModel(task.model, cluster),
        transition_config=TransitionConfig(enabled=True),
    )
    aware_downtime = drive(aware, cluster, verbose=False)
    print("\ntransition-aware vs step-time-only planning over these events:")
    print(f"  step-time-only   migration downtime: {baseline_downtime:6.2f}s")
    print(f"  transition-aware migration downtime: {aware_downtime:6.2f}s "
          f"(<= 1% step-time window)")


if __name__ == "__main__":
    main()
