#!/usr/bin/env python
"""End-to-end trace (Figure 7 style): Malleus vs the baselines.

Runs Malleus, Megatron-LM and DeepSpeed (without restarts) through the
paper's six straggler situations (Normal -> S1 -> ... -> S6 -> Normal) on
the 32B workload and prints the per-situation step times, the adjustments
each framework performed, and the speed-ups of Malleus.

Run with ``python examples/end_to_end_trace.py [model]`` where ``model`` is
``32b`` (default), ``70b`` or ``110b``.
"""

import sys

from repro import (
    DeepSpeedBaseline,
    MalleusSystem,
    MegatronBaseline,
    paper_trace,
    run_trace,
    theoretic_optimal_step_time,
)
from repro.experiments import paper_workload


def main(model_name: str = "32b") -> None:
    workload = paper_workload(model_name)
    trace = paper_trace(workload.cluster)

    frameworks = [
        MalleusSystem(workload.task, workload.cluster, workload.cost_model),
        MegatronBaseline(workload.task, workload.cluster, workload.cost_model),
        DeepSpeedBaseline(workload.task, workload.cluster, workload.cost_model),
    ]

    results = {}
    for framework in frameworks:
        print(f"running {framework.name} through the trace ...")
        results[framework.name] = run_trace(framework, trace)

    malleus = results["Malleus"]
    normal_time = malleus.step_time("Normal")

    header = (f"{'situation':<12}" + "".join(f"{name:>16}" for name in results)
              + f"{'theor. opt.':>14}{'best speedup':>14}")
    print("\n" + header)
    print("-" * len(header))
    for situation in trace.situations:
        name = situation.name
        row = f"{name:<12}"
        for framework_name, result in results.items():
            row += f"{result.step_time(name):>15.1f}s"
        state = situation.as_state(workload.cluster)
        optimum = theoretic_optimal_step_time(normal_time, state)
        malleus_time = malleus.step_time(name)
        best_baseline = max(
            result.step_time(name) for fname, result in results.items()
            if fname != "Malleus"
        )
        row += f"{optimum:>13.1f}s{best_baseline / malleus_time:>13.2f}x"
        print(row)

    print("\nadjustments performed by Malleus:")
    for situation_result in malleus.situations:
        adj = situation_result.adjustment
        print(f"  {situation_result.situation:<12} {adj.kind:<8} "
              f"downtime {adj.downtime:5.1f}s  "
              f"(planning {adj.planning_time:5.1f}s, "
              f"{'overlapped' if adj.overlapped else 'blocking'})")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "32b")
