#!/usr/bin/env python
"""Generated straggler traces with overlapped migration on and off.

The paper evaluates on one hand-built trace; the scenario generator
(:mod:`repro.cluster.scenarios`) produces unlimited seeded regimes —
transient jitter, node-correlated slowdowns, flapping GPUs, failure
churn, and the "frequent small events" pattern production straggler
studies report.  This example:

1. generates the ``frequent-small-events`` preset on the 32-GPU cluster
   (fully deterministic for a given seed — re-run it, get the same trace);
2. drives the Malleus runtime through it twice: once with stop-the-world
   migration (the default) and once with **overlapped migration**
   (``TransitionConfig(overlap=True)``: training continues at the old
   plan while the state streams, only the exposed tail stalls);
3. prints the per-event downtime of both runs side by side.

Run with ``python examples/generated_trace.py``.  Try other presets
(``repro.cluster.scenarios.SCENARIO_PRESETS``) or seeds; ``make
gate-scenarios`` runs the full baseline/aware/overlap sweep as a gate.
"""

from repro import MalleusCostModel, MalleusSystem, TransitionConfig, paper_cluster, paper_task
from repro.cluster.scenarios import generate_trace
from repro.simulator.session import run_trace

PRESET = "frequent-small-events"
SEED = 1


def drive(label: str, transition_config):
    task = paper_task("32b")
    cluster = paper_cluster(32)
    system = MalleusSystem(task, cluster, MalleusCostModel(task.model, cluster),
                           transition_config=transition_config)
    trace = generate_trace(cluster, PRESET, seed=SEED)
    result = run_trace(system, trace)
    print(f"\n=== {label} ===")
    downtime = hidden = 0.0
    for situation in result.situations:
        adjustment = situation.adjustment
        downtime += adjustment.downtime
        hidden += adjustment.hidden_migration_time
        if adjustment.kind in ("migrate", "restart"):
            print(f"  {situation.situation:>4}: {adjustment.kind:8s} "
                  f"moved {adjustment.migration_bytes / 1e9:7.0f}GB  "
                  f"stall {adjustment.downtime:6.3f}s  "
                  f"hidden {adjustment.hidden_migration_time:6.3f}s  "
                  f"[{adjustment.event_kind}/{adjustment.repair_tier}]")
    print(f"  cumulative stall {downtime:.3f}s, hidden {hidden:.3f}s, "
          f"trace time {result.total_time:.1f}s")
    return downtime


def main() -> None:
    trace = generate_trace(paper_cluster(32), PRESET, seed=SEED)
    print(f"generated trace '{PRESET}' (seed {SEED}): "
          f"{len(trace)} situations, "
          f"{sum(s.num_stragglers for s in trace.situations)} straggler "
          f"observations")

    stop_the_world = drive("stop-the-world migration (default)", None)
    overlapped = drive(
        "overlapped migration (TransitionConfig(overlap=True))",
        TransitionConfig(enabled=True, overlap=True),
    )
    saved = stop_the_world - overlapped
    print(f"\noverlapping saved {saved:.3f}s of migration downtime "
          f"({stop_the_world:.3f}s -> {overlapped:.3f}s)")


if __name__ == "__main__":
    main()
