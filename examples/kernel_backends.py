#!/usr/bin/env python
"""Kernel backends: the array-world numpy planner vs the python reference.

The planner's numeric kernels come in selectable backends, picked with the
``kernels=`` knob on :class:`repro.MalleusCostModel` and
:class:`repro.MalleusPlanner`:

* ``"python"`` (the default) — the scalar reference kernels.  Every other
  backend is defined as *bit-identical* to this one: same plans, same
  estimated step times, down to the last float.
* ``"numpy"`` — vectorized array kernels over a stable GPU-id index.  Same
  results, much faster at scale: at 16384 GPUs a cold full plan drops from
  several seconds to well under one second, and repairing a single-GPU rate
  shift lands under 50 ms (see ``make gate-hotpath-16k``).
* ``"legacy"`` — the pre-overhaul kernels, kept as a second reference.

Backends trade only speed, never plan quality, so the choice is purely
operational: pick ``"numpy"`` for large clusters when numpy is installed,
stay on the default anywhere determinism auditing against the scalar code
path matters more than latency.  The equivalence is testable on *your*
workload with :func:`repro.testing.assert_kernel_equivalent`, which plans
the same scenario once per backend and asserts the plans are identical.

Profiling the planner: ``python -m repro.experiments.planner_hotpath
--profile`` prints the per-kernel wall-time table (grouping, division,
minmax, and the unattributed remainder) next to the before/after rows,
sourced from ``PlanningTimeBreakdown.kernels`` — the same clocks every
plan result carries in ``result.breakdown``.  That table is how the
scalar tails get found before they get vectorized; pair it with
``--reference-max-gpus`` to profile scales (e.g. the gated 65536-GPU
rows, ``make gate-hotpath-64k``) where the python reference arm is too
slow to run.

Run with ``python examples/kernel_backends.py``.
"""

import time

from repro import MalleusCostModel, MalleusPlanner, paper_cluster, paper_task
from repro.testing import assert_kernel_equivalent, assert_plans_identical


def main() -> None:
    # A mid-size scenario: 512 GPUs, 16 stragglers of varying severity.
    task = paper_task("110b", global_batch_size=128)
    cluster = paper_cluster(num_gpus=512)
    rates = {gpu_id: 1.0 for gpu_id in cluster.gpu_ids()}
    for i, gpu_id in enumerate(range(0, 512, 32)):
        rates[gpu_id] = 1.5 + 0.25 * (i % 4)

    results = {}
    for backend in ("python", "numpy"):
        cost_model = MalleusCostModel(task.model, cluster, kernels=backend)
        planner = MalleusPlanner(task, cluster, cost_model,
                                 tp_candidates=(8,), kernels=backend)
        start = time.perf_counter()
        results[backend] = planner.plan(rates, dp=8)
        elapsed = time.perf_counter() - start
        print(f"kernels={backend!r:9}: planned in {elapsed:.3f}s, "
              f"estimated step time "
              f"{results[backend].estimated_step_time:.6f}s")

    # Bit-identity, not approximate agreement: the full plan structure and
    # the estimated step time must match exactly across backends.
    assert_plans_identical(results["numpy"].plan, results["python"].plan,
                           actual_label="numpy", expected_label="python")
    print("plans are bit-identical across backends")

    # The shipped helper does the same end to end — synthesizes the planner
    # per backend, plans, and raises a readable diff on any divergence.
    assert_kernel_equivalent(
        {gpu_id: rates[gpu_id] for gpu_id in range(16)},
        tp=2, dp=2, backends=("python", "numpy", "legacy"),
    )
    print("assert_kernel_equivalent: python == numpy == legacy")


if __name__ == "__main__":
    main()
