#!/usr/bin/env python
"""The always-on planning service under an event storm, with faults.

A production fleet does not emit one tidy situation change at a time: the
same GPU flaps every few seconds, several small deltas arrive where one
repair would do, and occasionally the planning stack itself misbehaves.
This example drives :class:`repro.runtime.PlanningService` through exactly
that:

1. **Raw processing** — a generated ``flapping`` storm handed straight to
   ``MalleusSystem.on_situation_change``, one planning episode per event.
2. **Admission control** — the same storm through the service with
   coalescing and a debounce window: superseding per-GPU deltas merge
   into a handful of episodes, failures are expedited, and the final plan
   is identical to directly processing the coalesced deltas.
3. **Deadlines + fault injection** — the storm re-run under a planner
   deadline with a scripted fault schedule (a raising planner episode and
   a deadline overrun): every fault ends as a *recorded degradation* on
   the service's counters and the job never loses its plan.
4. **Speculative pre-solving** — the storm once more with
   ``ServiceConfig(speculate=True)``: idle steps pre-solve the likely
   next events and matching real events are served from the speculation
   cache (see ``examples/speculative_service.py`` for the full story);
   the counters land in ``MalleusSystem.cache_stats()``.

Run with ``python examples/planning_service.py``.
"""

from repro import MalleusCostModel, MalleusSystem, ServiceConfig
from repro.models.presets import paper_task
from repro.cluster.topology import paper_cluster
from repro.runtime import PlanningService
from repro.testing.faults import (
    FAULT_CLOCK_SKEW,
    FAULT_PLANNER_EXCEPTION,
    FakeClock,
    FaultInjector,
    FaultSchedule,
    PlannedFault,
    storm_states,
)


def fresh_system(cluster, task):
    system = MalleusSystem(task, cluster,
                           MalleusCostModel(task.model, cluster))
    return system


def main() -> None:
    task = paper_task("32b")
    cluster = paper_cluster(32)
    states = storm_states(cluster, "flapping", seed=1)
    print(f"flapping storm: {len(states) - 1} events on "
          f"{len(cluster.gpu_ids())} GPUs\n")

    # -- 1. raw: one planning episode per event -------------------------
    raw = fresh_system(cluster, task)
    raw.setup(states[0])
    raw_repairs = 0
    for state in states[1:]:
        adjustment = raw.on_situation_change(state)
        if adjustment.kind in ("migrate", "replan", "restart"):
            raw_repairs += 1
    print(f"raw processing: {len(states) - 1} events -> "
          f"{raw_repairs} repairs")

    # -- 2. the service coalesces the storm -----------------------------
    system = fresh_system(cluster, task)
    service = PlanningService(
        system,
        ServiceConfig(coalesce=True, debounce_window=2.0, debounce_limit=6.0),
    )
    service.setup(states[0])
    for index, state in enumerate(states[1:]):
        service.submit(state, now=float(index))
        service.pump(now=float(index))
    service.drain(now=float(len(states)) + 10.0)
    stats = service.stats
    print(f"service (coalescing): {stats.submitted} submissions -> "
          f"{stats.episodes} episodes, {stats.repairs} repairs "
          f"({stats.merged} merged, queue waits p50/p99 = "
          f"{service.queue_wait_percentiles()['p50']:.1f}/"
          f"{service.queue_wait_percentiles()['p99']:.1f}s sim)")

    # -- 3. deadlines + injected faults ---------------------------------
    clock = FakeClock(tick=0.001)
    system = fresh_system(cluster, task)
    faulty = PlanningService(
        system,
        ServiceConfig(coalesce=True, debounce_window=2.0, debounce_limit=6.0,
                      deadline=0.25, max_retries=1),
        clock=clock,
    )
    faulty.setup(states[0])
    schedule = FaultSchedule([
        PlannedFault(episode=0, kind=FAULT_CLOCK_SKEW, magnitude=2.0),
        PlannedFault(episode=1, kind=FAULT_PLANNER_EXCEPTION),
    ])
    with FaultInjector(faulty, schedule, clock=clock) as injector:
        for index, state in enumerate(states[1:]):
            faulty.submit(state, now=float(index))
            faulty.pump(now=float(index))
        faulty.drain(now=float(len(states)) + 10.0)
    stats = faulty.stats
    print("\nwith a deadline (0.25s) and injected faults "
          f"({len(injector.fired)} fired):")
    print(f"  episodes={stats.episodes} repairs={stats.repairs} "
          f"degraded={stats.degraded} deferrals={stats.deferrals} "
          f"overruns={stats.overruns} faults={stats.faults} "
          f"forced={stats.forced}")
    print(f"  queue drained: {faulty.pending == 0}, "
          f"plan alive: {system.plan is not None}")
    assert faulty.pending == 0 and system.plan is not None

    # -- 4. speculative pre-solving -------------------------------------
    system = fresh_system(cluster, task)
    speculative = PlanningService(
        system,
        ServiceConfig(coalesce=True, debounce_window=2.0, debounce_limit=6.0,
                      speculate=True),
    )
    speculative.setup(states[0])
    for index, state in enumerate(states[1:]):
        speculative.submit(state, now=float(index))
        speculative.pump(now=float(index))
    tick = len(states) - 1
    while speculative.pending and tick < len(states) + 32:
        speculative.pump(now=float(tick))  # idle pumps keep pre-solving
        tick += 1
    speculative.drain(now=float(tick))
    stats = speculative.stats
    speculation = system.cache_stats()["speculation"]
    print("\nwith speculative pre-solving (speculate=True):")
    print(f"  repairs={stats.repairs} served-from-cache={stats.spec_hits} "
          f"pre-solves={stats.spec_presolves} "
          f"cancelled={stats.spec_cancelled} stale={stats.spec_stale} "
          f"wasted={stats.spec_wasted} faults={stats.spec_faults}")
    print(f"  cache_stats()['speculation'] = {speculation}")


if __name__ == "__main__":
    main()
