#!/usr/bin/env python
"""Quickstart: plan straggler-resilient hybrid parallel training with Malleus.

This example reproduces the core workflow of the paper on the 32B-parameter
workload:

1. describe the training task (model + global batch size) and the cluster;
2. report per-GPU straggling rates (here: one level-3 straggler, x = 5.42);
3. let the planner deduce the non-uniform parallelization plan;
4. simulate one training step and compare against the theoretic optimum.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    ExecutionSimulator,
    MalleusCostModel,
    MalleusPlanner,
    paper_cluster,
    paper_task,
)
from repro.cluster import state_from_rates
from repro.simulator import theoretic_optimal_step_time


def main() -> None:
    # 1. The workload: LLaMA-2-architecture 32B model, 64-sequence batches of
    #    4K tokens, trained on 32 A800-class GPUs (4 nodes of 8).
    task = paper_task("32b")
    cluster = paper_cluster(num_gpus=32)
    cost_model = MalleusCostModel(task.model, cluster)
    planner = MalleusPlanner(task, cluster, cost_model)
    simulator = ExecutionSimulator(cost_model)

    # 2. Straggling rates as the profiler would report them: GPU 0 is a
    #    level-3 straggler (5.42x slower than a healthy GPU).
    rates = {gpu_id: 1.0 for gpu_id in cluster.gpu_ids()}
    rates[0] = 5.42
    state = state_from_rates(cluster, rates)

    # 3. Plan. The planner solves the bi-level problem: GPU grouping,
    #    pipeline orchestration, then layer and data assignment.
    baseline = planner.plan({g: 1.0 for g in cluster.gpu_ids()}, dp=2)
    adapted = planner.plan(rates, dp=2)
    print("=== Straggler-free plan ===")
    print(baseline.plan.describe())
    print("\n=== Straggler-adapted plan ===")
    print(adapted.plan.describe())

    # 4. Simulate one step of each plan under the straggler situation.
    normal_time = simulator.simulate_step(baseline.plan).step_time
    unadapted_time = simulator.simulate_step(
        baseline.plan, rates, check_memory=False
    ).step_time
    adapted_time = simulator.simulate_step(
        adapted.plan, rates, check_memory=False
    ).step_time
    optimum = theoretic_optimal_step_time(normal_time, state)

    print("\n=== Step times (seconds) ===")
    print(f"no stragglers, uniform plan      : {normal_time:6.2f}")
    print(f"straggler, uniform plan kept     : {unadapted_time:6.2f}")
    print(f"straggler, Malleus-adapted plan  : {adapted_time:6.2f}")
    print(f"theoretic optimum                : {optimum:6.2f}")
    print(f"\nMalleus speed-up over the uniform plan: "
          f"{unadapted_time / adapted_time:.2f}x")
    print(f"gap to the theoretic optimum          : "
          f"{adapted_time / optimum - 1.0:+.1%}")


if __name__ == "__main__":
    main()
