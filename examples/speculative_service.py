#!/usr/bin/env python
"""Speculative repair: priors -> idle pre-solve -> microsecond hit.

The PR-6 planning service made planning an always-on loop; PR 8 uses the
loop's *idle* steps.  A flapping GPU's next submission is predictable —
it bounces between the same rates, and the service's own debounced queue
literally holds the delta the next pump will process — so the service
pre-solves those likely next events while nothing else is due.  A real
event that matches a prediction is served by materializing the stored
winner: same plan, bit for bit, minus the solve latency.

This example walks the three stages on the ``flapping`` storm preset:

1. **Priors** — seed a :class:`repro.runtime.SpeculationPolicy` from the
   preset's generative process mix
   (:func:`repro.cluster.scenarios.degradation_priors`) and show how the
   observed event stream builds per-GPU transition maps.
2. **Pre-solve** — drive the service tick by tick and watch idle steps
   fill the speculation cache with pre-solved repairs.
3. **Hit** — compare each repair's event-to-new-plan latency against a
   plain (speculation-off) service twin on the identical storm, and
   check the final plans are bit-identical.

Run with ``python examples/speculative_service.py``.
"""

from repro import MalleusCostModel, MalleusSystem, ServiceConfig
from repro.models.presets import paper_task
from repro.cluster.scenarios import degradation_priors, scenario_preset
from repro.cluster.topology import paper_cluster
from repro.runtime import PlanningService, SpeculationPolicy
from repro.testing.faults import storm_states

REPAIR_KINDS = ("migrate", "replan", "restart")


def fresh_system(cluster, task):
    return MalleusSystem(task, cluster,
                         MalleusCostModel(task.model, cluster))


def drive(service, events):
    """The always-on loop: per-tick submit+pump, then idle tail pumps."""
    for index, state in enumerate(events):
        service.submit(state, now=float(index))
        service.pump(now=float(index))
    tick = len(events)
    while service.pending and tick < len(events) + 32:
        service.pump(now=float(tick))
        tick += 1
    service.drain(now=float(tick))


def main() -> None:
    task = paper_task("32b")
    cluster = paper_cluster(32)
    seed = 1
    states = storm_states(cluster, "flapping", seed=seed)
    events = states[1:]

    # -- 1. priors from the generative scenario processes ---------------
    scenario = scenario_preset("flapping", seed=seed)
    priors = degradation_priors(scenario)
    policy = SpeculationPolicy.from_scenario(scenario)
    print("flapping preset priors:", {k: round(v, 2)
                                      for k, v in priors.items()})
    print(f"-> policy biases: recovery={policy.recovery_bias:.2f} "
          f"relapse={policy.relapse_bias:.2f}\n")

    # -- 2+3. speculative service vs plain twin on the same storm -------
    plain_system = fresh_system(cluster, task)
    plain = PlanningService(plain_system, ServiceConfig(
        coalesce=True, debounce_window=2.0, debounce_limit=6.0))
    plain.setup(states[0])
    drive(plain, events)

    spec_system = fresh_system(cluster, task)
    speculative = PlanningService(
        spec_system,
        ServiceConfig(coalesce=True, debounce_window=2.0,
                      debounce_limit=6.0, speculate=True),
        speculation_policy=policy,
    )
    speculative.setup(states[0])
    drive(speculative, events)

    # A flapping GPU's transition map after the storm (the learned half
    # of the priors; seeded biases rank the prior-driven guesses).
    flapper = max(policy.priors, key=lambda g: policy.priors[g].flips)
    prior = policy.priors[flapper]
    transitions = {
        round(rate, 2): {round(nxt, 2): count for nxt, count in nexts.items()}
        for rate, nexts in prior.successors.items()
    }
    print(f"GPU {flapper} learned transitions (flips={prior.flips}): "
          f"rate -> {{next: count}} = {transitions}")

    plain_repairs = [r for r in plain.records
                     if r.adjustment.kind in REPAIR_KINDS]
    spec_repairs = [r for r in speculative.records
                    if r.adjustment.kind in REPAIR_KINDS]
    served = [r for r in spec_repairs if r.adjustment.speculative]
    print(f"\nplain service:       {len(plain_repairs)} repairs, "
          f"latencies {[f'{r.latency * 1e3:.1f}ms' for r in plain_repairs]}")
    print(f"speculative service: {len(spec_repairs)} repairs, "
          f"{len(served)} served from the speculation cache, "
          f"latencies {[f'{r.latency * 1e3:.2f}ms' for r in spec_repairs]}")
    stats = speculative.stats
    print(f"  pre-solves={stats.spec_presolves} "
          f"cancelled={stats.spec_cancelled} hits={stats.spec_hits} "
          f"stale={stats.spec_stale} wasted={stats.spec_wasted}")
    print(f"  engine snapshot: "
          f"{spec_system.cache_stats()['speculation']}")

    identical = spec_system.plan == plain_system.plan
    print(f"\nfinal plans bit-identical: {identical}")
    assert identical and served, \
        "speculation must serve hits without changing any plan"


if __name__ == "__main__":
    main()
