#!/usr/bin/env python
"""What-if analysis walkthrough: record, replay, edit, attribute.

Records a Malleus session on the generated ``flapping`` preset (32B
workload), verifies the saved trace replays bit-identically, asks one
counterfactual — "what if the worst GPU had never degraded?" — and
prints the leave-one-out attribution report an SRE would read after a
bad training day.

Run with ``python examples/whatif_report.py [model]`` (default ``32b``).
The same flow is available as a CLI:
``python -m repro.experiments.whatif --record flapping --out s.jsonl``
then ``--trace s.jsonl --edit heal:GPU`` / ``--report``.
"""

import os
import sys
import tempfile

from repro import MalleusSystem, SessionTrace, WhatIfEngine, attribute, record_session
from repro.cluster.scenarios import generate_trace
from repro.experiments import paper_workload
from repro.whatif import heal


def main(model_name: str = "32b") -> None:
    workload = paper_workload(model_name)
    trace = generate_trace(workload.cluster, "flapping", seed=1)

    # 1. Record a live session: same run_trace drive as an unrecorded
    #    run (recording is observational), but every planning episode is
    #    taped with its rates, adjustment, plan fingerprint, step time.
    print(f"recording a '{trace.name}' session on the {model_name} "
          "workload ...")
    system = MalleusSystem(workload.task, workload.cluster,
                           workload.cost_model)
    result, session = record_session(system, trace)
    print(f"  {session.num_events} episodes, "
          f"end-to-end {result.total_time:.2f} s")

    # 2. The tape round-trips losslessly and replays bit-identically.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "session.jsonl")
        session.save(path)
        session = SessionTrace.load(path)
    engine = WhatIfEngine()
    replay = engine.replay(session)
    print(f"  no-edit replay: {replay.total_time:.2f} s, "
          f"{'bit-identical' if replay.matches_recording else 'DIVERGED'}")
    print()

    # 3. One counterfactual by hand: heal the GPU with the worst
    #    cumulative degradation and replay the whole session.
    worst = max(session.degraded_gpus(), key=session.degraded_gpus().get)
    healed = engine.replay(session, [heal(worst)])
    saved = replay.total_time - healed.total_time
    print(f"what if GPU x{worst} had never degraded?")
    print(f"  {replay.total_time:.2f} s -> {healed.total_time:.2f} s "
          f"({saved:+.2f} s)")
    print()

    # 4. The full report: leave-one-out over every degraded GPU plus
    #    suppress-one-event replays, ranked by exact seconds lost.
    print("attributing lost throughput (leave-one-out replays) ...")
    report = attribute(session, top_k=5)
    print()
    print(report.format())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "32b")
