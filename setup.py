"""Setuptools entry point (kept for legacy editable installs without wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        # Hard dependency of the array-world planner kernels
        # (kernels="numpy"); repro.compat enforces the version floor at
        # import time with a readable error.
        "numpy>=1.22",
    ],
)
