"""repro — reproduction of Malleus (SIGMOD 2025).

Malleus is a straggler-resilient hybrid parallel training framework for
large-scale models.  This package reproduces the full system in pure
Python: the per-GPU straggling-rate model, the bi-level parallelization
planning algorithm (non-uniform partitioning of devices, stages, layers and
data), the malleable executor with ZeRO-1 sharding and on-the-fly model
migration, the baselines the paper compares against, and the benchmark
harness regenerating every table and figure of the evaluation.

Quickstart::

    from repro import MalleusPlanner, MalleusCostModel, paper_task, paper_cluster

    task = paper_task("32b")
    cluster = paper_cluster(num_gpus=32)
    planner = MalleusPlanner(task, cluster)
    rates = {g: 1.0 for g in cluster.gpu_ids()}
    rates[0] = 5.42                      # one level-3 straggler
    result = planner.plan(rates, dp=2)
    print(result.plan.describe())
"""

from .baselines import (
    DeepSpeedBaseline,
    DeepSpeedRestartBaseline,
    MegatronBaseline,
    MegatronRestartBaseline,
    OobleckBaseline,
)
from .cluster import (
    Cluster,
    ClusterState,
    Profiler,
    StragglerSpec,
    StragglerTrace,
    make_cluster,
    paper_cluster,
    paper_trace,
)
from .core import (
    CostModelConfig,
    MalleusCostModel,
    MalleusPlanner,
    PlanningResult,
    SolutionCache,
    SweepConfig,
    TransitionConfig,
)
from .models import TrainingTask, TransformerModelSpec, get_model, paper_task
from .parallel import ParallelizationPlan, TPGroup, uniform_megatron_plan
from .runtime import (
    MalleusSystem,
    PlanningService,
    ServiceConfig,
    SpeculationPolicy,
)
from .simulator import ExecutionSimulator, run_trace, theoretic_optimal_step_time
from .whatif import (
    SessionRecorder,
    SessionTrace,
    WhatIfEngine,
    attribute,
    record_session,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterState",
    "CostModelConfig",
    "DeepSpeedBaseline",
    "DeepSpeedRestartBaseline",
    "ExecutionSimulator",
    "MalleusCostModel",
    "MalleusPlanner",
    "MalleusSystem",
    "MegatronBaseline",
    "MegatronRestartBaseline",
    "OobleckBaseline",
    "ParallelizationPlan",
    "PlanningResult",
    "PlanningService",
    "Profiler",
    "ServiceConfig",
    "SessionRecorder",
    "SessionTrace",
    "SolutionCache",
    "SpeculationPolicy",
    "StragglerSpec",
    "StragglerTrace",
    "SweepConfig",
    "TPGroup",
    "TrainingTask",
    "TransitionConfig",
    "TransformerModelSpec",
    "WhatIfEngine",
    "attribute",
    "get_model",
    "make_cluster",
    "paper_cluster",
    "paper_task",
    "paper_trace",
    "record_session",
    "run_trace",
    "theoretic_optimal_step_time",
    "uniform_megatron_plan",
    "__version__",
]
