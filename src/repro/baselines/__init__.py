"""Baseline training frameworks the paper compares against."""

from .config_search import (
    ACTIVATION_CHECKPOINT_MEMORY,
    ACTIVATION_CHECKPOINT_OVERHEAD,
    DeepSpeedConfig,
    MegatronConfig,
    search_deepspeed_config,
    search_megatron_config,
)
from .deepspeed import (
    DeepSpeedBaseline,
    DeepSpeedRestartBaseline,
    deepspeed_memory_fits,
    deepspeed_step_time,
)
from .megatron import (
    MegatronBaseline,
    MegatronRestartBaseline,
    build_megatron_plan,
)
from .oobleck import OOBLECK_MIGRATION_TIME, OOBLECK_OVERHEAD, OobleckBaseline

__all__ = [
    "ACTIVATION_CHECKPOINT_MEMORY",
    "ACTIVATION_CHECKPOINT_OVERHEAD",
    "DeepSpeedBaseline",
    "DeepSpeedConfig",
    "DeepSpeedRestartBaseline",
    "MegatronBaseline",
    "MegatronConfig",
    "MegatronRestartBaseline",
    "OOBLECK_MIGRATION_TIME",
    "OOBLECK_OVERHEAD",
    "OobleckBaseline",
    "build_megatron_plan",
    "deepspeed_memory_fits",
    "deepspeed_step_time",
    "search_deepspeed_config",
    "search_megatron_config",
]
