"""Manual parallel-configuration search for the restart-based baselines.

When Megatron-LM or DeepSpeed restart after excluding straggling nodes, an
engineer must hand-tune the parallel configuration (DP/TP/PP/SP degrees,
micro-batch size, activation checkpointing) for the surviving GPU count
(Appendix A.3, Tables 6 and 7).  This module automates that search: it
enumerates the feasible configurations, discards the ones that exceed GPU
memory and returns the fastest according to the execution simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cluster.topology import GIB, Cluster
from ..core.costmodel import CostModelConfig, MalleusCostModel
from ..models.spec import TrainingTask
from ..parallel.plan import ParallelizationPlan, uniform_megatron_plan
from ..simulator.executor import ExecutionSimulator
from ..simulator.memory import plan_memory_report

#: Compute-time multiplier when full activation checkpointing is enabled
#: (every layer's forward pass is recomputed during the backward pass).
ACTIVATION_CHECKPOINT_OVERHEAD = 4.0 / 3.0

#: Fraction of activation memory kept when activation checkpointing is on.
ACTIVATION_CHECKPOINT_MEMORY = 0.12


@dataclass
class MegatronConfig:
    """A uniform 3D-parallel configuration."""

    dp: int
    tp: int
    pp: int
    micro_batch_size: int = 1
    activation_checkpointing: bool = False
    first_stage_layers: Optional[int] = None
    step_time: float = math.inf

    def label(self) -> str:
        """Compact label like ``DP2TP8PP4, mbs1`` (Tables 6/7 style)."""
        text = f"DP{self.dp}TP{self.tp}PP{self.pp}"
        if self.activation_checkpointing:
            text += "+AC"
        text += f", mbs{self.micro_batch_size}"
        return text


@dataclass
class DeepSpeedConfig:
    """A ZeRO-3 / FSDP configuration with Ulysses sequence parallelism."""

    dp: int
    sp: int
    micro_batch_size: int = 1
    activation_checkpointing: bool = True
    step_time: float = math.inf

    def label(self) -> str:
        """Compact label like ``DP32SP2+AC, mbs2``."""
        text = f"DP{self.dp}SP{self.sp}"
        if self.activation_checkpointing:
            text += "+AC"
        text += f", mbs{self.micro_batch_size}"
        return text


def _layer_split_options(num_layers: int, pp: int) -> List[Optional[int]]:
    """First-stage layer counts to try (None means an even split)."""
    if pp <= 1 or num_layers % pp == 0:
        return [None]
    options: List[Optional[int]] = []
    # Mirror the paper's manual fix: give the first stage fewer layers so the
    # remaining stages split evenly.
    for first in range(1, num_layers // pp + 1):
        remaining = num_layers - first
        if remaining % (pp - 1) == 0:
            options.append(first)
    return options or [None]


def megatron_cost_model(task: TrainingTask, cluster: Cluster,
                        base: Optional[MalleusCostModel] = None) -> MalleusCostModel:
    """Cost model with Megatron-LM memory semantics.

    Megatron-LM (without the distributed optimizer) replicates the optimizer
    states inside every data-parallel replica, unlike Malleus's ZeRO-1
    sharding.  This is what forces the paper's Megatron configurations to
    use deeper pipelines (DP2 TP4 PP4 for the 32B model, DP2 TP8 PP4 for the
    70B/110B models).
    """
    config = CostModelConfig(**vars(base.config)) if base is not None \
        else CostModelConfig()
    config.zero1_optimizer_sharding = False
    # Megatron-LM's mixed-precision recipe keeps fp32 main gradients, and its
    # contiguous gradient buckets / all-reduce staging buffers plus allocator
    # fragmentation consume a few extra GiB per GPU.
    config.grad_bytes_per_param = 4.0
    config.reserved_memory_bytes = 8.0 * GIB
    return MalleusCostModel(task.model, cluster, config)


def search_megatron_config(
    task: TrainingTask,
    cluster: Cluster,
    cost_model: Optional[MalleusCostModel] = None,
    tp_candidates: Sequence[int] = (1, 2, 4, 8),
    mbs_candidates: Sequence[int] = (1, 2, 4),
) -> Optional[MegatronConfig]:
    """Find the fastest memory-feasible uniform 3D-parallel configuration."""
    cost_model = megatron_cost_model(task, cluster, cost_model)
    simulator = ExecutionSimulator(cost_model)
    num_gpus = cluster.num_gpus
    num_layers = task.model.num_layers
    best: Optional[MegatronConfig] = None

    for tp in tp_candidates:
        if tp > cluster.gpus_per_node or num_gpus % tp != 0:
            continue
        for pp in range(1, num_gpus // tp + 1):
            if (num_gpus // tp) % pp != 0:
                continue
            dp = num_gpus // (tp * pp)
            if task.global_batch_size % dp != 0:
                continue
            for mbs in mbs_candidates:
                if (task.global_batch_size // dp) % mbs != 0:
                    continue
                for ac in (False, True):
                    for first in _layer_split_options(num_layers, pp):
                        try:
                            plan = uniform_megatron_plan(
                                cluster.gpu_ids(), dp, tp, pp, num_layers,
                                task.global_batch_size, mbs,
                                first_stage_layers=first,
                            )
                        except ValueError:
                            continue
                        step_time = _megatron_step_time(
                            plan, cost_model, simulator, ac
                        )
                        if math.isinf(step_time):
                            continue
                        if best is None or step_time < best.step_time:
                            best = MegatronConfig(
                                dp=dp, tp=tp, pp=pp, micro_batch_size=mbs,
                                activation_checkpointing=ac,
                                first_stage_layers=first, step_time=step_time,
                            )
    return best


def _megatron_step_time(plan: ParallelizationPlan,
                        cost_model: MalleusCostModel,
                        simulator: ExecutionSimulator,
                        activation_checkpointing: bool) -> float:
    """Step time of a uniform plan, accounting for activation checkpointing."""
    report = plan_memory_report(plan, cost_model)
    if activation_checkpointing:
        # Re-evaluate memory with shrunk activations.  The coefficient
        # caches are keyed on arguments only, so the in-place config edit
        # must invalidate them on the way in and out.
        original = cost_model.config.activation_fudge
        cost_model.config.activation_fudge = original * ACTIVATION_CHECKPOINT_MEMORY
        cost_model.invalidate_caches()
        try:
            report = plan_memory_report(plan, cost_model)
        finally:
            cost_model.config.activation_fudge = original
            cost_model.invalidate_caches()
    if not report.fits:
        return math.inf
    step = simulator.simulate_step(plan, rates=None, check_memory=False)
    time = step.step_time
    if activation_checkpointing:
        time *= ACTIVATION_CHECKPOINT_OVERHEAD
    return time


def search_deepspeed_config(
    task: TrainingTask,
    cluster: Cluster,
    cost_model: Optional[MalleusCostModel] = None,
    sp_candidates: Sequence[int] = (1, 2, 4, 8),
    mbs_candidates: Sequence[int] = (1, 2, 4, 6, 8),
) -> Optional[DeepSpeedConfig]:
    """Find the fastest memory-feasible ZeRO-3 configuration.

    The DeepSpeed baseline shards all model states across every GPU; memory
    feasibility therefore depends mostly on the activation footprint, which
    the micro-batch size, the sequence-parallel degree and activation
    checkpointing control.
    """
    from .deepspeed import deepspeed_step_time, deepspeed_memory_fits

    cost_model = cost_model or MalleusCostModel(task.model, cluster)
    num_gpus = cluster.num_gpus
    best: Optional[DeepSpeedConfig] = None
    for sp in sp_candidates:
        if num_gpus % sp != 0:
            continue
        dp = num_gpus // sp
        # When the global batch does not divide evenly across the DP groups the
        # paper slightly grows the batch (the blue-highlighted DP entries of
        # Table 7); the per-GPU workload model already averages over GPUs, so
        # non-divisible configurations are simply allowed here.
        for mbs in mbs_candidates:
            for ac in (True, False):
                config = DeepSpeedConfig(
                    dp=dp, sp=sp, micro_batch_size=mbs,
                    activation_checkpointing=ac,
                )
                if not deepspeed_memory_fits(task, cluster, cost_model, config):
                    continue
                step_time = deepspeed_step_time(
                    task, cluster, cost_model, config, rates=None
                )
                if best is None or step_time < best.step_time:
                    config.step_time = step_time
                    best = config
    return best
