"""DeepSpeed-style ZeRO-3 / Fully-Sharded-Data-Parallel baseline (§7.1).

DeepSpeed with the ZeRO-3 optimizer scatters every layer's parameters,
gradients and optimizer states across *all* GPUs and must all-gather the
parameters of each layer during both the forward and the backward pass.
That makes every layer a globally synchronous operation, so a single
straggling GPU slows down the whole cluster — which is exactly why the
paper finds DeepSpeed more straggler-sensitive than hybrid parallel.

The baseline is modelled analytically:

* per-GPU compute time: the GPU's share of the step FLOPs divided by its
  achieved throughput, multiplied by the slowest straggling rate in the
  cluster (global per-layer synchronisation);
* communication: two parameter all-gathers plus one gradient reduce-scatter
  per layer across all GPUs over the inter-node interconnect;
* optional activation checkpointing multiplies compute by 4/3 and shrinks
  the activation footprint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster.stragglers import ClusterState
from ..cluster.topology import Cluster
from ..core.costmodel import MalleusCostModel
from ..models.spec import TrainingTask
from ..simulator.comm import allgather_time, reduce_scatter_time
from ..simulator.executor import STEP_OVERHEAD
from ..simulator.restart import RestartCostConfig, restart_time
from ..simulator.session import Adjustment
from .config_search import (
    ACTIVATION_CHECKPOINT_MEMORY,
    ACTIVATION_CHECKPOINT_OVERHEAD,
    DeepSpeedConfig,
    search_deepspeed_config,
)

#: ZeRO-3 achieves higher kernel efficiency than hybrid parallel (no pipeline
#: bubbles) but pays a fixed per-layer synchronisation overhead.
DEEPSPEED_EFFICIENCY_BONUS = 1.12

#: Fraction of the parameter all-gather / gradient reduce-scatter traffic that
#: DeepSpeed manages to overlap with computation (prefetching the next layer).
DEEPSPEED_COMM_OVERLAP = 0.7


def _global_collective_bandwidth(cluster: Cluster) -> float:
    """Effective per-GPU bandwidth of a cluster-wide collective.

    A collective spanning all GPUs crosses every node's NIC, which is shared
    by the node's GPUs; the effective per-rank bandwidth is therefore the
    (full-duplex) inter-node bandwidth divided by half the GPUs per node,
    reflecting the hierarchical intra-node-then-inter-node algorithms ZeRO-3
    uses for its collectives.
    """
    if cluster.num_nodes <= 1:
        return cluster.nodes[0].intra_node_bandwidth
    return cluster.inter_node_bandwidth / max(1.0, cluster.gpus_per_node / 2.0)


def deepspeed_memory_fits(task: TrainingTask, cluster: Cluster,
                          cost_model: MalleusCostModel,
                          config: DeepSpeedConfig) -> bool:
    """Check whether a ZeRO-3 configuration fits in GPU memory."""
    model = task.model
    num_gpus = cluster.num_gpus
    per_param = (
        cost_model.config.bytes_per_param
        + cost_model.config.grad_bytes_per_param
        + cost_model.config.optimizer_bytes_per_param
    )
    # All model states are sharded across every GPU (ZeRO-3).
    state_bytes = model.total_params() * per_param / num_gpus
    # A few layers' parameters are materialised (all-gathered) at a time for
    # prefetch overlap, plus gradient reduce buckets of the same size.
    materialised = 4.0 * model.layer_param_bytes()
    # FSDP/ZeRO-3 keeps full (unsharded) activations and suffers from
    # allocator fragmentation; a 15% overhead reflects that.
    activation_per_layer = 1.15 * model.layer_activation_bytes(
        config.micro_batch_size
    )
    activation_per_layer /= config.sp
    if config.activation_checkpointing:
        activation_per_layer *= ACTIVATION_CHECKPOINT_MEMORY
    activations = activation_per_layer * model.num_layers
    logits = model.lm_head_activation_bytes(config.micro_batch_size) / config.sp
    total = state_bytes + materialised + activations + logits \
        + cost_model.config.reserved_memory_bytes
    capacity = min(cluster.memory_capacity(g) for g in cluster.gpu_ids())
    return total <= capacity


def deepspeed_step_time(task: TrainingTask, cluster: Cluster,
                        cost_model: MalleusCostModel,
                        config: DeepSpeedConfig,
                        rates: Optional[Dict[int, float]] = None) -> float:
    """Per-step time of the ZeRO-3 baseline under the given straggling rates."""
    model = task.model
    num_gpus = cluster.num_gpus
    rates = rates or {}
    worst_rate = max((rates.get(g, 1.0) for g in cluster.gpu_ids()), default=1.0)
    if math.isinf(worst_rate):
        return math.inf

    gpu = next(cluster.iter_gpus())
    achieved = gpu.peak_flops * cost_model.config.compute_efficiency \
        * DEEPSPEED_EFFICIENCY_BONUS
    tokens_per_gpu = task.global_batch_size * model.seq_length / num_gpus
    compute = model.training_flops_per_token() * tokens_per_gpu / achieved
    if config.activation_checkpointing:
        compute *= ACTIVATION_CHECKPOINT_OVERHEAD
    # Every layer is globally synchronous, so the slowest GPU paces the step.
    compute *= worst_rate

    bandwidth = _global_collective_bandwidth(cluster)
    layer_params_bytes = model.layer_param_bytes()
    per_layer_comm = 2.0 * allgather_time(layer_params_bytes, num_gpus, bandwidth)
    per_layer_comm += reduce_scatter_time(layer_params_bytes, num_gpus, bandwidth)
    comm = per_layer_comm * model.num_layers
    comm += 2.0 * allgather_time(
        model.embedding_params() * 2.0, num_gpus, bandwidth
    )
    # Parameter prefetching overlaps most of the communication with compute;
    # only the non-overlapped remainder is exposed.
    exposed_comm = max(0.0, comm - DEEPSPEED_COMM_OVERLAP * compute)
    return compute + exposed_comm + STEP_OVERHEAD


@dataclass
class DeepSpeedBaseline:
    """DeepSpeed (ZeRO-3) without restarts: it simply rides out stragglers."""

    task: TrainingTask
    cluster: Cluster
    cost_model: Optional[MalleusCostModel] = None
    config: Optional[DeepSpeedConfig] = None
    name: str = "DeepSpeed"

    def __post_init__(self) -> None:
        self.cost_model = self.cost_model or MalleusCostModel(
            self.task.model, self.cluster
        )

    def setup(self, state: ClusterState) -> None:
        """Tune the configuration once, for the straggler-free cluster."""
        if self.config is None:
            self.config = search_deepspeed_config(
                self.task, self.cluster, self.cost_model
            )
        if self.config is None:
            raise RuntimeError("no feasible DeepSpeed configuration found")

    def on_situation_change(self, state: ClusterState) -> Adjustment:
        """DeepSpeed does not react to stragglers."""
        return Adjustment(kind="none", description="ZeRO-3 keeps training")

    def step_time(self, state: ClusterState) -> float:
        """Step time under the current straggling rates."""
        assert self.config is not None
        return deepspeed_step_time(
            self.task, self.cluster, self.cost_model, self.config,
            state.rate_map(),
        )


@dataclass
class DeepSpeedRestartBaseline:
    """DeepSpeed w/ Restart: excludes straggling nodes and restarts training."""

    task: TrainingTask
    cluster: Cluster
    cost_model: Optional[MalleusCostModel] = None
    restart_config: RestartCostConfig = None  # type: ignore[assignment]
    straggler_threshold: float = 1.05
    name: str = "DeepSpeed w/ Restart"

    def __post_init__(self) -> None:
        self.cost_model = self.cost_model or MalleusCostModel(
            self.task.model, self.cluster
        )
        if self.restart_config is None:
            # ZeRO checkpoints are sharded and therefore saved/loaded in
            # parallel, which is why the paper measures cheaper restarts for
            # DeepSpeed than for Megatron-LM.
            self.restart_config = RestartCostConfig(
                checkpoint_bandwidth=12.0e9, framework_init_time=60.0,
            )
        self._active_cluster: Cluster = self.cluster
        self._config: Optional[DeepSpeedConfig] = None
        self._excluded_nodes: frozenset = frozenset()

    # ------------------------------------------------------------------
    def _straggling_nodes(self, state: ClusterState) -> frozenset:
        """Nodes containing at least one straggler (node-granular removal)."""
        nodes = set()
        for gpu_id, rate in state.rates.items():
            if rate > self.straggler_threshold:
                nodes.add(state.cluster.gpu(gpu_id).node_id)
        return frozenset(nodes)

    def _retune(self) -> None:
        """Re-run the manual configuration search on the active cluster."""
        cost_model = MalleusCostModel(
            self.task.model, self._active_cluster, self.cost_model.config
        )
        self._config = search_deepspeed_config(
            self.task, self._active_cluster, cost_model
        )
        if self._config is None:
            raise RuntimeError("no feasible DeepSpeed configuration after restart")
        self._active_cost_model = cost_model

    def setup(self, state: ClusterState) -> None:
        """Initial configuration on the full cluster."""
        self._active_cluster = self.cluster
        self._excluded_nodes = frozenset()
        self._active_cost_model = self.cost_model
        self._retune()

    def on_situation_change(self, state: ClusterState) -> Adjustment:
        """Remove (or re-add) whole nodes and restart when the set changes."""
        excluded = self._straggling_nodes(state)
        if excluded == self._excluded_nodes:
            return Adjustment(kind="none")
        keep = [
            gpu.gpu_id for gpu in self.cluster.iter_gpus()
            if gpu.node_id not in excluded
        ]
        self._active_cluster = self.cluster.subset(keep) if excluded else self.cluster
        self._excluded_nodes = excluded
        self._retune()
        downtime = restart_time(self.task.model, self._active_cluster,
                                self.restart_config)
        return Adjustment(
            kind="restart", downtime=downtime,
            description=f"excluded nodes {sorted(excluded)}",
        )

    def step_time(self, state: ClusterState) -> float:
        """Step time on the surviving nodes (no stragglers remain on them)."""
        assert self._config is not None
        rates = {
            g: state.rates.get(g, 1.0) for g in self._active_cluster.gpu_ids()
        }
        return deepspeed_step_time(
            self.task, self._active_cluster, self._active_cost_model,
            self._config, rates,
        )
