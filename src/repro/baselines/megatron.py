"""Megatron-LM-style uniform 3D-parallel baseline (§7.1).

Megatron-LM combines DP, TP (with sequence parallelism) and PP but
partitions devices, stages, layers and data *uniformly*.  Under stragglers
the slow GPU drags down its TP group, hence its pipeline stage, hence its
pipeline, and the data-parallel gradient synchronisation finally makes every
other pipeline wait too.  The baseline therefore keeps a fixed uniform plan
and simply simulates it under the current straggling rates.

The "w/ Restart" variant excludes every node that contains a straggler,
re-tunes the parallel configuration for the surviving GPU count (the manual
effort of Appendix A.3) and pays the checkpoint-save / re-init /
checkpoint-load restart cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..cluster.stragglers import ClusterState
from ..cluster.topology import Cluster
from ..core.costmodel import MalleusCostModel
from ..models.spec import TrainingTask
from ..parallel.plan import ParallelizationPlan, uniform_megatron_plan
from ..simulator.executor import ExecutionSimulator
from ..simulator.restart import RestartCostConfig, restart_time
from ..simulator.session import Adjustment
from .config_search import (
    ACTIVATION_CHECKPOINT_OVERHEAD,
    MegatronConfig,
    search_megatron_config,
)


def build_megatron_plan(config: MegatronConfig, task: TrainingTask,
                        cluster: Cluster) -> ParallelizationPlan:
    """Materialise a uniform plan from a Megatron configuration."""
    return uniform_megatron_plan(
        cluster.gpu_ids(), config.dp, config.tp, config.pp,
        task.model.num_layers, task.global_batch_size,
        config.micro_batch_size, first_stage_layers=config.first_stage_layers,
    )


@dataclass
class MegatronBaseline:
    """Megatron-LM without restarts: a fixed uniform plan rides out stragglers."""

    task: TrainingTask
    cluster: Cluster
    cost_model: Optional[MalleusCostModel] = None
    config: Optional[MegatronConfig] = None
    name: str = "Megatron-LM"

    def __post_init__(self) -> None:
        self.cost_model = self.cost_model or MalleusCostModel(
            self.task.model, self.cluster
        )
        self.simulator = ExecutionSimulator(self.cost_model)
        self.plan: Optional[ParallelizationPlan] = None

    def setup(self, state: ClusterState) -> None:
        """Tune the configuration once for the straggler-free cluster."""
        if self.config is None:
            self.config = search_megatron_config(
                self.task, self.cluster, self.cost_model
            )
        if self.config is None:
            raise RuntimeError("no feasible Megatron configuration found")
        self.plan = build_megatron_plan(self.config, self.task, self.cluster)

    def on_situation_change(self, state: ClusterState) -> Adjustment:
        """Megatron-LM does not react to stragglers."""
        return Adjustment(kind="none", description="uniform plan kept")

    def step_time(self, state: ClusterState) -> float:
        """Simulated step time of the uniform plan under the given rates."""
        assert self.plan is not None and self.config is not None
        result = self.simulator.simulate_step(
            self.plan, state.rate_map(), check_memory=False
        )
        time = result.step_time
        if self.config.activation_checkpointing:
            time *= ACTIVATION_CHECKPOINT_OVERHEAD
        return time


@dataclass
class MegatronRestartBaseline:
    """Megatron-LM w/ Restart: node-granular exclusion plus full restarts."""

    task: TrainingTask
    cluster: Cluster
    cost_model: Optional[MalleusCostModel] = None
    restart_config: RestartCostConfig = None  # type: ignore[assignment]
    straggler_threshold: float = 1.05
    name: str = "Megatron-LM w/ Restart"

    def __post_init__(self) -> None:
        self.cost_model = self.cost_model or MalleusCostModel(
            self.task.model, self.cluster
        )
        if self.restart_config is None:
            self.restart_config = RestartCostConfig()
        self._active_cluster: Cluster = self.cluster
        self._active_cost_model = self.cost_model
        self._config: Optional[MegatronConfig] = None
        self._plan: Optional[ParallelizationPlan] = None
        self._excluded_nodes: frozenset = frozenset()

    # ------------------------------------------------------------------
    def _straggling_nodes(self, state: ClusterState) -> frozenset:
        """Nodes containing at least one straggler."""
        nodes = set()
        for gpu_id, rate in state.rates.items():
            if rate > self.straggler_threshold:
                nodes.add(state.cluster.gpu(gpu_id).node_id)
        return frozenset(nodes)

    def _retune(self) -> None:
        """Manual configuration search on the currently active cluster."""
        cost_model = MalleusCostModel(
            self.task.model, self._active_cluster, self.cost_model.config
        )
        config = search_megatron_config(self.task, self._active_cluster, cost_model)
        if config is None:
            raise RuntimeError("no feasible Megatron configuration after restart")
        self._config = config
        self._active_cost_model = cost_model
        self._plan = build_megatron_plan(config, self.task, self._active_cluster)
        self._simulator = ExecutionSimulator(cost_model)

    def setup(self, state: ClusterState) -> None:
        """Initial configuration on the full cluster."""
        self._active_cluster = self.cluster
        self._excluded_nodes = frozenset()
        self._retune()

    def on_situation_change(self, state: ClusterState) -> Adjustment:
        """Exclude/re-include whole nodes and restart when the set changes."""
        excluded = self._straggling_nodes(state)
        if excluded == self._excluded_nodes:
            return Adjustment(kind="none")
        keep = [
            gpu.gpu_id for gpu in self.cluster.iter_gpus()
            if gpu.node_id not in excluded
        ]
        self._active_cluster = self.cluster.subset(keep) if excluded else self.cluster
        self._excluded_nodes = excluded
        self._retune()
        downtime = restart_time(self.task.model, self._active_cluster,
                                self.restart_config)
        return Adjustment(
            kind="restart", downtime=downtime,
            description=f"excluded nodes {sorted(excluded)}",
        )

    def step_time(self, state: ClusterState) -> float:
        """Step time on the surviving nodes."""
        assert self._plan is not None and self._config is not None
        rates = {
            g: state.rates.get(g, 1.0) for g in self._active_cluster.gpu_ids()
        }
        result = self._simulator.simulate_step(self._plan, rates,
                                               check_memory=False)
        time = result.step_time
        if self._config.activation_checkpointing:
            time *= ACTIVATION_CHECKPOINT_OVERHEAD
        return time

    @property
    def current_config(self) -> Optional[MegatronConfig]:
        """The currently active configuration (for the Tables 6/7 harness)."""
        return self._config
