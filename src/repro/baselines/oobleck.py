"""Oobleck-style fault-tolerant training baseline (§7.2, Figure 8).

Oobleck (SOSP'23) provides fault tolerance through *pipeline templates*: a
small set of pre-computed pipeline configurations it can switch between when
GPUs fail.  The paper repurposes it for stragglers by treating straggling
GPUs as faulty, and observes two costs:

* a constant efficiency overhead even without stragglers (Oobleck constrains
  the parallelization so that templates remain reachable), measured at
  1.82x of Malleus in the straggler-free case;
* limited adaptability: only transitions covered by the pre-computed
  templates can be handled by live migration (~2-8 s); every other
  transition falls back to a full restart (~330-370 s).

The baseline models both effects.  Templates are pre-computed for up to
``max_template_exclusions`` simultaneously excluded GPUs; a transition is
migratable only when both the previous and the new situation lie within the
template coverage, which reproduces the migrate/restart pattern of Figure 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..cluster.stragglers import ClusterState
from ..cluster.topology import Cluster
from ..core.costmodel import MalleusCostModel
from ..core.planner import MalleusPlanner
from ..models.spec import TrainingTask
from ..simulator.executor import ExecutionSimulator
from ..simulator.restart import RestartCostConfig, restart_time
from ..simulator.session import Adjustment

#: Efficiency penalty of Oobleck's fault-tolerance-constrained parallelization
#: relative to an efficiency-optimal plan (Figure 8: 21.1 s vs 11.6 s normal).
OOBLECK_OVERHEAD = 1.82

#: Live migration cost when a template transition exists (Figure 8: 7.3-7.9 s).
OOBLECK_MIGRATION_TIME = 7.6


@dataclass
class OobleckBaseline:
    """Fault-tolerant baseline that excludes stragglers via pipeline templates."""

    task: TrainingTask
    cluster: Cluster
    cost_model: Optional[MalleusCostModel] = None
    max_template_exclusions: int = 2
    overhead: float = OOBLECK_OVERHEAD
    migration_time: float = OOBLECK_MIGRATION_TIME
    restart_config: RestartCostConfig = None  # type: ignore[assignment]
    straggler_threshold: float = 1.05
    name: str = "Oobleck"

    def __post_init__(self) -> None:
        self.cost_model = self.cost_model or MalleusCostModel(
            self.task.model, self.cluster
        )
        if self.restart_config is None:
            self.restart_config = RestartCostConfig(
                checkpoint_bandwidth=4.0e9, framework_init_time=110.0,
            )
        self.simulator = ExecutionSimulator(self.cost_model)
        # Oobleck excludes stragglers entirely, so its achievable plan is the
        # straggler-free-optimal plan on the remaining GPUs; we reuse the
        # Malleus planner (with splitting disabled) to obtain it and then
        # apply the fault-tolerance overhead factor.
        self.planner = MalleusPlanner(
            self.task, self.cluster, self.cost_model, enable_splitting=False
        )
        self._plan = None
        self._excluded: frozenset = frozenset()
        self._dp: Optional[int] = None

    # ------------------------------------------------------------------
    def _excluded_gpus(self, state: ClusterState) -> frozenset:
        """GPUs Oobleck treats as faulty (all stragglers)."""
        return frozenset(
            g for g, r in state.rates.items() if r > self.straggler_threshold
        )

    def _replan(self, excluded: frozenset) -> None:
        """Compute the template plan that excludes the given GPUs."""
        rates = {
            g: (math.inf if g in excluded else 1.0)
            for g in self.cluster.gpu_ids()
        }
        result = self.planner.plan(rates, dp=self._dp)
        if (not result.feasible or result.plan is None) and self._dp is not None:
            # No template with the original DP degree exists for this set of
            # exclusions; fall back to a template with a different DP degree.
            result = self.planner.plan(rates)
        if not result.feasible or result.plan is None:
            raise RuntimeError("Oobleck could not build a pipeline template")
        if self._dp is None:
            self._dp = result.plan.dp_degree
        self._plan = result.plan

    def setup(self, state: ClusterState) -> None:
        """Initial template on the straggler-free cluster."""
        self._excluded = self._excluded_gpus(state)
        self._replan(self._excluded)

    def within_templates(self, excluded: frozenset) -> bool:
        """Whether a set of exclusions is covered by the pre-computed templates."""
        return len(excluded) <= self.max_template_exclusions

    def on_situation_change(self, state: ClusterState) -> Adjustment:
        """Migrate when a template transition exists, otherwise restart."""
        excluded = self._excluded_gpus(state)
        if excluded == self._excluded:
            return Adjustment(kind="none")
        migratable = self.within_templates(excluded) and \
            self.within_templates(self._excluded)
        self._excluded = excluded
        self._replan(excluded)
        if migratable:
            return Adjustment(
                kind="migrate", downtime=self.migration_time,
                description=f"template switch excluding {sorted(excluded)}",
            )
        downtime = restart_time(self.task.model, self.cluster, self.restart_config)
        return Adjustment(
            kind="restart", downtime=downtime,
            description=f"no template for excluding {sorted(excluded)}",
        )

    def step_time(self, state: ClusterState) -> float:
        """Step time of the current template plan (stragglers excluded)."""
        assert self._plan is not None
        rates = {
            g: (1.0 if g in self._excluded else state.rates.get(g, 1.0))
            for g in self.cluster.gpu_ids()
        }
        # Excluded GPUs do not participate; healthy rates apply to the rest.
        result = self.simulator.simulate_step(self._plan, rates,
                                              check_memory=False)
        return result.step_time * self.overhead
