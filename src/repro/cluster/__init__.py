"""Cluster substrate: topology, straggler state, traces and the profiler."""

from .profiler import Profiler, ProfilerConfig, ProfilerReport, RateDeltaEvent
from .scenarios import (
    SCENARIO_PRESETS,
    ScenarioConfig,
    ScenarioGenerator,
    generate_trace,
    scenario_preset,
)
from .stragglers import (
    FAILED_RATE,
    LEVEL_TO_RATE,
    NORMAL_RATE,
    ClusterState,
    StragglerSpec,
    rate_for_level,
    state_from_levels,
    state_from_rates,
)
from .topology import GB, GIB, Cluster, GPUDevice, Node, make_cluster, paper_cluster
from .trace import (
    StragglerSituation,
    StragglerTrace,
    ablation_situations,
    case_study_situation,
    normal_situation,
    paper_situation,
    paper_trace,
)

__all__ = [
    "GB",
    "GIB",
    "Cluster",
    "ClusterState",
    "FAILED_RATE",
    "GPUDevice",
    "LEVEL_TO_RATE",
    "NORMAL_RATE",
    "Node",
    "Profiler",
    "ProfilerConfig",
    "ProfilerReport",
    "RateDeltaEvent",
    "SCENARIO_PRESETS",
    "ScenarioConfig",
    "ScenarioGenerator",
    "StragglerSituation",
    "StragglerSpec",
    "StragglerTrace",
    "ablation_situations",
    "case_study_situation",
    "generate_trace",
    "make_cluster",
    "normal_situation",
    "paper_cluster",
    "paper_situation",
    "paper_trace",
    "rate_for_level",
    "scenario_preset",
    "state_from_levels",
    "state_from_rates",
]
