"""The Malleus profiler (§3.2 and §5.2).

The real system times CUDA events on every GPU, derives per-GPU straggling
rates, keeps benchmarking GPUs that were removed from training (standby
devices), and notifies the planner whenever any rate changes by more than
5% between consecutive iterations.  In this reproduction the "hardware" is
a :class:`~repro.cluster.stragglers.ClusterState`, so the profiler observes
the true rates plus optional measurement noise, and implements exactly the
same detection/notification logic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .stragglers import ClusterState, NORMAL_RATE
from .topology import Cluster


@dataclass
class ProfilerConfig:
    """Tunables of the profiler.

    ``shift_threshold`` is the relative change that triggers a re-planning
    notification (5% in the paper).  ``measurement_noise`` adds multiplicative
    jitter to the observed rates to exercise the detection logic under
    realistic conditions.  ``standby_benchmark_interval`` controls how often
    removed GPUs are micro-benchmarked (§5.2, elastic scaling).
    ``failure_timeout_rate`` is the observed rate above which a GPU is treated
    as failed (communication-call timeout in the real system).
    """

    shift_threshold: float = 0.05
    measurement_noise: float = 0.0
    standby_benchmark_interval: int = 1
    failure_timeout_rate: float = 1.0e6
    seed: int = 0


@dataclass(frozen=True)
class RateDeltaEvent:
    """One GPU's observed straggling-rate change between two iterations.

    The profiler used to hand listeners a bare gpu-id -> rate map; reports
    now also carry typed per-GPU deltas so listeners and diagnostics can
    see exactly what moved (including failure/recovery flags) without
    diffing consecutive rate maps themselves.  Note the re-plan engine
    derives its *own* delta against the incumbent plan's rate snapshot —
    which may predate several profiler iterations — so these events
    complement, rather than drive, its classification.
    """

    gpu_id: int
    previous_rate: float
    rate: float

    @property
    def relative_change(self) -> float:
        """Relative change ``|new - old| / max(old, 1)`` (inf on fail/join)."""
        if math.isinf(self.rate) or math.isinf(self.previous_rate):
            return 0.0 if self.rate == self.previous_rate else math.inf
        return abs(self.rate - self.previous_rate) / max(self.previous_rate, 1.0)

    @property
    def is_failure(self) -> bool:
        """The GPU went from a finite rate to failed (infinite rate)."""
        return math.isinf(self.rate) and not math.isinf(self.previous_rate)

    @property
    def is_recovery(self) -> bool:
        """The GPU came back from failed to a finite rate."""
        return math.isinf(self.previous_rate) and not math.isinf(self.rate)


@dataclass
class ProfilerReport:
    """What the profiler hands to the planner after an iteration."""

    iteration: int
    rates: Dict[int, float]
    changed: bool
    max_relative_change: float
    stragglers: Dict[int, float]
    failed: List[int]
    #: Typed per-GPU deltas (only GPUs whose observed rate moved at all).
    deltas: List[RateDeltaEvent] = field(default_factory=list)


class Profiler:
    """Measures per-GPU straggling rates and detects shifts.

    Parameters
    ----------
    cluster:
        The cluster being monitored.
    config:
        Detection thresholds and noise settings.
    """

    def __init__(self, cluster: Cluster, config: Optional[ProfilerConfig] = None):
        self.cluster = cluster
        self.config = config or ProfilerConfig()
        self._rng = random.Random(self.config.seed)
        self._last_observed: Dict[int, float] = {
            gpu_id: NORMAL_RATE for gpu_id in cluster.gpu_ids()
        }
        self._standby: Dict[int, float] = {}
        self._iteration = 0
        self._listeners: List[Callable[[ProfilerReport], None]] = []

    # ------------------------------------------------------------------
    # Listener registration (the planner subscribes here)
    # ------------------------------------------------------------------
    def add_listener(self, callback: Callable[[ProfilerReport], None]) -> None:
        """Register a callback invoked whenever a shift is detected."""
        self._listeners.append(callback)

    # ------------------------------------------------------------------
    # Standby (removed) device management
    # ------------------------------------------------------------------
    def mark_standby(self, gpu_ids) -> None:
        """Record GPUs that the current plan removed from training."""
        for gpu_id in gpu_ids:
            self._standby[gpu_id] = self._last_observed.get(gpu_id, NORMAL_RATE)

    def unmark_standby(self, gpu_ids) -> None:
        """Remove GPUs from the standby set (they rejoined training)."""
        for gpu_id in gpu_ids:
            self._standby.pop(gpu_id, None)

    @property
    def standby_gpus(self) -> List[int]:
        """GPUs currently kept out of training but still benchmarked."""
        return sorted(self._standby)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _observe_rate(self, true_rate: float) -> float:
        """Apply measurement noise to a true straggling rate."""
        if math.isinf(true_rate):
            return true_rate
        noise = self.config.measurement_noise
        if noise <= 0.0:
            return true_rate
        jitter = 1.0 + self._rng.uniform(-noise, noise)
        return max(1.0, true_rate * jitter)

    def measure(self, state: ClusterState) -> ProfilerReport:
        """Measure one iteration and return (and broadcast) a report.

        GPUs in the standby set are only re-measured every
        ``standby_benchmark_interval`` iterations, mimicking the periodic
        micro-benchmarks of §5.2.
        """
        self._iteration += 1
        observed: Dict[int, float] = {}
        for gpu_id in self.cluster.gpu_ids():
            true_rate = state.rate(gpu_id)
            if gpu_id in self._standby:
                refresh = (self._iteration % self.config.standby_benchmark_interval == 0)
                if refresh:
                    value = self._observe_rate(true_rate)
                    self._standby[gpu_id] = value
                observed[gpu_id] = self._standby[gpu_id]
            else:
                observed[gpu_id] = self._observe_rate(true_rate)

        worst_change = 0.0
        deltas: List[RateDeltaEvent] = []
        for gpu_id, rate in observed.items():
            old = self._last_observed.get(gpu_id, NORMAL_RATE)
            if rate != old:
                deltas.append(RateDeltaEvent(
                    gpu_id=gpu_id, previous_rate=old, rate=rate,
                ))
            if math.isinf(rate) or math.isinf(old):
                if rate != old:
                    worst_change = math.inf
                continue
            worst_change = max(worst_change, abs(rate - old) / max(old, 1.0))

        changed = worst_change > self.config.shift_threshold
        stragglers = {
            gpu_id: rate
            for gpu_id, rate in observed.items()
            if rate > 1.0 + self.config.shift_threshold
        }
        failed = [
            gpu_id
            for gpu_id, rate in observed.items()
            if math.isinf(rate) or rate >= self.config.failure_timeout_rate
        ]
        report = ProfilerReport(
            iteration=self._iteration,
            rates=dict(observed),
            changed=changed,
            max_relative_change=worst_change,
            stragglers=stragglers,
            failed=failed,
            deltas=deltas,
        )
        self._last_observed = observed
        if changed:
            for listener in self._listeners:
                listener(report)
        return report

    @property
    def last_rates(self) -> Dict[int, float]:
        """The most recently observed gpu-id -> rate mapping."""
        return dict(self._last_observed)
