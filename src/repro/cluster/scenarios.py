"""Synthetic straggler-scenario generation: randomized, seeded traces.

The paper evaluates on a single hand-built trace of six situations
(:func:`repro.cluster.trace.paper_trace`).  Production straggler studies
paint a very different picture: degradation is bursty, correlated by node,
dominated by many small events, and interleaved with failures and
re-joins.  This module generates such regimes synthetically so every
planner, repair-engine and migration test can run on *many* traces instead
of the one paper trace.

A :class:`ScenarioGenerator` composes independent **straggler processes**
into a :class:`~repro.cluster.trace.StragglerTrace`:

``transient``
    One GPU jitters for a single situation and recovers.
``persistent``
    One GPU degrades to a paper-calibrated rate (level 1/2/3) and stays
    degraded for several situations.
``node``
    A whole node slows down uniformly (shared NIC / PCIe / cooling fault),
    the classic node-correlated pattern.
``thermal``
    One GPU ramps up gradually over several situations, peaks, and cools
    back down (a triangular rate profile).
``flapping``
    One GPU oscillates between healthy and degraded every situation.
``churn``
    One GPU fails outright (infinite rate) and re-joins a few situations
    later — a membership change for the re-planning engine.

Processes spawn per situation from a seeded Poisson stream whose rate
scales with the cluster size, so the same config describes a 64-GPU and an
8192-GPU regime.  Everything is driven by one ``random.Random(seed)``
instance created per :meth:`ScenarioGenerator.generate` call, which makes
generation fully deterministic: the same ``(cluster, config)`` pair always
yields the identical trace (asserted by ``tests/test_scenarios.py``).

The :data:`SCENARIO_PRESETS` library names ~9 regimes (including the
``frequent-small-events`` regime the transition-aware planner's amortized
horizon term is designed for); :func:`generate_trace` is the one-line
entry point used by the experiments and the property-test strategies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Union

from .stragglers import FAILED_RATE, LEVEL_TO_RATE, StragglerSpec
from .topology import Cluster
from .trace import StragglerSituation, StragglerTrace

#: Reference cluster size for ``ScenarioConfig.event_rate`` (events per
#: situation are scaled by ``num_gpus / SCALE_REFERENCE_GPUS`` so a config
#: describes the same per-GPU event density from 64 to 8192 GPUs).
SCALE_REFERENCE_GPUS = 64

#: Straggling rates considered "paper-calibrated" severities (level 1/2/3).
_SEVERITY_RATES = (LEVEL_TO_RATE[1], LEVEL_TO_RATE[2], LEVEL_TO_RATE[3])

#: Process kinds a generator can spawn, in weight order.
PROCESS_KINDS = ("transient", "persistent", "node", "thermal",
                 "flapping", "churn")


@dataclass
class ScenarioConfig:
    """Parameters of one synthetic straggler regime.

    ``event_rate`` is the expected number of *new* straggler processes per
    situation on a :data:`SCALE_REFERENCE_GPUS`-GPU cluster; with
    ``scale_with_cluster`` (default) it is multiplied by ``num_gpus / 64``
    so larger clusters see proportionally more events.  ``severity``
    scales every process's straggling-rate excess over 1.0 (0.2 turns a
    2.6x degrader into a ~1.3x one); failures are unaffected (a dead GPU
    is dead at any severity).  The ``*_weight`` fields set the relative
    spawn probability of each process kind; zero disables a kind.
    """

    name: str = "scenario"
    seed: int = 0
    num_situations: int = 12
    duration_steps: int = 50
    event_rate: float = 1.0
    severity: float = 1.0
    scale_with_cluster: bool = True
    transient_weight: float = 1.0
    persistent_weight: float = 1.0
    node_weight: float = 0.0
    thermal_weight: float = 0.0
    flapping_weight: float = 0.0
    churn_weight: float = 0.0
    #: The trace always opens straggler-free (the session protocol uses the
    #: first situation for setup).
    start_normal: bool = True
    #: Upper bound on the fraction of GPUs failed at once; churn spawns
    #: beyond it are dropped (the planner must keep a feasible cluster).
    max_failed_fraction: float = 0.125

    def weights(self) -> List[float]:
        """Spawn weights in :data:`PROCESS_KINDS` order."""
        return [
            self.transient_weight, self.persistent_weight, self.node_weight,
            self.thermal_weight, self.flapping_weight, self.churn_weight,
        ]


@dataclass
class _Process:
    """One active straggler process: per-epoch rate contributions."""

    kind: str
    gpu_ids: List[int]
    #: Rate profile over the process lifetime; entry ``t`` applies to every
    #: GPU of the process during its ``t``-th situation.
    profile: List[float]
    age: int = 0

    @property
    def alive(self) -> bool:
        """Whether the process still contributes to the next situation."""
        return self.age < len(self.profile)

    def rate(self) -> float:
        """Rate contribution of the current situation."""
        return self.profile[self.age]


class ScenarioGenerator:
    """Seeded generator of synthetic straggler traces.

    Parameters
    ----------
    cluster:
        The cluster the trace plays on (supplies GPU/node ids and scale).
    config:
        The regime being generated; see :class:`ScenarioConfig`.
    """

    def __init__(self, cluster: Cluster, config: Optional[ScenarioConfig] = None):
        self.cluster = cluster
        self.config = config or ScenarioConfig()

    # ------------------------------------------------------------------
    # Sampling helpers (all randomness flows through one Random instance)
    # ------------------------------------------------------------------
    @staticmethod
    def _poisson(rng: random.Random, rate: float) -> int:
        """Knuth's inversion sampler (rates here are small)."""
        if rate <= 0.0:
            return 0
        threshold = math.exp(-rate)
        count, product = 0, rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count

    def _scaled_rate(self, rate: float) -> float:
        """Apply ``severity`` to a straggling rate (excess over 1.0)."""
        severity = self.config.severity
        return max(1.0, 1.0 + (rate - 1.0) * severity)

    def _spawn(self, rng: random.Random, kind: str,
               failed: set) -> Optional[_Process]:
        """Create one process of the given kind (or None when infeasible)."""
        gpu_ids = self.cluster.gpu_ids()
        config = self.config
        if kind == "transient":
            gpu = rng.choice(gpu_ids)
            rate = self._scaled_rate(1.1 + 0.8 * rng.random())
            return _Process(kind, [gpu], [rate])
        if kind == "persistent":
            gpu = rng.choice(gpu_ids)
            rate = self._scaled_rate(rng.choice(_SEVERITY_RATES))
            duration = rng.randint(2, 6)
            return _Process(kind, [gpu], [rate] * duration)
        if kind == "node":
            node = rng.choice(self.cluster.nodes)
            rate = self._scaled_rate(1.5 + 1.5 * rng.random())
            duration = rng.randint(2, 5)
            return _Process(kind, node.gpu_ids(), [rate] * duration)
        if kind == "thermal":
            gpu = rng.choice(gpu_ids)
            peak = self._scaled_rate(1.8 + 1.5 * rng.random())
            half = rng.randint(2, 4)
            ramp = [1.0 + (peak - 1.0) * (i + 1) / half for i in range(half)]
            profile = ramp + ramp[-2::-1]  # up, peak, symmetric cool-down
            return _Process(kind, [gpu], profile)
        if kind == "flapping":
            gpu = rng.choice(gpu_ids)
            rate = self._scaled_rate(1.3 + 1.3 * rng.random())
            duration = rng.randint(4, 8)
            profile = [rate if i % 2 == 0 else 1.0 for i in range(duration)]
            return _Process(kind, [gpu], profile)
        if kind == "churn":
            budget = int(config.max_failed_fraction * len(gpu_ids))
            candidates = [g for g in gpu_ids if g not in failed]
            if len(failed) >= budget or not candidates:
                return None
            gpu = rng.choice(candidates)
            duration = rng.randint(1, 3)
            return _Process(kind, [gpu], [FAILED_RATE] * duration)
        raise KeyError(f"unknown process kind '{kind}'")

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def generate(self) -> StragglerTrace:
        """Generate the trace (deterministic per ``(cluster, config)``)."""
        config = self.config
        rng = random.Random(config.seed)
        rate = config.event_rate
        if config.scale_with_cluster:
            rate *= max(1.0, self.cluster.num_gpus / SCALE_REFERENCE_GPUS)
        kinds = [k for k, w in zip(PROCESS_KINDS, config.weights()) if w > 0]
        weights = [w for w in config.weights() if w > 0]

        situations: List[StragglerSituation] = []
        if config.start_normal:
            situations.append(StragglerSituation(
                name="Normal", stragglers=[],
                duration_steps=config.duration_steps,
            ))
        active: List[_Process] = []
        while len(situations) < config.num_situations:
            # Spawn this situation's new processes.
            failed = {
                g for p in active if p.alive and math.isinf(p.rate())
                for g in p.gpu_ids
            }
            if kinds:
                for _ in range(self._poisson(rng, rate)):
                    kind = rng.choices(kinds, weights=weights)[0]
                    process = self._spawn(rng, kind, failed)
                    if process is None:
                        continue
                    active.append(process)
                    if math.isinf(process.rate()):
                        failed.update(process.gpu_ids)
            # Combine the active processes; TP is synchronous, so
            # overlapping contributions bind at the worst (max) rate.
            combined: Dict[int, float] = {}
            for process in active:
                if not process.alive:
                    continue
                value = process.rate()
                for gpu in process.gpu_ids:
                    combined[gpu] = max(combined.get(gpu, 1.0), value)
                process.age += 1
            active = [p for p in active if p.alive]
            stragglers = [
                StragglerSpec(gpu_id=gpu, rate=value)
                for gpu, value in sorted(combined.items())
                if value > 1.0 + 1e-9
            ]
            situations.append(StragglerSituation(
                name=f"E{len(situations)}", stragglers=stragglers,
                duration_steps=config.duration_steps,
            ))
        return StragglerTrace(cluster=self.cluster, situations=situations,
                             name=config.name)


# ----------------------------------------------------------------------
# Preset library
# ----------------------------------------------------------------------
#: Named regimes.  ``frequent-small-events`` and ``node-correlated`` are the
#: two the scenario-sweep gate requires overlapped migration to win on.
SCENARIO_PRESETS: Dict[str, ScenarioConfig] = {
    "calm": ScenarioConfig(
        name="calm", event_rate=0.25, severity=0.5,
        transient_weight=1.0, persistent_weight=0.25,
    ),
    "transient-jitter": ScenarioConfig(
        name="transient-jitter", event_rate=1.5, severity=0.6,
        transient_weight=1.0, persistent_weight=0.0,
    ),
    "persistent-degraders": ScenarioConfig(
        name="persistent-degraders", event_rate=0.75,
        transient_weight=0.0, persistent_weight=1.0,
    ),
    "node-correlated": ScenarioConfig(
        name="node-correlated", event_rate=0.6,
        transient_weight=0.25, persistent_weight=0.25, node_weight=1.0,
    ),
    "thermal-ramp": ScenarioConfig(
        name="thermal-ramp", event_rate=0.75,
        transient_weight=0.25, persistent_weight=0.0, thermal_weight=1.0,
    ),
    "flapping": ScenarioConfig(
        name="flapping", event_rate=0.75,
        transient_weight=0.0, persistent_weight=0.25, flapping_weight=1.0,
    ),
    "failure-churn": ScenarioConfig(
        name="failure-churn", event_rate=0.6,
        transient_weight=0.5, persistent_weight=0.5, churn_weight=1.0,
        num_situations=10,
    ),
    "frequent-small-events": ScenarioConfig(
        name="frequent-small-events", event_rate=3.0, severity=0.35,
        transient_weight=1.0, persistent_weight=0.5, flapping_weight=0.5,
        num_situations=16, duration_steps=20,
    ),
    "bursty-mixed": ScenarioConfig(
        name="bursty-mixed", event_rate=1.25,
        transient_weight=1.0, persistent_weight=1.0, node_weight=0.5,
        thermal_weight=0.5, flapping_weight=0.5, churn_weight=0.25,
        num_situations=14,
    ),
}


def scenario_preset(name: str, seed: Optional[int] = None,
                    **overrides) -> ScenarioConfig:
    """A fresh copy of a named preset, optionally re-seeded / overridden."""
    try:
        base = SCENARIO_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_PRESETS))
        raise KeyError(f"unknown scenario preset '{name}' (known: {known})") \
            from None
    if seed is not None:
        overrides["seed"] = seed
    return replace(base, **overrides)


def degradation_priors(config: ScenarioConfig) -> Dict[str, float]:
    """Prior degradation structure implied by a scenario's process mix.

    Returns the normalized per-kind spawn shares (keys from
    :data:`PROCESS_KINDS`) plus two derived biases the speculation policy
    (:class:`~repro.runtime.speculate.SpeculationPolicy`) uses to weight
    its guesses:

    ``recovery_bias``
        Mass of processes whose generative shape *ends healthy soon* —
        transient blips vanish after one situation, flapping profiles
        alternate back to 1.0, thermal ramps decay — so a currently
        degraded GPU is likely to recover.

    ``relapse_bias``
        Mass of processes that re-degrade or hold a degraded rate —
        flapping alternates back up, persistent/node processes hold for
        their whole duration, thermal ramps climb again — so a recently
        recovered GPU is likely to relapse to its last degraded rate.

    Churn (GPU death) contributes to neither: failures bypass the repair
    engine entirely, so speculating on them is wasted work.
    """
    weights = config.weights()
    total = sum(weights)
    if total <= 0:
        shares = {kind: 0.0 for kind in PROCESS_KINDS}
    else:
        shares = {
            kind: weight / total
            for kind, weight in zip(PROCESS_KINDS, weights)
        }
    priors = dict(shares)
    priors["recovery_bias"] = (
        shares["transient"] + shares["flapping"] + 0.5 * shares["thermal"]
    )
    priors["relapse_bias"] = (
        shares["flapping"] + shares["persistent"] + shares["node"]
        + 0.5 * shares["thermal"]
    )
    priors["failure_bias"] = shares["churn"]
    return priors


def generate_trace(cluster: Cluster,
                   config: Union[str, ScenarioConfig, None] = None,
                   seed: Optional[int] = None,
                   **overrides) -> StragglerTrace:
    """Generate a trace from a preset name or an explicit config.

    ``generate_trace(cluster, "flapping", seed=3)`` is the common form;
    keyword overrides are applied on top of the preset.
    """
    if config is None:
        config = ScenarioConfig(**overrides)
        if seed is not None:
            config.seed = seed
    elif isinstance(config, str):
        config = scenario_preset(config, seed=seed, **overrides)
    elif seed is not None or overrides:
        if seed is not None:
            overrides["seed"] = seed
        config = replace(config, **overrides)
    return ScenarioGenerator(cluster, config).generate()
