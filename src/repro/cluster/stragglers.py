"""Straggler modelling: injection levels, straggling rates and cluster state.

The paper simulates stragglers by launching 1, 2, 3 (and in the ablation, 8)
extra compute processes on a GPU, referred to as level-1/2/3/8 stragglers.
The planner only ever consumes the resulting *straggling rate* ``x >= 1``
(how much slower the GPU is compared to a healthy one, Table 1), so we map
injection levels to the rates reported in the paper's case studies:

* level-1  -> ~2.6   (Table 4 reports 2.57-2.62)
* level-2  -> ~3.8   (Table 4 reports 3.75-3.8)
* level-3  -> ~5.42  (Table 4 / Figure 9)
* level-8  -> ~12.53 (Figure 9)

A failed GPU is modelled as an infinite straggling rate, exactly as §8 of
the paper suggests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from .topology import Cluster

NORMAL_RATE = 1.0
FAILED_RATE = math.inf

#: Calibrated mapping from "number of extra compute processes" to the
#: observed straggling rate, taken from the paper's case studies.
LEVEL_TO_RATE: Dict[int, float] = {
    0: 1.0,
    1: 2.6,
    2: 3.8,
    3: 5.42,
    8: 12.53,
}


def rate_for_level(level: int) -> float:
    """Straggling rate for an injection level (extra compute processes).

    Levels present in the calibration table are returned exactly; other
    levels are interpolated/extrapolated linearly (one extra process adds
    roughly 1.44x of a healthy GPU's work).
    """
    if level < 0:
        raise ValueError("straggler level must be non-negative")
    if level in LEVEL_TO_RATE:
        return LEVEL_TO_RATE[level]
    return 1.0 + 1.44 * level


@dataclass
class StragglerSpec:
    """A straggler to inject: which GPU, and either a level or a raw rate."""

    gpu_id: int
    level: Optional[int] = None
    rate: Optional[float] = None

    def resolved_rate(self) -> float:
        """The straggling rate implied by this spec."""
        if self.rate is not None:
            if self.rate < 1.0:
                raise ValueError("straggling rate must be >= 1")
            return self.rate
        if self.level is None:
            raise ValueError("either level or rate must be given")
        return rate_for_level(self.level)


@dataclass
class ClusterState:
    """The dynamic straggling state of every GPU in a cluster.

    This is what the profiler reports and what the planner consumes: a
    mapping from GPU id to straggling rate.  Healthy GPUs have rate 1.0,
    failed GPUs have rate ``inf``.
    """

    cluster: Cluster
    rates: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        full = {gpu_id: NORMAL_RATE for gpu_id in self.cluster.gpu_ids()}
        for gpu_id, rate in self.rates.items():
            if gpu_id not in full:
                raise KeyError(f"gpu id {gpu_id} not in cluster")
            if rate < 1.0:
                raise ValueError("straggling rates must be >= 1")
            full[gpu_id] = float(rate)
        self.rates = full

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def set_rate(self, gpu_id: int, rate: float) -> None:
        """Set the straggling rate of one GPU."""
        if gpu_id not in self.rates:
            raise KeyError(f"gpu id {gpu_id} not in cluster")
        if rate < 1.0:
            raise ValueError("straggling rates must be >= 1")
        self.rates[gpu_id] = float(rate)

    def set_level(self, gpu_id: int, level: int) -> None:
        """Set a GPU's straggling rate from an injection level."""
        self.set_rate(gpu_id, rate_for_level(level))

    def clear(self, gpu_id: Optional[int] = None) -> None:
        """Reset one GPU (or all GPUs) back to healthy."""
        if gpu_id is None:
            for key in self.rates:
                self.rates[key] = NORMAL_RATE
        else:
            self.set_rate(gpu_id, NORMAL_RATE)

    def fail(self, gpu_id: int) -> None:
        """Mark a GPU as failed (infinite straggling rate)."""
        if gpu_id not in self.rates:
            raise KeyError(f"gpu id {gpu_id} not in cluster")
        self.rates[gpu_id] = FAILED_RATE

    def apply(self, specs: Iterable[StragglerSpec], reset: bool = True) -> None:
        """Apply a collection of straggler specs (optionally from scratch)."""
        if reset:
            self.clear()
        for spec in specs:
            self.set_rate(spec.gpu_id, spec.resolved_rate())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rate(self, gpu_id: int) -> float:
        """Straggling rate of one GPU."""
        return self.rates[gpu_id]

    def rate_map(self) -> Dict[int, float]:
        """Copy of the full gpu-id -> rate mapping."""
        return dict(self.rates)

    def stragglers(self, threshold: float = 1.05) -> Dict[int, float]:
        """GPUs whose rate exceeds ``threshold`` (default: 5% slower)."""
        return {g: r for g, r in self.rates.items() if r > threshold}

    def failed(self) -> List[int]:
        """Ids of failed GPUs."""
        return [g for g, r in self.rates.items() if math.isinf(r)]

    def healthy(self, threshold: float = 1.05) -> List[int]:
        """Ids of GPUs that are not stragglers."""
        return [g for g, r in self.rates.items() if r <= threshold]

    def node_rates(self, node_id: int) -> List[float]:
        """Straggling rates of the GPUs on one node, in local-rank order."""
        node = next(n for n in self.cluster.nodes if n.node_id == node_id)
        return [self.rates[g.gpu_id] for g in node.gpus]

    def copy(self) -> "ClusterState":
        """Deep copy of this state."""
        return ClusterState(cluster=self.cluster, rates=dict(self.rates))

    def max_relative_change(self, other: "ClusterState") -> float:
        """Largest relative per-GPU rate change compared with ``other``.

        The profiler triggers re-planning when this exceeds 5% between two
        consecutive iterations (§3.2).
        """
        worst = 0.0
        for gpu_id, rate in self.rates.items():
            old = other.rates.get(gpu_id, NORMAL_RATE)
            if math.isinf(rate) or math.isinf(old):
                if rate != old:
                    return math.inf
                continue
            base = max(old, 1.0)
            worst = max(worst, abs(rate - old) / base)
        return worst

    def theoretic_speedup_denominator(self) -> float:
        """``(N - n) + sum(1/x_i)`` used by the theoretic-optimum formula."""
        total = 0.0
        for rate in self.rates.values():
            if math.isinf(rate):
                continue
            total += 1.0 / rate if rate > 1.0 else 1.0
        return total


def state_from_levels(cluster: Cluster, levels: Mapping[int, int]) -> ClusterState:
    """Build a :class:`ClusterState` from a gpu-id -> level mapping."""
    state = ClusterState(cluster=cluster)
    for gpu_id, level in levels.items():
        state.set_level(gpu_id, level)
    return state


def state_from_rates(cluster: Cluster, rates: Mapping[int, float]) -> ClusterState:
    """Build a :class:`ClusterState` from a gpu-id -> rate mapping."""
    return ClusterState(cluster=cluster, rates=dict(rates))
