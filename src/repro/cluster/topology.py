"""Cluster topology model: GPUs, nodes and interconnects.

The paper's testbed is 8 servers with 8 x A800 (80 GB) GPUs each, NVLink
(400 GB/s) inside a node and InfiniBand (200 GB/s) across nodes.  We model
the cluster as plain data so the planner, the cost model and the
discrete-event simulator can all consume it.  Nothing here assumes NVIDIA
hardware; the numbers are just bandwidth/compute/memory scalars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

GIB = 1024.0 ** 3
GB = 1.0e9


@dataclass(frozen=True)
class GPUDevice:
    """A single accelerator.

    ``peak_tflops`` is the dense bf16 peak used to convert FLOPs into time
    and to compute MFU.  ``memory_bytes`` is the usable device memory
    (before the reserved gap for NCCL/CUDA contexts, which the memory cost
    model subtracts separately).
    """

    gpu_id: int
    node_id: int
    local_rank: int
    memory_bytes: float = 80.0 * GIB
    peak_tflops: float = 312.0

    @property
    def peak_flops(self) -> float:
        """Peak throughput in FLOP/s."""
        return self.peak_tflops * 1.0e12


@dataclass(frozen=True)
class Node:
    """A server holding several GPUs connected by a fast intra-node link."""

    node_id: int
    gpus: tuple
    intra_node_bandwidth: float = 400.0 * GB

    @property
    def num_gpus(self) -> int:
        """Number of GPUs on this node."""
        return len(self.gpus)

    def gpu_ids(self) -> List[int]:
        """Global ids of the GPUs on this node."""
        return [gpu.gpu_id for gpu in self.gpus]


@dataclass
class Cluster:
    """A collection of nodes plus the inter-node interconnect."""

    nodes: List[Node]
    inter_node_bandwidth: float = 200.0 * GB
    name: str = "cluster"
    _gpu_index: Dict[int, GPUDevice] = field(default_factory=dict, repr=False)
    _node_index: Dict[int, Node] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        self._gpu_index = {}
        self._node_index = {}
        for node in self.nodes:
            if node.node_id in self._node_index:
                raise ValueError(f"duplicate node id {node.node_id}")
            self._node_index[node.node_id] = node
            for gpu in node.gpus:
                if gpu.gpu_id in self._gpu_index:
                    raise ValueError(f"duplicate gpu id {gpu.gpu_id}")
                self._gpu_index[gpu.gpu_id] = gpu

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    @property
    def num_gpus(self) -> int:
        """Total number of GPUs in the cluster."""
        return len(self._gpu_index)

    @property
    def gpus_per_node(self) -> int:
        """GPUs per node (assumes a homogeneous layout)."""
        return self.nodes[0].num_gpus

    def gpu(self, gpu_id: int) -> GPUDevice:
        """Return the GPU with the given global id."""
        try:
            return self._gpu_index[gpu_id]
        except KeyError:
            raise KeyError(f"gpu id {gpu_id} not in cluster") from None

    def gpu_ids(self) -> List[int]:
        """All GPU ids, sorted."""
        return sorted(self._gpu_index)

    def iter_gpus(self) -> Iterator[GPUDevice]:
        """Iterate over all GPUs in id order."""
        for gpu_id in self.gpu_ids():
            yield self._gpu_index[gpu_id]

    def node_of(self, gpu_id: int) -> Node:
        """Return the node hosting ``gpu_id``."""
        return self._node_index[self.gpu(gpu_id).node_id]

    def same_node(self, gpu_ids: Iterable[int]) -> bool:
        """True when all given GPUs live on the same node."""
        node_ids = {self.gpu(g).node_id for g in gpu_ids}
        return len(node_ids) <= 1

    def bandwidth_between(self, gpu_a: int, gpu_b: int) -> float:
        """Point-to-point bandwidth (bytes/s) between two GPUs."""
        a, b = self.gpu(gpu_a), self.gpu(gpu_b)
        if a.node_id == b.node_id:
            return self._node_index[a.node_id].intra_node_bandwidth
        return self.inter_node_bandwidth

    def group_bandwidth(self, gpu_ids: Sequence[int]) -> float:
        """Bottleneck collective bandwidth of a GPU group."""
        ids = list(gpu_ids)
        if len(ids) <= 1:
            return self.node_of(ids[0]).intra_node_bandwidth if ids \
                else self.inter_node_bandwidth
        if self.same_node(ids):
            return self.node_of(ids[0]).intra_node_bandwidth
        return self.inter_node_bandwidth

    def memory_capacity(self, gpu_id: int) -> float:
        """Usable memory (bytes) of a GPU."""
        return self.gpu(gpu_id).memory_bytes

    def subset(self, gpu_ids: Sequence[int], name: Optional[str] = None) -> "Cluster":
        """Build a new cluster view containing only the given GPUs.

        Used by the restart-based baselines, which remove entire nodes and
        re-launch training on the survivors.
        """
        keep = set(gpu_ids)
        new_nodes: List[Node] = []
        for node in self.nodes:
            kept = tuple(g for g in node.gpus if g.gpu_id in keep)
            if kept:
                new_nodes.append(
                    Node(
                        node_id=node.node_id,
                        gpus=kept,
                        intra_node_bandwidth=node.intra_node_bandwidth,
                    )
                )
        if not new_nodes:
            raise ValueError("subset would produce an empty cluster")
        return Cluster(
            nodes=new_nodes,
            inter_node_bandwidth=self.inter_node_bandwidth,
            name=name or f"{self.name}-subset",
        )


def make_cluster(
    num_nodes: int = 8,
    gpus_per_node: int = 8,
    memory_gib: float = 80.0,
    peak_tflops: float = 312.0,
    intra_node_bandwidth: float = 400.0 * GB,
    inter_node_bandwidth: float = 200.0 * GB,
    name: str = "a800-cluster",
) -> Cluster:
    """Build a homogeneous cluster like the paper's 8x8 A800 testbed.

    GPU ids are assigned node-major: GPU ``i`` lives on node ``i //
    gpus_per_node`` with local rank ``i % gpus_per_node``, matching the
    ``x0 .. x63`` naming used by the paper's case studies (Table 4).
    """
    if num_nodes <= 0 or gpus_per_node <= 0:
        raise ValueError("num_nodes and gpus_per_node must be positive")
    nodes: List[Node] = []
    for node_id in range(num_nodes):
        gpus = tuple(
            GPUDevice(
                gpu_id=node_id * gpus_per_node + local,
                node_id=node_id,
                local_rank=local,
                memory_bytes=memory_gib * GIB,
                peak_tflops=peak_tflops,
            )
            for local in range(gpus_per_node)
        )
        nodes.append(
            Node(
                node_id=node_id,
                gpus=gpus,
                intra_node_bandwidth=intra_node_bandwidth,
            )
        )
    return Cluster(
        nodes=nodes,
        inter_node_bandwidth=inter_node_bandwidth,
        name=name,
    )


def paper_cluster(num_gpus: int = 64) -> Cluster:
    """The evaluation cluster: ``num_gpus`` A800s in 8-GPU nodes."""
    if num_gpus % 8 != 0:
        raise ValueError("paper clusters use 8-GPU nodes")
    return make_cluster(num_nodes=num_gpus // 8, gpus_per_node=8)
