"""Dynamic straggler traces.

The end-to-end evaluation (Figure 7 / Table 2) runs each framework through a
trace of six straggler situations S1..S6 (plus the straggler-free "Normal"
situation at both ends).  A trace is an ordered list of situations, each
being a set of straggler specs held for a number of training iterations.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .stragglers import ClusterState, StragglerSpec
from .topology import Cluster


@dataclass
class StragglerSituation:
    """A named straggler situation, e.g. S3 = one level-1 + one level-3."""

    name: str
    stragglers: List[StragglerSpec] = field(default_factory=list)
    duration_steps: int = 100

    def apply_to(self, state: ClusterState) -> None:
        """Overwrite ``state`` with this situation (healthy elsewhere)."""
        state.apply(self.stragglers, reset=True)

    def as_state(self, cluster: Cluster) -> ClusterState:
        """Materialise this situation as a fresh :class:`ClusterState`."""
        state = ClusterState(cluster=cluster)
        self.apply_to(state)
        return state

    def rate_map(self, cluster: Cluster) -> Dict[int, float]:
        """GPU id -> rate mapping for this situation."""
        return self.as_state(cluster).rate_map()

    @property
    def num_stragglers(self) -> int:
        """How many GPUs are straggling in this situation."""
        return len(self.stragglers)

    def as_dict(self) -> Dict[str, object]:
        """Strict-JSON representation (``inf`` rates as ``"inf"``)."""
        stragglers = []
        for spec in self.stragglers:
            rate = spec.rate
            if rate is not None and math.isinf(rate):
                rate = "inf"
            stragglers.append(
                {"gpu_id": spec.gpu_id, "level": spec.level, "rate": rate})
        return {"name": self.name, "duration_steps": self.duration_steps,
                "stragglers": stragglers}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StragglerSituation":
        """Inverse of :meth:`as_dict` (lossless round-trip)."""
        stragglers = []
        for entry in payload.get("stragglers", []):
            rate = entry.get("rate")
            if rate == "inf":
                rate = math.inf
            stragglers.append(StragglerSpec(
                gpu_id=entry["gpu_id"], level=entry.get("level"), rate=rate))
        return cls(name=payload["name"], stragglers=stragglers,
                   duration_steps=payload.get("duration_steps", 100))


@dataclass
class StragglerTrace:
    """An ordered sequence of straggler situations."""

    cluster: Cluster
    situations: List[StragglerSituation] = field(default_factory=list)
    name: str = "trace"

    def __iter__(self):
        return iter(self.situations)

    def __len__(self) -> int:
        return len(self.situations)

    def situation(self, name: str) -> StragglerSituation:
        """Look up a situation by name."""
        for situation in self.situations:
            if situation.name == name:
                return situation
        raise KeyError(f"no situation named '{name}' in trace '{self.name}'")

    def names(self) -> List[str]:
        """Names of the situations in order."""
        return [s.name for s in self.situations]

    def transitions(self) -> List[tuple]:
        """Consecutive (from, to) situation pairs, e.g. ('Normal', 'S1')."""
        pairs = []
        for prev, cur in zip(self.situations, self.situations[1:]):
            pairs.append((prev.name, cur.name))
        return pairs

    # ------------------------------------------------------------------
    # Persistence: situations only — the cluster is supplied on load (the
    # session-trace format of repro.whatif carries the cluster itself).
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Strict-JSON representation of the situation sequence."""
        return {"name": self.name,
                "situations": [s.as_dict() for s in self.situations]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object],
                  cluster: Cluster) -> "StragglerTrace":
        """Inverse of :meth:`as_dict`, bound to ``cluster``."""
        situations = [StragglerSituation.from_dict(entry)
                      for entry in payload.get("situations", [])]
        return cls(cluster=cluster, situations=situations,
                   name=payload.get("name", "trace"))

    def save(self, path: str) -> None:
        """Persist the situation sequence as JSON (lossless round-trip)."""
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")

    @classmethod
    def load(cls, path: str, cluster: Cluster) -> "StragglerTrace":
        """Load a trace saved with :meth:`save` onto ``cluster``."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle), cluster)


# ----------------------------------------------------------------------
# The paper's evaluation trace
# ----------------------------------------------------------------------
def normal_situation(duration_steps: int = 100) -> StragglerSituation:
    """The straggler-free situation."""
    return StragglerSituation(name="Normal", stragglers=[], duration_steps=duration_steps)


def paper_situation(name: str, cluster: Cluster,
                    duration_steps: int = 100) -> StragglerSituation:
    """Build one of the paper's S1..S6 situations for a given cluster.

    GPU placement follows the paper's convention: GPU-granular stragglers
    live on distinct nodes (the first GPU of nodes 0, 1, 2, ...), and
    node-granular situations straggle all eight GPUs of node 0.

    * S1: one level-1 straggler.
    * S2: one level-3 straggler.
    * S3: one level-1 and one level-3 straggler on different nodes.
    * S4: level-1, level-2 and level-3 stragglers on three different nodes.
    * S5: eight level-1 stragglers on one node and a level-2 on another.
    * S6: eight level-1 stragglers on one node.
    """
    gpus_per_node = cluster.gpus_per_node
    first_gpu_of = lambda node: node * gpus_per_node  # noqa: E731

    def spec(node: int, level: int, local: int = 0) -> StragglerSpec:
        return StragglerSpec(gpu_id=first_gpu_of(node) + local, level=level)

    key = name.upper()
    if key == "NORMAL":
        return normal_situation(duration_steps)
    if key == "S1":
        stragglers = [spec(0, 1)]
    elif key == "S2":
        stragglers = [spec(0, 3)]
    elif key == "S3":
        stragglers = [spec(0, 1), spec(1, 3)]
    elif key == "S4":
        stragglers = [spec(0, 1), spec(1, 2), spec(2, 3)]
    elif key == "S5":
        stragglers = [spec(0, 1, local) for local in range(gpus_per_node)]
        stragglers.append(spec(1, 2))
    elif key == "S6":
        stragglers = [spec(0, 1, local) for local in range(gpus_per_node)]
    else:
        raise KeyError(f"unknown paper situation '{name}'")
    return StragglerSituation(name=key, stragglers=stragglers,
                              duration_steps=duration_steps)


def paper_trace(cluster: Cluster, duration_steps: int = 100,
                include_trailing_normal: bool = True) -> StragglerTrace:
    """The Figure 7 trace: Normal -> S1 -> ... -> S6 (-> Normal)."""
    names = ["Normal", "S1", "S2", "S3", "S4", "S5", "S6"]
    if include_trailing_normal:
        names.append("Normal")
    situations = [paper_situation(n, cluster, duration_steps) for n in names]
    # Keep the two "Normal" entries distinguishable for reporting.
    if include_trailing_normal:
        situations[-1] = StragglerSituation(
            name="Normal(end)", stragglers=[], duration_steps=duration_steps
        )
    return StragglerTrace(cluster=cluster, situations=situations, name="paper-trace")


def ablation_situations(cluster: Cluster) -> Dict[str, StragglerSituation]:
    """The Figure 9 ablation situations (level-1/3/8 on 1, 2 or 3 nodes).

    Rates reported in the figure: x = 2.57, 5.42 and 12.53.
    """
    gpn = cluster.gpus_per_node

    def spec(gpu_id: int, rate: float) -> StragglerSpec:
        return StragglerSpec(gpu_id=gpu_id, rate=rate)

    return {
        "one-node": StragglerSituation(
            name="one-node",
            stragglers=[spec(0, 2.57), spec(2, 5.42), spec(4, 12.53)],
        ),
        "two-nodes": StragglerSituation(
            name="two-nodes",
            stragglers=[spec(0, 2.57), spec(2, 5.42), spec(gpn, 12.53)],
        ),
        "three-nodes": StragglerSituation(
            name="three-nodes",
            stragglers=[spec(0, 2.57), spec(gpn, 5.42), spec(2 * gpn, 12.53)],
        ),
    }


def case_study_situation(which: str, cluster: Cluster) -> StragglerSituation:
    """The Table 4 case-study situations.

    * ``"110b-s4"``: x0 = 5.42, x8 = 3.75, x16 = 2.57 (three nodes).
    * ``"32b-s5"``: x0..x7 = 2.62 (whole node 0), x8 = 3.8.
    """
    gpn = cluster.gpus_per_node
    key = which.lower()
    if key == "110b-s4":
        stragglers = [
            StragglerSpec(gpu_id=0, rate=5.42),
            StragglerSpec(gpu_id=gpn, rate=3.75),
            StragglerSpec(gpu_id=2 * gpn, rate=2.57),
        ]
    elif key == "32b-s5":
        stragglers = [StragglerSpec(gpu_id=i, rate=2.62) for i in range(gpn)]
        stragglers.append(StragglerSpec(gpu_id=gpn, rate=3.8))
    else:
        raise KeyError(f"unknown case study '{which}'")
    return StragglerSituation(name=key, stragglers=stragglers)
