"""Optional-dependency shims shared across the package.

numpy became a hard dependency of the solver hot path with the
array-world planner (``kernels="numpy"``); the pure-python reference
kernels keep working without it, so the import is guarded rather than
unconditional:

* when numpy is installed but older than :data:`NUMPY_MIN_VERSION` the
  import fails *loudly* right here — a silently-old numpy would
  otherwise surface as obscure ufunc errors deep inside the kernels;
* when numpy is missing entirely, :data:`np` is ``None`` and
  :func:`require_numpy` raises a clear error the moment an array-world
  feature is actually requested.
"""

from __future__ import annotations

#: Oldest numpy the vectorized kernels are tested against.  They rely on
#: ``np.maximum.reduceat``, stable ``argsort`` and IEEE-754 elementwise
#: semantics, all stable since well before this floor; the floor mainly
#: rejects ancient installs whose dtype promotion rules differ.
NUMPY_MIN_VERSION = (1, 22)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]
else:
    _version = tuple(
        int(part) for part in np.__version__.split(".")[:2] if part.isdigit()
    )
    if _version < NUMPY_MIN_VERSION:
        raise ImportError(
            f"repro requires numpy >= "
            f"{'.'.join(str(v) for v in NUMPY_MIN_VERSION)} for its "
            f"vectorized planner kernels, but numpy {np.__version__} is "
            f"installed; upgrade numpy or uninstall it to fall back to the "
            f"pure-python kernels"
        )


def require_numpy(feature: str):
    """Return the numpy module or raise a clear error naming ``feature``."""
    if np is None:
        raise RuntimeError(
            f"{feature} requires numpy >= "
            f"{'.'.join(str(v) for v in NUMPY_MIN_VERSION)}, which is not "
            f"installed; install numpy or select kernels='python'"
        )
    return np
