"""Core Malleus contribution: the cost model and the bi-level planner."""

from .assignment import (
    LayerAssignmentResult,
    LowerLevelResult,
    PlanCandidate,
    assign_data,
    assign_layers,
    build_plan,
    candidate_step_time_bound,
    solve_lower_level,
    sorted_divisors,
)
from .costmodel import DEFAULT_RESERVED_MEMORY, CostModelConfig, MalleusCostModel
from .grouping import (
    GroupingResult,
    enumerate_consecutive_groupings,
    even_partition,
    group_gpus,
    group_rate,
    harmonic_throughput,
    power_of_two_decomposition,
    split_node_groups,
)
from .orchestration import (
    OrchestrationResult,
    classify_groups,
    divide_pipelines,
    orchestrate,
    order_pipeline_groups,
)
from .planner import (
    CandidateRecord,
    MalleusPlanner,
    PlanningResult,
    PlanningTimeBreakdown,
    default_planner,
)

__all__ = [
    "CandidateRecord",
    "CostModelConfig",
    "DEFAULT_RESERVED_MEMORY",
    "GroupingResult",
    "LayerAssignmentResult",
    "LowerLevelResult",
    "MalleusCostModel",
    "MalleusPlanner",
    "OrchestrationResult",
    "PlanCandidate",
    "PlanningResult",
    "PlanningTimeBreakdown",
    "assign_data",
    "assign_layers",
    "build_plan",
    "candidate_step_time_bound",
    "classify_groups",
    "default_planner",
    "divide_pipelines",
    "enumerate_consecutive_groupings",
    "even_partition",
    "group_gpus",
    "group_rate",
    "harmonic_throughput",
    "orchestrate",
    "order_pipeline_groups",
    "power_of_two_decomposition",
    "solve_lower_level",
    "sorted_divisors",
    "split_node_groups",
]
