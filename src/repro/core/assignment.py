"""Lower-level problem: joint layer and training-data assignment (§4.2).

Given the pipelines (ordered lists of TP groups) produced by the upper
level, the lower-level problem (Eq. 1) decouples into:

* Eq. 2 — ``DP`` independent layer-assignment ILPs, one per pipeline:
  minimise ``max_j y_{i,j} * l_{i,j}`` subject to the layers summing to
  ``L`` and the per-stage memory constraint;
* Eq. 3 — one data-assignment ILP: minimise
  ``max_i o_i * m_i * tau(b)`` subject to ``sum_i m_i * b = B``.

Stages that receive zero layers are dropped from their pipeline and their
GPUs are removed from training (kept on standby); pipelines that receive
zero micro-batches are removed entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel.plan import (
    ParallelizationPlan,
    PipelinePlan,
    PipelineStage,
    TPGroup,
)
from ..solvers.minmax import solve_minmax_assignment
from .costmodel import MalleusCostModel
from .grouping import group_rate


@dataclass
class LayerAssignmentResult:
    """Solution of Eq. 2 for one pipeline."""

    layers: List[int]
    bottleneck: float  # o_i = max_j y_{i,j} * l_{i,j}
    feasible: bool
    caps: List[int] = field(default_factory=list)


@dataclass
class LowerLevelResult:
    """Solution of the full lower-level problem for one orchestration."""

    plan: Optional[ParallelizationPlan]
    micro_batch_size: int
    estimated_step_time: float
    feasible: bool
    per_pipeline_bottleneck: List[float] = field(default_factory=list)
    micro_batches: List[int] = field(default_factory=list)


def assign_layers(
    pipeline_groups: Sequence[TPGroup],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    num_layers: int,
    micro_batch_size: int,
    dp_degree: int,
) -> LayerAssignmentResult:
    """Solve Eq. 2 for one pipeline (ordered stages)."""
    pp = len(pipeline_groups)
    if pp == 0:
        return LayerAssignmentResult(layers=[], bottleneck=math.inf, feasible=False)
    weights = [
        group_rate(group, rates, cost_model, micro_batch_size)
        for group in pipeline_groups
    ]
    caps = [
        cost_model.max_layers_for_stage(
            group.gpu_ids, pp, stage_index, micro_batch_size, dp_degree
        )
        for stage_index, group in enumerate(pipeline_groups, start=1)
    ]
    solution = solve_minmax_assignment(weights, num_layers, caps=caps)
    return LayerAssignmentResult(
        layers=list(solution.values),
        bottleneck=solution.objective,
        feasible=solution.feasible,
        caps=caps,
    )


def assign_data(
    bottlenecks: Sequence[float],
    total_micro_batches: int,
) -> Tuple[List[int], float]:
    """Solve Eq. 3: distribute micro-batches across pipelines.

    ``bottlenecks`` are the per-pipeline optimal values ``o_i`` of Eq. 2.
    Returns the per-pipeline micro-batch counts and ``max_i o_i * m_i``.
    """
    weights = [b if b > 0 else 1e-12 for b in bottlenecks]
    solution = solve_minmax_assignment(weights, total_micro_batches)
    if not solution.feasible:
        return [0] * len(bottlenecks), math.inf
    return list(solution.values), solution.objective


def solve_lower_level(
    pipelines_groups: Sequence[Sequence[TPGroup]],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    num_layers: int,
    global_batch_size: int,
    micro_batch_candidates: Optional[Sequence[int]] = None,
    all_gpu_ids: Optional[Sequence[int]] = None,
) -> LowerLevelResult:
    """Solve the lower-level problem, enumerating the micro-batch size.

    The micro-batch size ``b`` is enumerated over the divisors of the global
    batch size (smallest first) until every candidate becomes memory
    infeasible, exactly as §4.2 prescribes; the best feasible candidate is
    returned.
    """
    dp = len(pipelines_groups)
    if dp == 0:
        return LowerLevelResult(
            plan=None, micro_batch_size=0, estimated_step_time=math.inf,
            feasible=False,
        )
    if micro_batch_candidates is None:
        micro_batch_candidates = [
            b for b in range(1, global_batch_size + 1)
            if global_batch_size % b == 0
        ]

    best: Optional[LowerLevelResult] = None
    for b in micro_batch_candidates:
        layer_results = [
            assign_layers(groups, rates, cost_model, num_layers, b, dp)
            for groups in pipelines_groups
        ]
        if any(not result.feasible for result in layer_results):
            # Larger micro-batches only increase memory pressure; stop once
            # the smallest infeasible b is reached, matching the paper.
            if best is not None:
                break
            continue
        bottlenecks = [result.bottleneck for result in layer_results]
        total_micro_batches = global_batch_size // b
        micro_batches, data_objective = assign_data(bottlenecks, total_micro_batches)
        if math.isinf(data_objective):
            continue
        # The ILPs optimise the simplified objective max_i o_i * m_i (as in the
        # paper); candidates are then *ranked* with the exact 1F1B expression
        # (m_i - 1) * o_i + sum_j y_ij * l_ij, which penalises needlessly deep
        # pipelines whose warm-up/cool-down bubbles the simplification hides.
        step_time = 0.0
        for groups, result, m_i in zip(pipelines_groups, layer_results,
                                       micro_batches):
            if m_i <= 0:
                continue
            warm_up = sum(
                group_rate(group, rates, cost_model, b) * layers
                for group, layers in zip(groups, result.layers)
                if layers > 0
            )
            pipeline_time = (m_i - 1) * result.bottleneck + warm_up
            step_time = max(step_time, pipeline_time)
        step_time *= cost_model.tau(b)
        if best is None or step_time < best.estimated_step_time - 1e-12:
            plan = build_plan(
                pipelines_groups, layer_results, micro_batches, rates,
                cost_model, b, num_layers, global_batch_size, all_gpu_ids,
            )
            best = LowerLevelResult(
                plan=plan,
                micro_batch_size=b,
                estimated_step_time=step_time,
                feasible=True,
                per_pipeline_bottleneck=bottlenecks,
                micro_batches=micro_batches,
            )
    if best is None:
        return LowerLevelResult(
            plan=None, micro_batch_size=0, estimated_step_time=math.inf,
            feasible=False,
        )
    return best


def build_plan(
    pipelines_groups: Sequence[Sequence[TPGroup]],
    layer_results: Sequence[LayerAssignmentResult],
    micro_batches: Sequence[int],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    micro_batch_size: int,
    num_layers: int,
    global_batch_size: int,
    all_gpu_ids: Optional[Sequence[int]] = None,
) -> ParallelizationPlan:
    """Materialise a :class:`ParallelizationPlan` from the ILP solutions.

    Stages assigned zero layers are dropped (their GPUs are removed from
    training), and pipelines assigned zero micro-batches are dropped too.
    The removed GPUs are recorded so the runtime keeps them on standby.
    """
    pipelines: List[PipelinePlan] = []
    active_gpus: set = set()
    kept_index = 0
    for groups, layer_result, m_i in zip(pipelines_groups, layer_results,
                                         micro_batches):
        if m_i <= 0:
            continue
        stages: List[PipelineStage] = []
        stage_index = 1
        for group, layers in zip(groups, layer_result.layers):
            if layers <= 0:
                continue
            stages.append(
                PipelineStage(
                    group=group,
                    num_layers=layers,
                    stage_index=stage_index,
                    group_rate=group_rate(group, rates, cost_model,
                                          micro_batch_size),
                )
            )
            stage_index += 1
        if not stages:
            continue
        pipelines.append(
            PipelinePlan(
                stages=stages,
                num_micro_batches=m_i,
                pipeline_index=kept_index,
            )
        )
        kept_index += 1
        for stage in stages:
            active_gpus.update(stage.gpu_ids)

    if all_gpu_ids is None:
        candidate_gpus: set = set()
        for groups in pipelines_groups:
            for group in groups:
                candidate_gpus.update(group.gpu_ids)
    else:
        candidate_gpus = set(all_gpu_ids)
    removed = sorted(candidate_gpus - active_gpus)

    plan = ParallelizationPlan(
        pipelines=pipelines,
        micro_batch_size=micro_batch_size,
        num_layers=num_layers,
        global_batch_size=global_batch_size,
        removed_gpus=removed,
    )
    plan.validate()
    return plan
