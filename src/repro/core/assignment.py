"""Lower-level problem: joint layer and training-data assignment (§4.2).

Given the pipelines (ordered lists of TP groups) produced by the upper
level, the lower-level problem (Eq. 1) decouples into:

* Eq. 2 — ``DP`` independent layer-assignment ILPs, one per pipeline:
  minimise ``max_j y_{i,j} * l_{i,j}`` subject to the layers summing to
  ``L`` and the per-stage memory constraint;
* Eq. 3 — one data-assignment ILP: minimise
  ``max_i o_i * m_i * tau(b)`` subject to ``sum_i m_i * b = B``.

Stages that receive zero layers are dropped from their pipeline and their
GPUs are removed from training (kept on standby); pipelines that receive
zero micro-batches are removed entirely.

Hot-path structure
------------------
``solve_lower_level`` is called once per upper-level candidate, so it is
optimised three ways:

* **sqrt-divisor enumeration** — the micro-batch-size candidates are the
  divisors of the global batch size, enumerated in ``O(sqrt B)`` instead of
  scanning every integer up to ``B``;
* **bound-based pruning** — every candidate ``b`` gets a cheap, provably
  sound lower bound (total layer-work divided by the total harmonic speed
  of the pipelines, see :func:`candidate_step_time_bound`); candidates are
  solved in ascending-bound order and skipped outright once the bound
  exceeds the incumbent (local or the planner-wide ``incumbent``);
* **deferred materialization** — instead of building (and validating) a
  :class:`ParallelizationPlan` for every improving candidate, the winning
  ingredients are kept as a lightweight :class:`PlanCandidate`; the plan is
  materialised once, for the final winner (``materialize="eager"`` restores
  the legacy build-per-improvement behaviour for benchmarking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..compat import np
from ..parallel.plan import (
    ParallelizationPlan,
    PipelinePlan,
    PipelineStage,
    TPGroup,
)
from ..solvers.minmax import solve_minmax_assignment
from .costmodel import MalleusCostModel
from .grouping import group_rate, group_rates_batch


@dataclass
class LayerAssignmentResult:
    """Solution of Eq. 2 for one pipeline."""

    layers: List[int]
    bottleneck: float  # o_i = max_j y_{i,j} * l_{i,j}
    feasible: bool
    caps: List[int] = field(default_factory=list)


@dataclass
class PlanCandidate:
    """Unmaterialized winning candidate of the lower-level problem.

    Holds exactly the ILP outputs :func:`build_plan` needs, so the planner
    can defer the (comparatively expensive) plan construction + validation
    to the single overall winner instead of every improving candidate.
    """

    pipelines_groups: Sequence[Sequence[TPGroup]]
    layer_results: List["LayerAssignmentResult"]
    micro_batches: List[int]
    micro_batch_size: int
    num_layers: int
    global_batch_size: int

    def materialize(self, rates: Dict[int, float],
                    cost_model: MalleusCostModel,
                    all_gpu_ids: Optional[Sequence[int]] = None,
                    ) -> ParallelizationPlan:
        """Build (and validate) the full :class:`ParallelizationPlan`."""
        return build_plan(
            self.pipelines_groups, self.layer_results, self.micro_batches,
            rates, cost_model, self.micro_batch_size, self.num_layers,
            self.global_batch_size, all_gpu_ids,
        )


@dataclass
class LowerLevelResult:
    """Solution of the full lower-level problem for one orchestration.

    ``plan`` is populated according to the ``materialize`` argument of
    :func:`solve_lower_level`; ``candidate`` always carries the winning
    ingredients so a deferred caller can materialise later.  ``pruned`` is
    set when at least one micro-batch candidate was skipped against the
    caller-supplied incumbent, i.e. an infeasible-looking result may simply
    mean "provably cannot beat the incumbent".
    """

    plan: Optional[ParallelizationPlan]
    micro_batch_size: int
    estimated_step_time: float
    feasible: bool
    per_pipeline_bottleneck: List[float] = field(default_factory=list)
    micro_batches: List[int] = field(default_factory=list)
    candidate: Optional[PlanCandidate] = None
    pruned: bool = False
    #: At least one micro-batch size was memory-infeasible.  An infeasible
    #: result with ``pruned and not memory_limited`` provably cannot beat
    #: the incumbent under any retry; a memory-limited one might (e.g. with
    #: more groups per pipeline).
    memory_limited: bool = False


def assign_layers(
    pipeline_groups: Sequence[TPGroup],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    num_layers: int,
    micro_batch_size: int,
    dp_degree: int,
    prune_above: Optional[float] = None,
) -> LayerAssignmentResult:
    """Solve Eq. 2 for one pipeline (ordered stages).

    ``prune_above`` forwards a caller's incumbent bottleneck to the
    min-max solver's threshold probe (see
    :func:`repro.solvers.minmax.solve_minmax_assignment`): an ordering
    that provably cannot beat the incumbent comes back infeasible after
    a single feasibility test instead of a full parametric solve.
    """
    pp = len(pipeline_groups)
    if pp == 0:
        return LayerAssignmentResult(layers=[], bottleneck=math.inf, feasible=False)
    kernels = getattr(cost_model, "kernels", "python")
    if kernels == "numpy":
        weights = group_rates_batch(pipeline_groups, rates, cost_model,
                                    micro_batch_size)
    else:
        weights = [
            group_rate(group, rates, cost_model, micro_batch_size)
            for group in pipeline_groups
        ]
    caps_fn = getattr(cost_model, "stage_caps", None)
    if caps_fn is not None:
        caps = caps_fn(pipeline_groups, pp, micro_batch_size, dp_degree)
    else:
        caps = [
            cost_model.max_layers_for_stage(
                group.gpu_ids, pp, stage_index, micro_batch_size, dp_degree
            )
            for stage_index, group in enumerate(pipeline_groups, start=1)
        ]
    # The min-max memo is keyed on (weights, caps) values, so structurally
    # identical pipelines (same rate multiset, different GPUs) share a solve.
    use_cache = getattr(cost_model, "enable_caching", True)
    solution = solve_minmax_assignment(weights, num_layers, caps=caps,
                                       use_cache=use_cache, kernels=kernels,
                                       prune_above=prune_above)
    return LayerAssignmentResult(
        layers=list(solution.values),
        bottleneck=solution.objective,
        feasible=solution.feasible,
        caps=caps,
    )


def assign_data(
    bottlenecks: Sequence[float],
    total_micro_batches: int,
    use_cache: bool = False,
) -> Tuple[List[int], float]:
    """Solve Eq. 3: distribute micro-batches across pipelines.

    ``bottlenecks`` are the per-pipeline optimal values ``o_i`` of Eq. 2.
    Returns the per-pipeline micro-batch counts and ``max_i o_i * m_i``.

    A zero bottleneck means a pipeline hosting no work; such pipelines get a
    ``1e-12`` weight floor so they absorb micro-batches for free.  When
    *every* bottleneck is zero no pipeline does any work at all, which is an
    explicit infeasibility (not a spuriously tiny objective).
    """
    if not bottlenecks or all(b <= 0 for b in bottlenecks):
        return [0] * len(bottlenecks), math.inf
    weights = [b if b > 0 else 1e-12 for b in bottlenecks]
    solution = solve_minmax_assignment(weights, total_micro_batches,
                                       use_cache=use_cache)
    if not solution.feasible:
        return [0] * len(bottlenecks), math.inf
    return list(solution.values), solution.objective


def sorted_divisors(n: int) -> List[int]:
    """Ascending divisors of ``n`` via sqrt enumeration (``O(sqrt n)``)."""
    if n <= 0:
        return []
    small: List[int] = []
    large: List[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    large.reverse()
    return small + large


def candidate_step_time_bound(
    pipelines_groups: Sequence[Sequence[TPGroup]],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    num_layers: int,
    global_batch_size: int,
    micro_batch_size: int,
    dp_degree: Optional[int] = None,
) -> float:
    """Cheap, provably-sound lower bound on a candidate's step time.

    Writing ``S_i = sum_j 1/y_{i,j}`` for pipeline ``i``'s harmonic speed,
    every layer assignment satisfies ``o_i >= L / S_i`` (``L = sum_j l_{i,j}
    <= o_i * S_i``) and every data assignment satisfies ``max_i m_i * o_i >=
    M / sum_i (1/o_i) >= M * L / sum_i S_i``; the exact 1F1B expression
    ``(m_i - 1) * o_i + sum_j y_{i,j} l_{i,j}`` is itself at least
    ``m_i * o_i``.  Hence

        step_time >= tau(b) * M * L / (total harmonic speed),

    i.e. total work over total harmonic speed.  Groups with infinite rates
    contribute zero speed (they can only host zero layers).

    When the DP degree is known, a second sound term sharpens the bound for
    shallow-DP candidates: at most ``dp`` pipelines receive micro-batches,
    so some pipeline processes ``m >= ceil(M / dp)`` of them, its
    per-micro-batch bottleneck is ``o >= L / S_total``, and its warm-up
    ``sum_j y_j l_j >= L * y_min`` (all ``L`` layers pay at least the
    grouping's fastest group rate).  The exact 1F1B expression then gives

        step_time >= tau(b) * ((ceil(M / dp) - 1) * L / S_total + L * y_min),

    which — unlike the base term — grows as ``dp`` shrinks and lets the
    planner and the repair engine prune low-DP candidates.
    """
    total_micro_batches = global_batch_size // micro_batch_size
    if total_micro_batches <= 0:
        return math.inf
    # The numpy backend batch-evaluates the per-group rates; the harmonic
    # accumulation below stays a sequential python loop in the identical
    # pipeline-major order, so the bound is bit-identical across backends.
    if getattr(cost_model, "kernels", "python") == "numpy":
        flat_groups = [g for groups in pipelines_groups for g in groups]
        flat_ys = group_rates_batch(flat_groups, rates, cost_model,
                                    micro_batch_size)
    else:
        flat_ys = [
            group_rate(group, rates, cost_model, micro_batch_size)
            for groups in pipelines_groups for group in groups
        ]
    harmonic = 0.0
    y_min = math.inf
    for y in flat_ys:
        if y > 0 and not math.isinf(y):
            harmonic += 1.0 / y
            if y < y_min:
                y_min = y
    if harmonic <= 0:
        return math.inf
    bound = total_micro_batches * num_layers / harmonic
    if dp_degree is not None and dp_degree > 0 and not math.isinf(y_min):
        m_max = -(-total_micro_batches // dp_degree)  # ceil
        dp_term = (m_max - 1) * num_layers / harmonic + num_layers * y_min
        if dp_term > bound:
            bound = dp_term
    return cost_model.tau(micro_batch_size) * bound


#: Relative slack of the vectorized bound screen.  The batched harmonic
#: sums use numpy's pairwise reduction, whose float chain differs from the
#: reference's sequential left-to-right accumulation by at most ``~n *
#: 2^-53`` relative (positive terms, condition number 1 — about ``4e-12``
#: at 32k groups).  Scaling the batched values down by this factor makes
#: them provably *never exceed* the exact sequential bound for any
#: realistic group count (sound up to ~10^6 groups, three orders of
#: magnitude of margin at the 64k-GPU scale), so they are safe to reject
#: with; anything within the band pays the exact bound.
BATCH_BOUND_EPSILON = 1e-9


def candidate_step_time_bound_batch(
    pipelines_groups: Sequence[Sequence[TPGroup]],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    num_layers: int,
    global_batch_size: int,
    micro_batch_sizes: Sequence[int],
    dp_degree: Optional[int] = None,
    epsilon: float = BATCH_BOUND_EPSILON,
) -> Optional[List[float]]:
    """Relaxed-by-``epsilon`` sound screen of :func:`candidate_step_time_bound`.

    One numpy pass over the episode's :class:`~repro.core.costmodel.RateArray`
    evaluates the total-work/harmonic-speed bound (dp-aware term included)
    for *every* micro-batch size at once: the per-group member maxima are
    gathered and reduced once (they do not depend on ``b``), then each
    ``b`` only costs an elementwise ``rho``-scale, a vectorized reciprocal
    sum and a min.

    Because the reduction order of the harmonic sum is observable in the
    exact bound (sweep entries are sorted and pruned on the value), the
    vectorized sums cannot replace it bit-for-bit; instead every returned
    value is scaled down by ``epsilon`` so that it provably never exceeds
    the exact sequential bound.  Callers use the screen **only to
    reject** — a candidate whose relaxed bound already exceeds a cutoff
    would also exceed it exactly — and pay the exact sequential bound for
    anything within the epsilon band (see
    :func:`repro.core.sweep.candidate_bound`).

    Returns one relaxed lower bound per entry of ``micro_batch_sizes``, or
    ``None`` when numpy is unavailable or the cost model is not on the
    ``numpy`` backend (callers fall back to the exact loop).
    """
    if np is None or getattr(cost_model, "kernels", "python") != "numpy":
        return None
    flat_groups = [g for groups in pipelines_groups for g in groups]
    if not flat_groups:
        return None
    ra = cost_model.rate_array(rates)
    # Same member-position gather (and the same memo) as the batched
    # group-rate kernel: positions are rate-value independent.
    cache_key = tuple(map(id, flat_groups))
    entry = ra.gather_cache.get(cache_key)
    if entry is None:
        members = [g for group in flat_groups for g in group.gpu_ids]
        positions = np.searchsorted(
            ra.ids, np.asarray(members, dtype=np.int64)
        )
        sizes = [group.size for group in flat_groups]
        offsets = np.zeros(len(flat_groups), dtype=np.int64)
        np.cumsum(np.asarray(sizes[:-1], dtype=np.int64), out=offsets[1:])
        if len(ra.gather_cache) >= 256:
            ra.gather_cache.clear()
        ra.gather_cache[cache_key] = (tuple(flat_groups), positions, offsets,
                                      sizes)
    else:
        _, positions, offsets, sizes = entry
    maxima = np.maximum.reduceat(ra.values[positions], offsets)
    unique_sizes = sorted(set(sizes))
    if len(unique_sizes) > 1:
        sizes_arr = np.asarray(sizes, dtype=np.int64)
    relax = 1.0 - epsilon
    out: List[float] = []
    for b in micro_batch_sizes:
        total_micro_batches = global_batch_size // b
        if total_micro_batches <= 0:
            out.append(math.inf)
            continue
        if len(unique_sizes) == 1:
            ys = cost_model.rho(unique_sizes[0], b) * maxima
        else:
            factors = np.empty(len(sizes), dtype=np.float64)
            for size in unique_sizes:
                factors[sizes_arr == size] = cost_model.rho(size, b)
            ys = factors * maxima
        usable = ys[np.isfinite(ys) & (ys > 0.0)]
        if usable.size == 0:
            out.append(math.inf)
            continue
        harmonic = float(np.sum(np.reciprocal(usable)))
        if harmonic <= 0.0:
            out.append(math.inf)
            continue
        bound = total_micro_batches * num_layers / harmonic
        if dp_degree is not None and dp_degree > 0:
            y_min = float(usable.min())
            m_max = -(-total_micro_batches // dp_degree)  # ceil
            dp_term = ((m_max - 1) * num_layers / harmonic
                       + num_layers * y_min)
            if dp_term > bound:
                bound = dp_term
        out.append(cost_model.tau(b) * bound * relax)
    return out


def exact_step_time(
    pipelines_groups: Sequence[Sequence[TPGroup]],
    layer_results: Sequence[LayerAssignmentResult],
    micro_batches: Sequence[int],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    micro_batch_size: int,
) -> float:
    """Exact 1F1B step-time estimate of a fully-solved lower level.

    The ILPs optimise the simplified objective ``max_i o_i * m_i`` (as in
    the paper); candidates are *ranked* with the exact 1F1B expression
    ``(m_i - 1) * o_i + sum_j y_ij * l_ij``, which penalises needlessly deep
    pipelines whose warm-up/cool-down bubbles the simplification hides.
    Shared by :func:`solve_lower_level` and the incremental repair engine
    (which re-scores repaired candidates without re-running the full sweep).
    """
    if getattr(cost_model, "kernels", "python") == "numpy":
        flat_groups = [g for groups in pipelines_groups for g in groups]
        flat_ys = group_rates_batch(flat_groups, rates, cost_model,
                                    micro_batch_size)
    else:
        flat_ys = None
    step_time = 0.0
    cursor = 0
    for groups, result, m_i in zip(pipelines_groups, layer_results,
                                   micro_batches):
        if flat_ys is not None:
            ys = flat_ys[cursor:cursor + len(groups)]
            cursor += len(groups)
        else:
            ys = None
        if m_i <= 0:
            continue
        if ys is not None:
            # Same products and the same sequential sum order as the
            # scalar branch; only the rate evaluation is batched.
            warm_up = sum(
                y * layers
                for y, layers in zip(ys, result.layers)
                if layers > 0
            )
        else:
            warm_up = sum(
                group_rate(group, rates, cost_model, micro_batch_size) * layers
                for group, layers in zip(groups, result.layers)
                if layers > 0
            )
        pipeline_time = (m_i - 1) * result.bottleneck + warm_up
        step_time = max(step_time, pipeline_time)
    return step_time * cost_model.tau(micro_batch_size)


def solve_lower_level(
    pipelines_groups: Sequence[Sequence[TPGroup]],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    num_layers: int,
    global_batch_size: int,
    micro_batch_candidates: Optional[Sequence[int]] = None,
    all_gpu_ids: Optional[Sequence[int]] = None,
    materialize: Union[bool, str] = True,
    incumbent: float = math.inf,
    enable_pruning: bool = True,
) -> LowerLevelResult:
    """Solve the lower-level problem, enumerating the micro-batch size.

    The micro-batch size ``b`` is enumerated over the divisors of the global
    batch size (sqrt-enumerated) until every candidate becomes memory
    infeasible, exactly as §4.2 prescribes; the best feasible candidate is
    returned.  Candidates are solved in ascending order of their
    :func:`candidate_step_time_bound` (ties by ``b``) and skipped when the
    bound strictly exceeds the best step time seen so far — the bound is a
    true lower bound, so no optimal candidate is ever pruned and the winner
    (including equal-time ties, which always resolve to the smallest ``b``)
    is identical to the exhaustive scan.

    Parameters beyond the seed API
    ------------------------------
    materialize:
        ``True`` builds the plan for the final winner (default), ``False``
        defers entirely (use ``result.candidate.materialize(...)``),
        ``"eager"`` rebuilds on every improvement (legacy behaviour, kept
        for the hot-path benchmark's before/after comparison).
    incumbent:
        Planner-wide best step time; candidates whose bound cannot beat it
        are skipped and the result is flagged ``pruned``.
    enable_pruning:
        Disable to force the exhaustive scan (equivalence tests).
    """
    dp = len(pipelines_groups)
    if dp == 0:
        return LowerLevelResult(
            plan=None, micro_batch_size=0, estimated_step_time=math.inf,
            feasible=False,
        )
    if micro_batch_candidates is None:
        micro_batch_candidates = sorted_divisors(global_batch_size)
    use_cache = getattr(cost_model, "enable_caching", True)

    if enable_pruning:
        bounds = {
            b: candidate_step_time_bound(
                pipelines_groups, rates, cost_model, num_layers,
                global_batch_size, b, dp_degree=dp,
            )
            for b in micro_batch_candidates
        }
        ordered = sorted(micro_batch_candidates, key=lambda b: (bounds[b], b))
    else:
        bounds = {}
        ordered = list(micro_batch_candidates)

    best: Optional[LowerLevelResult] = None
    best_candidate: Optional[PlanCandidate] = None
    pruned_any = False
    # Memory pressure grows with b, so the first memory-infeasible b caps
    # every larger candidate (the seed relied on the same monotonicity for
    # its early break in the ascending scan).
    min_infeasible_b = math.inf
    for b in ordered:
        if b >= min_infeasible_b:
            continue
        if enable_pruning:
            cutoff = incumbent
            if best is not None and best.estimated_step_time < cutoff:
                cutoff = best.estimated_step_time
            if bounds[b] > cutoff + 1e-12:
                pruned_any = True
                continue
        layer_results = [
            assign_layers(groups, rates, cost_model, num_layers, b, dp)
            for groups in pipelines_groups
        ]
        if any(not result.feasible for result in layer_results):
            min_infeasible_b = min(min_infeasible_b, b)
            continue
        bottlenecks = [result.bottleneck for result in layer_results]
        total_micro_batches = global_batch_size // b
        micro_batches, data_objective = assign_data(
            bottlenecks, total_micro_batches, use_cache=use_cache
        )
        if math.isinf(data_objective):
            continue
        step_time = exact_step_time(
            pipelines_groups, layer_results, micro_batches, rates,
            cost_model, b,
        )
        # Strict improvement wins; equal step times (within tolerance) go to
        # the smallest b, which reproduces the seed's ascending-scan winner
        # independently of the bound-based evaluation order.
        wins = best is None or step_time < best.estimated_step_time - 1e-12
        if not wins and best is not None and \
                abs(step_time - best.estimated_step_time) <= 1e-12:
            wins = b < best.micro_batch_size
        if wins:
            best_candidate = PlanCandidate(
                pipelines_groups=pipelines_groups,
                layer_results=layer_results,
                micro_batches=micro_batches,
                micro_batch_size=b,
                num_layers=num_layers,
                global_batch_size=global_batch_size,
            )
            plan = None
            if materialize == "eager":
                plan = best_candidate.materialize(rates, cost_model,
                                                  all_gpu_ids)
            best = LowerLevelResult(
                plan=plan,
                micro_batch_size=b,
                estimated_step_time=step_time,
                feasible=True,
                per_pipeline_bottleneck=bottlenecks,
                micro_batches=micro_batches,
                candidate=best_candidate,
            )
    memory_limited = not math.isinf(min_infeasible_b)
    if best is None:
        return LowerLevelResult(
            plan=None, micro_batch_size=0, estimated_step_time=math.inf,
            feasible=False, pruned=pruned_any, memory_limited=memory_limited,
        )
    best.pruned = pruned_any
    best.memory_limited = memory_limited
    if materialize is True and best.plan is None:
        best.plan = best.candidate.materialize(rates, cost_model, all_gpu_ids)
    return best


def build_plan(
    pipelines_groups: Sequence[Sequence[TPGroup]],
    layer_results: Sequence[LayerAssignmentResult],
    micro_batches: Sequence[int],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    micro_batch_size: int,
    num_layers: int,
    global_batch_size: int,
    all_gpu_ids: Optional[Sequence[int]] = None,
) -> ParallelizationPlan:
    """Materialise a :class:`ParallelizationPlan` from the ILP solutions.

    Stages assigned zero layers are dropped (their GPUs are removed from
    training), and pipelines assigned zero micro-batches are dropped too.
    The removed GPUs are recorded so the runtime keeps them on standby.
    """
    pipelines: List[PipelinePlan] = []
    active_gpus: set = set()
    kept_index = 0
    for groups, layer_result, m_i in zip(pipelines_groups, layer_results,
                                         micro_batches):
        if m_i <= 0:
            continue
        stages: List[PipelineStage] = []
        stage_index = 1
        for group, layers in zip(groups, layer_result.layers):
            if layers <= 0:
                continue
            stages.append(
                PipelineStage(
                    group=group,
                    num_layers=layers,
                    stage_index=stage_index,
                    group_rate=group_rate(group, rates, cost_model,
                                          micro_batch_size),
                )
            )
            stage_index += 1
        if not stages:
            continue
        pipelines.append(
            PipelinePlan(
                stages=stages,
                num_micro_batches=m_i,
                pipeline_index=kept_index,
            )
        )
        kept_index += 1
        for stage in stages:
            active_gpus.update(stage.gpu_ids)

    if all_gpu_ids is None:
        candidate_gpus: set = set()
        for groups in pipelines_groups:
            for group in groups:
                candidate_gpus.update(group.gpu_ids)
    else:
        candidate_gpus = set(all_gpu_ids)
    removed = sorted(candidate_gpus - active_gpus)

    plan = ParallelizationPlan(
        pipelines=pipelines,
        micro_batch_size=micro_batch_size,
        num_layers=num_layers,
        global_batch_size=global_batch_size,
        removed_gpus=removed,
    )
    plan.validate()
    return plan
