"""Profiled cost model for training time and memory (§4.2, Appendix B.4).

The Malleus planner never runs the model; it consumes a handful of profiled
coefficients:

* ``tau(b)`` — forward+backward time of one transformer layer for a
  micro-batch of ``b`` sequences on a *reference* (TP degree 1, straggling
  rate 1) group;
* ``rho(n)`` — efficiency-degradation coefficient of an ``n``-GPU TP group,
  ``rho_n = zeta_n / max_n' zeta_n'`` (so ``rho_1 = 1`` and larger groups
  get smaller coefficients);
* group straggling rate ``y = rho_n * max(x_k)``;
* memory coefficients ``mu_{i,j}(b)``, ``nu_{i,j}(b)`` and capacities
  ``C_{i,j}`` that bound the layers a stage can host.

In the real system these coefficients are profiled on hardware; here they
are derived analytically from the model architecture and the cluster
description, with a single calibration knob (``compute_efficiency``) that
plays the role of achieved-vs-peak FLOPs.

Caching
-------
The planner evaluates the same coefficients for thousands of candidates per
:meth:`repro.core.planner.MalleusPlanner.plan` call (every micro-batch size,
DP degree and stage ordering re-derives ``mu``/``nu``/``max_layers_for_stage``
for the same ``(pp, stage, b, dp)`` keys).  All coefficient kernels are
therefore memoized:

* ``zeta`` / ``tau`` — keyed on ``(tp_degree, micro_batch_size)``;
* ``rho``'s reference maximum — keyed on ``(candidate_sizes, b)``;
* ``mu`` / ``nu`` — keyed on ``(pp, stage, b, dp)``;
* ``group_capacity`` — keyed on the frozen GPU-id tuple;
* ``max_layers_for_stage`` — keyed on ``(gpu_ids, pp, stage, b, dp)``.

The caches only depend on the model, the cluster and the calibration config
— never on the straggling rates — so they stay valid across re-planning
calls.  If the config, model or cluster is mutated in place, call
:meth:`MalleusCostModel.invalidate_caches`.  ``cache_stats()`` reports
per-cache sizes and hit/miss counters; constructing the model with
``enable_caching=False`` disables every memo (used by the cache-equivalence
tests and the hot-path benchmark's legacy mode).

Worker handoff
--------------
Cost-model instances are plain data (model spec, cluster description,
config dataclass and dict-based memos), so they **pickle** — including the
warm coefficient caches.  The sweep engine's process backend relies on
this: each pool worker is initialised with the parent's cost model (warm
caches ride along for free under ``fork``), and every batch carries
:meth:`config_fingerprint` so a worker detects in-place calibration edits
and self-heals exactly like :meth:`refresh_if_config_changed` does in the
parent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..cluster.topology import GIB, Cluster
from ..compat import np, require_numpy
from ..models.spec import TransformerModelSpec

#: Reserved memory gap for NCCL / CUDA contexts (Appendix B.4 uses 4096 MiB).
DEFAULT_RESERVED_MEMORY = 4.0 * GIB

#: Valid values of the ``kernels`` knob on the cost model / planner.
KERNEL_BACKENDS = ("python", "numpy", "legacy")


class RateArray:
    """Array view of a ``{gpu_id: straggling_rate}`` map.

    The vectorized kernels index GPUs by *position* in a stable sorted
    id order rather than by dict key.  One ``RateArray`` is built per
    planning episode (the id set is fixed within an episode, only the
    values move), so the sorted-id index and the id→position map are
    computed once and shared by every kernel invocation.

    ``ids`` is an int64 ndarray of GPU ids in ascending order; ``values``
    is the matching float64 ndarray of straggling rates.  ``position``
    maps a GPU id back to its row.  The float values are bit-identical
    to the source dict's — no rounding or normalisation happens here.

    ``gather_cache`` memoizes the member-position/offset arrays the
    batched group-rate kernel gathers with, keyed by the identity tuple
    of a group sequence (:class:`~repro.parallel.plan.TPGroup` is frozen,
    and each entry pins a strong reference to its groups so the ids stay
    valid).  It dies with the ``RateArray`` — i.e. whenever the episode's
    GPU-id set changes — and positions are value-refresh-invariant, so a
    hit is exactly the recomputation.
    """

    __slots__ = ("ids", "values", "position", "gather_cache")

    def __init__(self, ids, values, position: Dict[int, int]):
        self.ids = ids
        self.values = values
        self.position = position
        self.gather_cache: Dict[tuple, tuple] = {}

    @classmethod
    def from_rates(cls, rates: Mapping[int, float]) -> "RateArray":
        xp = require_numpy("RateArray")
        ordered = sorted(rates)
        ids = xp.asarray(ordered, dtype=xp.int64)
        values = xp.asarray([rates[g] for g in ordered], dtype=xp.float64)
        position = {g: i for i, g in enumerate(ordered)}
        return cls(ids, values, position)

    def __len__(self) -> int:
        return len(self.position)


@dataclass
class CostModelConfig:
    """Calibration knobs of the analytic cost model.

    ``compute_efficiency`` is the fraction of peak FLOPs a healthy GPU
    achieves inside a hybrid-parallel step (the paper reports 44-53% MFU for
    Megatron/Malleus, which includes pipeline bubbles; the per-layer kernel
    efficiency is higher).  ``tp_comm_overhead`` scales the analytic
    tensor-parallel all-reduce time to account for kernel launch and
    synchronisation overheads.  ``bytes_per_param`` / ``grad_bytes_per_param``
    / ``optimizer_bytes_per_param`` follow mixed-precision training with an
    Adam optimizer (bf16 weights + bf16 grads + fp32 master/momentum/variance).
    """

    compute_efficiency: float = 0.56
    tp_comm_overhead: float = 1.25
    bytes_per_param: float = 2.0
    grad_bytes_per_param: float = 2.0
    optimizer_bytes_per_param: float = 12.0
    activation_fudge: float = 1.0
    fwd_bwd_activation_extra: float = 0.15
    reserved_memory_bytes: float = DEFAULT_RESERVED_MEMORY
    zero1_optimizer_sharding: bool = True


class MalleusCostModel:
    """Analytic substitute for the paper's profiler-derived cost model.

    Parameters
    ----------
    model:
        Architecture of the model being trained.
    cluster:
        The cluster (supplies peak FLOPs, memory and bandwidths).
    config:
        Calibration knobs; the defaults roughly reproduce the paper's
        straggler-free step times on A800-class hardware.
    """

    def __init__(self, model: TransformerModelSpec, cluster: Cluster,
                 config: Optional[CostModelConfig] = None,
                 enable_caching: bool = True,
                 kernels: str = "python"):
        if kernels not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernels must be one of {KERNEL_BACKENDS}, got {kernels!r}"
            )
        if kernels == "numpy":
            require_numpy("kernels='numpy'")
        self.model = model
        self.cluster = cluster
        self.config = config or CostModelConfig()
        self.enable_caching = enable_caching
        self.kernels = kernels
        self._rate_array_key: Optional[tuple] = None
        self._rate_array: Optional[RateArray] = None
        self._rate_array_perm = None
        self._pinned_rates: Optional[Mapping[int, float]] = None
        self._rate_array_src: Optional[int] = None
        self._zeta_cache: Dict[tuple, float] = {}
        self._rho_cache: Dict[tuple, float] = {}
        self._rho_ref_cache: Dict[tuple, float] = {}
        self._mu_cache: Dict[tuple, float] = {}
        self._nu_cache: Dict[tuple, float] = {}
        self._capacity_cache: Dict[tuple, float] = {}
        self._max_layers_cache: Dict[tuple, int] = {}
        self._stage_caps_cache: Dict[tuple, tuple] = {}
        self._capacity_vec_cache: Dict[tuple, tuple] = {}
        self._munu_vec_cache: Dict[tuple, tuple] = {}
        self._cache_counters: Dict[str, int] = {}
        self._config_snapshot = self._snapshot_config()

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def _caches(self) -> Dict[str, Dict]:
        return {
            "zeta": self._zeta_cache,
            "rho": self._rho_cache,
            "rho_ref": self._rho_ref_cache,
            "mu": self._mu_cache,
            "nu": self._nu_cache,
            "capacity": self._capacity_cache,
            "max_layers": self._max_layers_cache,
            "stage_caps": self._stage_caps_cache,
            "capacity_vec": self._capacity_vec_cache,
            "munu_vec": self._munu_vec_cache,
        }

    def _snapshot_config(self) -> tuple:
        """Fingerprint of the calibration config (all fields are scalars)."""
        return tuple(sorted(vars(self.config).items()))

    def config_fingerprint(self) -> tuple:
        """Public view of the calibration-config fingerprint.

        Shared with the sweep engine's :class:`~repro.core.sweep
        .SolutionCache` (which drops its warm-start entries whenever the
        fingerprint moves, mirroring :meth:`refresh_if_config_changed`)
        and shipped with every process-backend batch so pool workers can
        self-heal after an in-place calibration edit in the parent.
        """
        return self._snapshot_config()

    def invalidate_caches(self) -> None:
        """Drop every memoized coefficient.

        Must be called whenever ``config``, ``model`` or the cluster is
        mutated in place (e.g. re-calibrating ``compute_efficiency`` between
        planning rounds); the caches are keyed on arguments only and would
        otherwise serve stale values.  As a safety net the planner calls
        :meth:`refresh_if_config_changed` at the start of every ``plan``, so
        a forgotten invalidation after a *config* edit self-heals at the
        next planning round (model/cluster mutations still need the explicit
        hook).
        """
        for cache in self._caches().values():
            cache.clear()
        self._cache_counters.clear()
        self._config_snapshot = self._snapshot_config()

    def refresh_if_config_changed(self) -> bool:
        """Invalidate the caches when the config was mutated in place.

        Cheap (one scalar-tuple comparison), so callers with a natural
        entry point — e.g. the planner — run it once per invocation.
        Returns whether an invalidation happened.
        """
        if self._snapshot_config() == self._config_snapshot:
            return False
        self.invalidate_caches()
        return True

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-cache diagnostics: entry count plus hit/miss counters."""
        counters = self._cache_counters
        return {
            name: {
                "size": len(cache),
                "hits": counters.get(name + "_hits", 0),
                "misses": counters.get(name + "_misses", 0),
            }
            for name, cache in self._caches().items()
        }

    def _count(self, counter: str) -> None:
        self._cache_counters[counter] = self._cache_counters.get(counter, 0) + 1

    def rate_array(self, rates: Mapping[int, float]) -> RateArray:
        """Array view of ``rates``, with the id index memoized per episode.

        The sorted-id index and the id→position map only depend on the
        GPU-id *set*, which is stable across the thousands of kernel
        calls inside one planning episode; only the float values are
        refreshed on every call.  Not config-dependent, so it survives
        :meth:`invalidate_caches` untouched.

        The per-call refresh is memoized on the dict's *insertion-order*
        key tuple: a hit re-reads the values with ``np.fromiter`` and
        re-sorts them through the cached argsort permutation (one C-level
        gather), producing exactly the floats ``[rates[g] for g in
        sorted(rates)]`` would — the sorted-id listcomp and the 16k-id
        sort drop out of the per-call path entirely.  A dict with the
        same ids in a different insertion order just misses and rebuilds.
        """
        xp = require_numpy("MalleusCostModel.rate_array")
        # Fast path for a pinned episode (see pin_rates): the caller has
        # promised this exact mapping object stays frozen, so once its
        # values are loaded every further call can return the array as-is
        # — no key tuple, no fromiter.  ``_rate_array_src`` records which
        # object's values are currently loaded; a call with any *other*
        # mapping in between falls through, refreshes, and retags.
        if rates is self._pinned_rates \
                and self._rate_array_src == id(rates) \
                and self._rate_array is not None:
            return self._rate_array
        key = tuple(rates)
        cached = self._rate_array
        if cached is None or self._rate_array_key != key:
            cached = RateArray.from_rates(rates)
            self._rate_array_key = key
            self._rate_array = cached
            self._rate_array_perm = xp.argsort(
                xp.asarray(key, dtype=xp.int64)
            )
            self._rate_array_src = id(rates)
            return cached
        raw = xp.fromiter(rates.values(), dtype=xp.float64, count=len(key))
        cached.values = raw[self._rate_array_perm]
        self._rate_array_src = id(rates)
        return cached

    def pin_rates(self, rates: Mapping[int, float]):
        """Declare ``rates`` frozen for the duration of one planning call.

        Returns a zero-argument callable that restores the previous pin
        (use in ``try/finally``).  While pinned, :meth:`rate_array` serves
        repeated calls with the *same mapping object* straight from the
        cached array without re-reading the dict — the caller must not
        mutate the mapping until the pin is released.  Calls with other
        mappings still refresh normally, and the first pinned call after
        such an interleaving refreshes too (the source tag mismatches),
        so correctness never depends on call order.  Nesting is safe; the
        restore callable unwinds one level.
        """
        previous = self._pinned_rates
        self._pinned_rates = rates

        def release() -> None:
            self._pinned_rates = previous

        return release

    # ------------------------------------------------------------------
    # Time model
    # ------------------------------------------------------------------
    def _reference_gpu_flops(self) -> float:
        """Achieved FLOP/s of one healthy GPU."""
        gpu = next(self.cluster.iter_gpus())
        return gpu.peak_flops * self.config.compute_efficiency

    def tp_allreduce_time(self, n: int, micro_batch_size: int,
                          gpu_ids: Optional[Sequence[int]] = None) -> float:
        """Per-layer tensor-parallel communication time for an ``n``-GPU group.

        Each transformer layer performs two all-reduces in the forward pass
        and two in the backward pass (attention output and MLP output), each
        carrying ``b * s * h`` bf16 activations.
        """
        if n <= 1:
            return 0.0
        volume = (
            2.0 * self.model.seq_length * micro_batch_size * self.model.hidden_size
        )
        if gpu_ids:
            bandwidth = self.cluster.group_bandwidth(gpu_ids)
        else:
            bandwidth = self.cluster.nodes[0].intra_node_bandwidth
        ring_factor = 2.0 * (n - 1) / n
        per_allreduce = ring_factor * volume / bandwidth
        return 4.0 * per_allreduce * self.config.tp_comm_overhead

    def zeta(self, n: int, micro_batch_size: int) -> float:
        """Per-layer fwd+bwd time of an ``n``-GPU healthy TP group (``zeta_n``)."""
        if n <= 0:
            raise ValueError("TP degree must be positive")
        key = (n, micro_batch_size)
        if self.enable_caching:
            cached = self._zeta_cache.get(key)
            if cached is not None:
                self._count("zeta_hits")
                return cached
            self._count("zeta_misses")
        tokens = micro_batch_size * self.model.seq_length
        flops = self.model.training_flops_per_layer(tokens)
        compute = flops / (n * self._reference_gpu_flops())
        comm = self.tp_allreduce_time(n, micro_batch_size)
        value = compute + comm
        if self.enable_caching:
            self._zeta_cache[key] = value
        return value

    def rho(self, n: int, micro_batch_size: int = 1,
            candidate_sizes: Iterable[int] = (1, 2, 4, 8)) -> float:
        """Efficiency-degradation coefficient ``rho_n = zeta_n / max zeta``.

        The reference maximum ``max_{n'} zeta_{n'}`` only depends on the
        candidate-size set and the micro-batch size, so it is memoized
        alongside the ``zeta`` cache instead of being recomputed over all
        candidate sizes on every call; the final ratio is memoized too
        (``rho`` runs once per group per candidate, making it one of the
        hottest cost-model entry points).
        """
        cs = tuple(candidate_sizes)
        value_key = (n, micro_batch_size, cs)
        if self.enable_caching:
            cached = self._rho_cache.get(value_key)
            if cached is not None:
                self._count("rho_hits")
                return cached
            self._count("rho_misses")
        sizes = tuple(sorted(set(cs) | {n}))
        key = (sizes, micro_batch_size)
        reference: Optional[float] = None
        if self.enable_caching:
            reference = self._rho_ref_cache.get(key)
            if reference is not None:
                self._count("rho_ref_hits")
            else:
                self._count("rho_ref_misses")
        if reference is None:
            reference = max(self.zeta(size, micro_batch_size) for size in sizes)
            if self.enable_caching:
                self._rho_ref_cache[key] = reference
        value = self.zeta(n, micro_batch_size) / reference
        if self.enable_caching:
            self._rho_cache[value_key] = value
        return value

    def tau(self, micro_batch_size: int) -> float:
        """Per-layer fwd+bwd time of the reference (TP=1, healthy) group."""
        return self.zeta(1, micro_batch_size)

    def group_straggling_rate(self, gpu_rates: Sequence[float],
                              micro_batch_size: int = 1) -> float:
        """Group straggling rate ``y = rho_n * max(x_k)`` (§4.2)."""
        rates = list(gpu_rates)
        if not rates:
            raise ValueError("a TP group needs at least one GPU")
        worst = max(rates)
        if math.isinf(worst):
            return math.inf
        return self.rho(len(rates), micro_batch_size) * worst

    def stage_time(self, group_rate: float, num_layers: int,
                   micro_batch_size: int) -> float:
        """Per-micro-batch time of a stage: ``t = y * l * tau(b)``."""
        if num_layers == 0:
            return 0.0
        return group_rate * num_layers * self.tau(micro_batch_size)

    def pipeline_time(self, stage_times: Sequence[float], num_micro_batches: int,
                      exact: bool = False) -> float:
        """1F1B pipeline time for one step of a single pipeline.

        ``exact=False`` uses the planner's simplification
        ``T ≈ m * max_j t_j``; ``exact=True`` uses the full
        ``(m - 1) * max_j t_j + sum_j t_j`` expression with warm-up and
        cool-down phases.
        """
        if not stage_times:
            return 0.0
        if num_micro_batches <= 0:
            return 0.0
        bottleneck = max(stage_times)
        if exact:
            return (num_micro_batches - 1) * bottleneck + sum(stage_times)
        return num_micro_batches * bottleneck

    # ------------------------------------------------------------------
    # Memory model (Appendix B.4), everything normalised to TP degree 1
    # ------------------------------------------------------------------
    def layer_state_bytes(self, dp_degree: int = 1) -> float:
        """Model-state bytes of one layer at TP=1 (``s_1`` in B.4)."""
        params = self.model.params_per_layer()
        per_param = self.config.bytes_per_param + self.config.grad_bytes_per_param
        optimizer = self.config.optimizer_bytes_per_param
        if self.config.zero1_optimizer_sharding and dp_degree > 1:
            optimizer /= dp_degree
        return params * (per_param + optimizer)

    def embedding_state_bytes(self, dp_degree: int = 1) -> float:
        """Model-state bytes of the embedding table at TP=1."""
        params = self.model.embedding_params()
        per_param = self.config.bytes_per_param + self.config.grad_bytes_per_param
        optimizer = self.config.optimizer_bytes_per_param
        if self.config.zero1_optimizer_sharding and dp_degree > 1:
            optimizer /= dp_degree
        return params * (per_param + optimizer)

    def lm_head_state_bytes(self, dp_degree: int = 1) -> float:
        """Model-state bytes of the LM head (plus final norm) at TP=1."""
        params = self.model.lm_head_params() + self.model.hidden_size
        per_param = self.config.bytes_per_param + self.config.grad_bytes_per_param
        optimizer = self.config.optimizer_bytes_per_param
        if self.config.zero1_optimizer_sharding and dp_degree > 1:
            optimizer /= dp_degree
        return params * (per_param + optimizer)

    def act_forward_bytes(self, micro_batch_size: int) -> float:
        """Forward activation bytes of one layer at TP=1 (``a_f`` in B.4)."""
        return self.config.activation_fudge * \
            self.model.layer_activation_bytes(micro_batch_size)

    def act_fwd_bwd_bytes(self, micro_batch_size: int) -> float:
        """Peak fwd+bwd activation bytes of one layer at TP=1 (``a_{f+b}``)."""
        return self.act_forward_bytes(micro_batch_size) * \
            (1.0 + self.config.fwd_bwd_activation_extra)

    def mu(self, pp_degree: int, stage_index: int, micro_batch_size: int,
           dp_degree: int = 1) -> float:
        """Per-layer memory coefficient ``mu_{i,j}(b)`` for a 1F1B stage.

        ``stage_index`` is 1-based, matching the paper.  Stage ``j`` keeps
        ``PP_i - j`` in-flight forward activations plus the activations of
        the micro-batch currently in fwd+bwd, plus the layer's model states.
        """
        if not 1 <= stage_index <= pp_degree:
            raise ValueError("stage_index must be in [1, pp_degree]")
        key = (pp_degree, stage_index, micro_batch_size, dp_degree)
        if self.enable_caching:
            cached = self._mu_cache.get(key)
            if cached is not None:
                self._count("mu_hits")
                return cached
            self._count("mu_misses")
        in_flight = pp_degree - stage_index
        activations = micro_batch_size * (
            self.act_forward_bytes(1) * in_flight + self.act_fwd_bwd_bytes(1)
        )
        value = activations + self.layer_state_bytes(dp_degree)
        if self.enable_caching:
            self._mu_cache[key] = value
        return value

    def nu(self, pp_degree: int, stage_index: int, micro_batch_size: int,
           dp_degree: int = 1) -> float:
        """Stage-constant memory ``nu_{i,j}(b)`` (embedding / LM-head extras)."""
        if not 1 <= stage_index <= pp_degree:
            raise ValueError("stage_index must be in [1, pp_degree]")
        key = (pp_degree, stage_index, micro_batch_size, dp_degree)
        if self.enable_caching:
            cached = self._nu_cache.get(key)
            if cached is not None:
                self._count("nu_hits")
                return cached
            self._count("nu_misses")
        extra = 0.0
        if stage_index == 1:
            in_flight = pp_degree - 1
            embed_act = self.model.embedding_activation_bytes(1)
            extra += micro_batch_size * embed_act * (in_flight + 1)
            extra += self.embedding_state_bytes(dp_degree)
        if stage_index == pp_degree:
            extra += micro_batch_size * self.model.lm_head_activation_bytes(1)
            extra += self.lm_head_state_bytes(dp_degree)
        if self.enable_caching:
            self._nu_cache[key] = extra
        return extra

    def group_capacity(self, gpu_ids: Sequence[int]) -> float:
        """Memory capacity ``C_{i,j}`` of a TP group, normalised to TP=1.

        ``C = k * (min_X C_X - G)``: the group shards every tensor across its
        ``k`` GPUs, so from the TP=1 perspective the capacity scales with
        ``k``; the slowest-memory GPU bounds the group and a reserved gap
        ``G`` is subtracted for communication/runtime buffers.
        """
        ids = tuple(gpu_ids)
        if not ids:
            raise ValueError("a TP group needs at least one GPU")
        if self.enable_caching:
            cached = self._capacity_cache.get(ids)
            if cached is not None:
                self._count("capacity_hits")
                return cached
            self._count("capacity_misses")
        min_capacity = min(self.cluster.memory_capacity(g) for g in ids)
        usable = min_capacity - self.config.reserved_memory_bytes
        value = len(ids) * usable if usable > 0 else 0.0
        if self.enable_caching:
            self._capacity_cache[ids] = value
        return value

    def max_layers_for_stage(self, gpu_ids: Sequence[int], pp_degree: int,
                             stage_index: int, micro_batch_size: int,
                             dp_degree: int = 1) -> int:
        """Largest layer count a stage can host without exceeding memory."""
        key = (tuple(gpu_ids), pp_degree, stage_index, micro_batch_size,
               dp_degree)
        if self.enable_caching:
            cached = self._max_layers_cache.get(key)
            if cached is not None:
                self._count("max_layers_hits")
                return cached
            self._count("max_layers_misses")
        capacity = self.group_capacity(gpu_ids)
        mu = self.mu(pp_degree, stage_index, micro_batch_size, dp_degree)
        nu = self.nu(pp_degree, stage_index, micro_batch_size, dp_degree)
        if capacity <= nu:
            value = 0
        else:
            value = int(math.floor((capacity - nu) / mu + 1e-9))
        if self.enable_caching:
            self._max_layers_cache[key] = value
        return value

    def stage_caps(self, groups: Sequence, pp_degree: int,
                   micro_batch_size: int, dp_degree: int = 1) -> List[int]:
        """Per-stage layer caps for an ordered group sequence.

        Equals ``[max_layers_for_stage(g.gpu_ids, pp, i, b, dp) for i, g
        in enumerate(groups, 1)]`` exactly, memoized on the groups'
        identity tuple (:class:`~repro.parallel.plan.TPGroup` is frozen;
        each entry pins its groups so the ids stay valid).  The layer ILP
        asks for the same pipeline's caps once per micro-batch candidate
        and per ordering probe, so the per-stage memo lookups collapse
        into one dict hit.  Registered in :meth:`_caches`, so config
        invalidation clears it with everything else.
        """
        if not self.enable_caching:
            return [
                self.max_layers_for_stage(
                    group.gpu_ids, pp_degree, stage_index,
                    micro_batch_size, dp_degree,
                )
                for stage_index, group in enumerate(groups, start=1)
            ]
        ids_key = tuple(map(id, groups))
        key = (ids_key, pp_degree, micro_batch_size, dp_degree)
        cached = self._stage_caps_cache.get(key)
        if cached is not None:
            self._count("stage_caps_hits")
            return list(cached[1])
        self._count("stage_caps_misses")
        caps = self._stage_caps_numpy(groups, ids_key, pp_degree,
                                      micro_batch_size, dp_degree)
        if caps is None:
            caps = [
                self.max_layers_for_stage(
                    group.gpu_ids, pp_degree, stage_index, micro_batch_size,
                    dp_degree,
                )
                for stage_index, group in enumerate(groups, start=1)
            ]
        if len(self._stage_caps_cache) >= 4096:
            self._stage_caps_cache.clear()
        self._stage_caps_cache[key] = (tuple(groups), tuple(caps))
        return list(caps)

    def _stage_caps_numpy(self, groups: Sequence, ids_key: tuple,
                          pp_degree: int, micro_batch_size: int,
                          dp_degree: int) -> Optional[List[int]]:
        """One-pass :meth:`stage_caps` for the numpy backend.

        ``cap_i = floor((C_i - nu_i) / mu_i + 1e-9)`` is elementwise —
        no reductions, so the IEEE operations match the scalar path
        exactly and the caps are **bit-identical** to the python loop
        (asserted by the kernel-equivalence suite).  The two inputs are
        vector-memoized on their true dependencies: the capacity vector
        on the groups' identity tuple (groups are frozen; the cache
        entry pins them), the mu/nu vectors on ``(pp, b, dp)`` alone —
        so a long pipeline's 2k-stage scalar loop collapses into two
        dict hits and one array expression.  Returns ``None`` (caller
        falls back to the scalar loop) off the numpy backend, for short
        pipelines where the loop is cheaper, or when a degenerate
        ``mu <= 0`` would need the scalar error path.
        """
        if np is None or self.kernels != "numpy" or len(groups) < 16:
            return None
        entry = self._capacity_vec_cache.get(ids_key)
        if entry is None:
            capacity = np.asarray(
                [self.group_capacity(group.gpu_ids) for group in groups],
                dtype=np.float64,
            )
            if len(self._capacity_vec_cache) >= 4096:
                self._capacity_vec_cache.clear()
            self._capacity_vec_cache[ids_key] = (tuple(groups), capacity)
        else:
            capacity = entry[1]
        munu_key = (pp_degree, len(groups), micro_batch_size, dp_degree)
        munu = self._munu_vec_cache.get(munu_key)
        if munu is None:
            mu = np.asarray(
                [self.mu(pp_degree, stage_index, micro_batch_size, dp_degree)
                 for stage_index in range(1, len(groups) + 1)],
                dtype=np.float64,
            )
            nu = np.asarray(
                [self.nu(pp_degree, stage_index, micro_batch_size, dp_degree)
                 for stage_index in range(1, len(groups) + 1)],
                dtype=np.float64,
            )
            if len(self._munu_vec_cache) >= 4096:
                self._munu_vec_cache.clear()
            self._munu_vec_cache[munu_key] = munu = (mu, nu)
        mu, nu = munu
        if not bool(np.all(mu > 0.0)):
            return None
        usable = capacity - nu
        caps = np.floor(usable / mu + 1e-9).astype(np.int64)
        caps[usable <= 0.0] = 0
        return [int(cap) for cap in caps]

    def stage_memory_bytes(self, gpu_ids: Sequence[int], num_layers: int,
                           pp_degree: int, stage_index: int,
                           micro_batch_size: int, dp_degree: int = 1) -> float:
        """Memory used by a stage (normalised to TP=1), ``l*mu + nu``."""
        mu = self.mu(pp_degree, stage_index, micro_batch_size, dp_degree)
        nu = self.nu(pp_degree, stage_index, micro_batch_size, dp_degree)
        return num_layers * mu + nu

    # ------------------------------------------------------------------
    # Whole-model helpers
    # ------------------------------------------------------------------
    def model_flops_per_step(self, global_batch_size: int) -> float:
        """Training FLOPs of one step (for MFU reporting)."""
        tokens = global_batch_size * self.model.seq_length
        return self.model.training_flops_per_token() * tokens

    def mfu(self, step_time: float, global_batch_size: int, num_gpus: int) -> float:
        """Model FLOPs Utilization achieved by a measured step time."""
        if step_time <= 0 or num_gpus <= 0:
            return 0.0
        gpu = next(self.cluster.iter_gpus())
        achieved = self.model_flops_per_step(global_batch_size) / step_time
        return achieved / (num_gpus * gpu.peak_flops)
