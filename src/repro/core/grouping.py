"""GPU grouping: Theorem 1 even partitioning and Theorem 2 group splitting.

This is the first half of the upper-level problem (§4.3.1).  For every
candidate TP degree in ``{1, 2, 4, 8}``:

1. within each node, GPUs are sorted by straggling rate and chunked into
   equal-size groups (Theorem 1: grouping similar GPUs together minimises
   mutual delays);
2. heavy stragglers are considered for isolation one by one (descending
   rate).  Isolating a straggler from an 8-GPU group leaves 7 GPUs that are
   re-grouped into power-of-two-sized consecutive groups; the candidate
   re-groupings are ranked with the Theorem 2 estimator
   ``T ∝ 1 / Σ_groups 1/y`` and the split is kept only if it improves the
   estimate.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster
from ..compat import np
from ..parallel.plan import TPGroup
from . import kernel_timing
from .costmodel import MalleusCostModel


@dataclass
class GroupingResult:
    """The TP groups produced for one candidate TP degree."""

    tp_limit: int
    groups: List[TPGroup] = field(default_factory=list)
    isolated_gpus: List[int] = field(default_factory=list)
    harmonic_throughput: float = 0.0

    def group_sizes(self) -> List[int]:
        """Sizes of all groups."""
        return [group.size for group in self.groups]

    def num_groups(self) -> int:
        """Number of TP groups."""
        return len(self.groups)


# ----------------------------------------------------------------------
# Theorem 1: even partitioning within a node
# ----------------------------------------------------------------------
def even_partition(gpu_ids: Sequence[int], rates: Dict[int, float],
                   group_size: int) -> List[TPGroup]:
    """Partition a node's GPUs into equal-size groups per Theorem 1.

    GPUs are sorted by descending straggling rate and chunked, so similar
    GPUs end up together and the slow ones do not drag down fast groups.
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    ids = sorted(gpu_ids, key=lambda g: (-rates[g], g))
    if len(ids) % group_size != 0:
        raise ValueError(
            f"{len(ids)} GPUs cannot be evenly split into groups of {group_size}"
        )
    groups = []
    for start in range(0, len(ids), group_size):
        groups.append(TPGroup(gpu_ids=tuple(ids[start:start + group_size])))
    return groups


# ----------------------------------------------------------------------
# Theorem 2: harmonic-throughput estimation
# ----------------------------------------------------------------------
def group_rate(group: TPGroup, rates: Dict[int, float],
               cost_model: MalleusCostModel, micro_batch_size: int = 1) -> float:
    """Group straggling rate ``y = rho_n * max(x)``."""
    return cost_model.group_straggling_rate(
        [rates[g] for g in group.gpu_ids], micro_batch_size
    )


def harmonic_throughput(groups: Sequence[TPGroup], rates: Dict[int, float],
                        cost_model: MalleusCostModel,
                        micro_batch_size: int = 1) -> float:
    """Theorem 2 estimator: relaxed training time is ``∝ 1 / Σ 1/y``.

    Larger is better.  Groups containing failed GPUs (infinite rate)
    contribute zero throughput.  On the numpy backend the per-group
    rates come from the batched kernel (bit-identical values); the
    harmonic accumulation stays a sequential python loop in group order
    either way, so the sum's float chain is identical across backends.
    """
    if getattr(cost_model, "kernels", "python") == "numpy":
        ys = group_rates_batch(groups, rates, cost_model, micro_batch_size)
    else:
        ys = [group_rate(group, rates, cost_model, micro_batch_size)
              for group in groups]
    total = 0.0
    for y in ys:
        if math.isinf(y) or y <= 0:
            continue
        total += 1.0 / y
    return total


def group_rates_batch(groups: Sequence[TPGroup], rates: Dict[int, float],
                      cost_model: MalleusCostModel,
                      micro_batch_size: int = 1) -> List[float]:
    """Vectorized :func:`group_rate` over many groups (bit-identical).

    Gathers every group's member rates through the episode's
    :class:`~repro.core.costmodel.RateArray` index and reduces each
    group's maximum with one ``np.maximum.reduceat`` pass; the final
    ``y = rho_n * max(x)`` multiply is elementwise, so each value is the
    same IEEE-754 product the scalar kernel computes (``rho * inf`` is
    ``inf``, matching the scalar early return for failed GPUs).  Only the
    per-group *values* are produced here — callers that reduce over them
    (harmonic sums, warm-up sums) keep their own sequential float loops
    so the reduction order stays identical to the reference kernels.

    Falls back to the scalar loop without numpy or for tiny inputs.
    """
    if np is None or len(groups) < 16:
        return [group_rate(group, rates, cost_model, micro_batch_size)
                for group in groups]
    ra = cost_model.rate_array(rates)
    # The member-position gather only depends on the groups and the
    # episode's id index, not on the rate values, so it is memoized on
    # the groups' identity tuple (TPGroup is frozen; the cached entry
    # pins the groups so the ids stay live).  Re-planning paths call
    # this kernel dozens of times on the same group lists per episode.
    cache_key = tuple(map(id, groups))
    entry = ra.gather_cache.get(cache_key)
    if entry is None:
        members = [g for group in groups for g in group.gpu_ids]
        positions = np.searchsorted(
            ra.ids, np.asarray(members, dtype=np.int64)
        )
        sizes = [group.size for group in groups]
        offsets = np.zeros(len(groups), dtype=np.int64)
        np.cumsum(np.asarray(sizes[:-1], dtype=np.int64), out=offsets[1:])
        if len(ra.gather_cache) >= 256:
            ra.gather_cache.clear()
        ra.gather_cache[cache_key] = (tuple(groups), positions, offsets,
                                      sizes)
    else:
        _, positions, offsets, sizes = entry
    maxima = np.maximum.reduceat(ra.values[positions], offsets)
    rho_by_size = {
        size: cost_model.rho(size, micro_batch_size) for size in set(sizes)
    }
    factors = np.asarray([rho_by_size[s] for s in sizes], dtype=np.float64)
    return (factors * maxima).tolist()


# ----------------------------------------------------------------------
# Group splitting around heavy stragglers
# ----------------------------------------------------------------------
def power_of_two_decomposition(n: int, max_part: int) -> List[int]:
    """Greedy binary decomposition of ``n`` into power-of-two parts.

    E.g. 7 with ``max_part=8`` gives ``[4, 2, 1]``; this is the multiset of
    group sizes the paper re-groups the remaining GPUs into after isolating
    a heavy straggler (Appendix B.7).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    parts: List[int] = []
    remaining = n
    part = 1
    while part * 2 <= max_part:
        part *= 2
    while remaining > 0:
        while part > remaining:
            part //= 2
        parts.append(part)
        remaining -= part
    return parts


def enumerate_consecutive_groupings(gpu_ids: Sequence[int],
                                    rates: Dict[int, float],
                                    sizes: Sequence[int]) -> List[List[TPGroup]]:
    """All consecutive groupings of sorted GPUs for a multiset of sizes.

    Proposition 4 (Appendix B.7) shows an optimal grouping always consists
    of consecutive runs of the rate-sorted GPUs, so it suffices to enumerate
    the distinct orderings of the size multiset (at most 6 for sizes
    ``{1, 2, 4}``).
    """
    ids = sorted(gpu_ids, key=lambda g: (-rates[g], g))
    if sum(sizes) != len(ids):
        raise ValueError("sizes must sum to the number of GPUs")
    results: List[List[TPGroup]] = []
    for arrangement in sorted(set(itertools.permutations(sizes))):
        groups: List[TPGroup] = []
        cursor = 0
        for size in arrangement:
            groups.append(TPGroup(gpu_ids=tuple(ids[cursor:cursor + size])))
            cursor += size
        results.append(groups)
    return results


def split_node_groups(
    node_gpu_ids: Sequence[int],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    tp_limit: int,
    micro_batch_size: int = 1,
    straggler_threshold: float = 1.05,
) -> Tuple[List[TPGroup], List[int]]:
    """Group one node's GPUs for a TP limit, isolating heavy stragglers.

    Returns the node's groups and the list of GPUs isolated into singleton
    groups (which remain part of the returned groups; the planner may later
    assign them zero layers and thereby remove them from training).
    """
    group_size = min(tp_limit, len(node_gpu_ids))
    base_groups = even_partition(node_gpu_ids, rates, group_size)
    if group_size == 1:
        return base_groups, []

    current_groups = base_groups
    isolated: List[int] = []
    stragglers = sorted(
        (g for g in node_gpu_ids if rates[g] > straggler_threshold),
        key=lambda g: -rates[g],
    )
    for straggler in stragglers:
        if straggler in isolated:
            continue
        remaining = [
            g for g in node_gpu_ids if g not in isolated and g != straggler
        ]
        candidate_isolated = isolated + [straggler]
        best_candidate: Optional[List[TPGroup]] = None
        best_score = harmonic_throughput(
            current_groups, rates, cost_model, micro_batch_size
        )
        sizes = power_of_two_decomposition(len(remaining), group_size)
        singleton_groups = [TPGroup(gpu_ids=(g,)) for g in candidate_isolated]
        if remaining:
            candidates = enumerate_consecutive_groupings(remaining, rates, sizes)
        else:
            candidates = [[]]
        for regrouping in candidates:
            groups = singleton_groups + regrouping
            score = harmonic_throughput(groups, rates, cost_model, micro_batch_size)
            if score > best_score + 1e-12:
                best_score = score
                best_candidate = groups
        if best_candidate is not None:
            current_groups = best_candidate
            isolated = candidate_isolated
    return current_groups, isolated


@dataclass
class RegroupDelta:
    """Outcome of a delta-aware regroup against a previous grouping.

    ``grouping`` is the full new :class:`GroupingResult`; nodes without any
    touched GPU reuse the previous node's groups verbatim (grouping is a
    pure per-node function of the node's rates, so the reuse is exact).
    ``changed_node_ids`` lists the nodes whose *membership partition*
    changed — intra-group reorderings (same GPU sets, different rate order)
    do not count, since every consumer of a group only looks at its member
    set through ``group_rate``.
    """

    grouping: GroupingResult
    changed_node_ids: List[int] = field(default_factory=list)
    removed_groups: List[TPGroup] = field(default_factory=list)
    added_groups: List[TPGroup] = field(default_factory=list)

    @property
    def unchanged(self) -> bool:
        """True when no node's membership partition changed."""
        return not self.changed_node_ids


def _membership(groups: Sequence[TPGroup]) -> set:
    return {group.id_set for group in groups}


def regroup_delta(
    cluster: Cluster,
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    previous: GroupingResult,
    touched_gpus: Sequence[int],
    micro_batch_size: int = 1,
    straggler_threshold: float = 1.05,
    enable_splitting: bool = True,
) -> RegroupDelta:
    """Re-group only the nodes containing touched GPUs.

    This is the grouping half of incremental re-planning: a straggler event
    usually touches one or two nodes, so re-running the (comparatively
    expensive) Theorem 1 + Theorem 2 machinery on every node is wasted work.
    Untouched nodes keep their previous groups; touched nodes are re-grouped
    from scratch and compared against their previous partition so the caller
    learns whether the event stayed inside the old grouping
    (``minor_rate_shift``) or moved a grouping boundary (``group_change``).
    """
    touched = set(touched_gpus)
    previous_by_node: Dict[int, List[TPGroup]] = {}
    gpu_to_node = {
        gpu_id: node.node_id
        for node in cluster.nodes for gpu_id in node.gpu_ids()
    }
    for group in previous.groups:
        previous_by_node.setdefault(gpu_to_node[group.gpu_ids[0]], []).append(group)
    previous_isolated = set(previous.isolated_gpus)

    groups: List[TPGroup] = []
    isolated: List[int] = []
    changed_nodes: List[int] = []
    removed: List[TPGroup] = []
    added: List[TPGroup] = []
    for node in cluster.nodes:
        node_gpu_ids = node.gpu_ids()
        old_groups = previous_by_node.get(node.node_id, [])
        if not touched.intersection(node_gpu_ids):
            groups.extend(old_groups)
            isolated.extend(g for g in node_gpu_ids if g in previous_isolated)
            continue
        if enable_splitting:
            node_groups, node_isolated = split_node_groups(
                node_gpu_ids, rates, cost_model, previous.tp_limit,
                micro_batch_size, straggler_threshold,
            )
        else:
            group_size = min(previous.tp_limit, len(node_gpu_ids))
            node_groups = even_partition(node_gpu_ids, rates, group_size)
            node_isolated = []
        groups.extend(node_groups)
        isolated.extend(node_isolated)
        old_sets, new_sets = _membership(old_groups), _membership(node_groups)
        if old_sets != new_sets:
            changed_nodes.append(node.node_id)
            removed.extend(
                g for g in old_groups if g.id_set not in new_sets
            )
            added.extend(
                g for g in node_groups if g.id_set not in old_sets
            )
    throughput = harmonic_throughput(groups, rates, cost_model, micro_batch_size)
    grouping = GroupingResult(
        tp_limit=previous.tp_limit,
        groups=groups,
        isolated_gpus=sorted(isolated),
        harmonic_throughput=throughput,
    )
    return RegroupDelta(
        grouping=grouping,
        changed_node_ids=changed_nodes,
        removed_groups=removed,
        added_groups=added,
    )


def group_gpus(
    cluster: Cluster,
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    tp_limit: int,
    micro_batch_size: int = 1,
    straggler_threshold: float = 1.05,
    enable_splitting: bool = True,
    kernels: Optional[str] = None,
) -> GroupingResult:
    """Run the full GPU-grouping process for one candidate TP degree.

    TP groups never span nodes (TP communication needs intra-node bandwidth),
    so each node is partitioned independently and the per-node results are
    concatenated.

    ``kernels`` selects the backend (default: the cost model's own
    ``kernels`` knob).  The ``"numpy"`` path vectorizes the common case —
    straggler-free nodes of a uniform-size cluster, which is almost every
    node even mid-event — and only walks the python Theorem-2 splitting
    machinery for the handful of nodes that actually contain stragglers.
    Results are bit-identical to the python loop.
    """
    start_time = time.perf_counter()
    try:
        if kernels is None:
            kernels = getattr(cost_model, "kernels", "python")
        if kernels == "numpy" and np is not None:
            result = _group_gpus_numpy(
                cluster, rates, cost_model, tp_limit, micro_batch_size,
                straggler_threshold, enable_splitting,
            )
            if result is not None:
                return result
        groups: List[TPGroup] = []
        isolated: List[int] = []
        for node in cluster.nodes:
            node_gpu_ids = node.gpu_ids()
            if enable_splitting:
                node_groups, node_isolated = split_node_groups(
                    node_gpu_ids, rates, cost_model, tp_limit,
                    micro_batch_size, straggler_threshold,
                )
            else:
                group_size = min(tp_limit, len(node_gpu_ids))
                node_groups = even_partition(node_gpu_ids, rates, group_size)
                node_isolated = []
            groups.extend(node_groups)
            isolated.extend(node_isolated)
        throughput = harmonic_throughput(groups, rates, cost_model,
                                         micro_batch_size)
        return GroupingResult(
            tp_limit=tp_limit,
            groups=groups,
            isolated_gpus=sorted(isolated),
            harmonic_throughput=throughput,
        )
    finally:
        kernel_timing.add("grouping", time.perf_counter() - start_time)


def _group_gpus_numpy(
    cluster: Cluster,
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    tp_limit: int,
    micro_batch_size: int,
    straggler_threshold: float,
    enable_splitting: bool,
) -> Optional[GroupingResult]:
    """Array-world :func:`group_gpus` fast path (``None`` = not applicable).

    Requires a uniform cluster grid (same GPU count per node, divisible by
    the group size).  All straggler-free rows are partitioned in one
    vectorized pass: ``np.lexsort`` over ``(id asc, rate desc)`` replicates
    :func:`even_partition`'s ``(-rate, g)`` sort key exactly, and the
    per-group rate maxima fall out of a reshape.  Rows with stragglers go
    through :func:`split_node_groups` unchanged.  The final Theorem-2
    harmonic sum runs sequentially in python over the per-group ``y``
    values in group order, so it performs the identical float additions
    as the reference loop.
    """
    nodes = cluster.nodes
    if not nodes:
        return None
    id_rows = [node.gpu_ids() for node in nodes]
    per_node = len(id_rows[0])
    if per_node == 0 or any(len(row) != per_node for row in id_rows):
        return None
    group_size = min(tp_limit, per_node)
    if group_size <= 0 or per_node % group_size != 0:
        return None  # the python path raises the canonical error

    ids_grid = np.asarray(id_rows, dtype=np.int64)
    vals_grid = np.asarray(
        [[rates[g] for g in row] for row in id_rows], dtype=np.float64
    )
    # A node needs the python splitting machinery only when it hosts a
    # straggler (strict >, matching split_node_groups) and splitting can
    # actually trigger (group_size > 1).
    needs_python = np.zeros(len(nodes), dtype=bool)
    if enable_splitting and group_size > 1:
        needs_python = (vals_grid > straggler_threshold).any(axis=1)

    # Vectorized Theorem-1 partition of every healthy row: order GPUs by
    # (-rate, id) and chunk.  lexsort's last key is primary.
    order = np.lexsort((ids_grid, -vals_grid), axis=1)
    sorted_ids = np.take_along_axis(ids_grid, order, axis=1)
    sorted_vals = np.take_along_axis(vals_grid, order, axis=1)
    groups_per_node = per_node // group_size
    chunk_maxima = sorted_vals.reshape(
        len(nodes), groups_per_node, group_size
    ).max(axis=2)
    rho = cost_model.rho(group_size, micro_batch_size)

    groups: List[TPGroup] = []
    ys: List[float] = []
    isolated: List[int] = []
    id_lists = sorted_ids.tolist()
    maxima_lists = chunk_maxima.tolist()
    for row_index, node in enumerate(nodes):
        if needs_python[row_index]:
            node_groups, node_isolated = split_node_groups(
                id_rows[row_index], rates, cost_model, tp_limit,
                micro_batch_size, straggler_threshold,
            )
            groups.extend(node_groups)
            isolated.extend(node_isolated)
            ys.extend(
                group_rate(group, rates, cost_model, micro_batch_size)
                for group in node_groups
            )
            continue
        row_ids = id_lists[row_index]
        row_maxima = maxima_lists[row_index]
        for chunk in range(groups_per_node):
            start = chunk * group_size
            groups.append(
                TPGroup(gpu_ids=tuple(row_ids[start:start + group_size]))
            )
            worst = row_maxima[chunk]
            ys.append(math.inf if math.isinf(worst) else rho * worst)

    total = 0.0
    for y in ys:
        if math.isinf(y) or y <= 0:
            continue
        total += 1.0 / y
    return GroupingResult(
        tp_limit=tp_limit,
        groups=groups,
        isolated_gpus=sorted(isolated),
        harmonic_throughput=total,
    )
