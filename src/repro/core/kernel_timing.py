"""Process-local per-kernel wall-time accumulator.

The hot-path benchmark wants to attribute planning time to the three
solver kernels (pipeline division, min-max assignment, TP grouping)
rather than report one opaque total.  The kernels are called from deep
inside the sweep — including from pool workers in the process backend —
so threading a timing object through every signature would be invasive.
Instead each kernel adds its wall time to this process-local
accumulator, and the sweep drains it around every candidate evaluation
(:func:`repro.core.sweep.evaluate_candidate`) so the numbers ship back
to the parent inside ``CandidateTiming`` and are merged into
``PlanningTimeBreakdown.kernels``.

Not thread-safe by design: the sweep engine is process-parallel, never
thread-parallel, and each worker process owns its own module globals.
"""

from __future__ import annotations

from typing import Dict

#: Kernel names tracked in ``PlanningTimeBreakdown.kernels``.
KERNELS = ("division", "minmax", "grouping")

_accumulator: Dict[str, float] = {}


def add(kernel: str, seconds: float) -> None:
    """Charge ``seconds`` of wall time to ``kernel``."""
    _accumulator[kernel] = _accumulator.get(kernel, 0.0) + seconds


def peek(kernel: str) -> float:
    """Current accumulated wall time of ``kernel`` without resetting it.

    Lets an enclosing kernel subtract the time its nested kernels already
    charged (the division solver runs min-max solves inside its own
    window), keeping the buckets additive instead of overlapping.
    """
    return _accumulator.get(kernel, 0.0)


def drain() -> Dict[str, float]:
    """Return the accumulated per-kernel times and reset the accumulator."""
    out = dict(_accumulator)
    _accumulator.clear()
    return out
