"""Pipeline orchestration: division (Eq. 4) and group ordering (Theorem 3).

Second half of the upper-level problem (§4.3.2).  Given the TP groups of a
grouping result and a target DP degree, we must decide (i) which groups form
which pipeline and (ii) the order of the groups within each pipeline.

* **Pipeline division** treats all majority-rate groups as interchangeable
  "fast" groups and the rest as "slow" groups, and solves the relaxed MINLP
  of Eq. 4 with :func:`repro.solvers.division.solve_pipeline_division`.
* **Group ordering** bundles the groups of a pipeline by TP degree, sorts
  every bundle by descending straggling rate (Theorem 3: faster groups go to
  later stages because early stages must keep more in-flight activations),
  and enumerates the orderings of the bundles (at most 4! = 24), evaluating
  each with the lower-level layer ILP.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel.plan import TPGroup
from ..solvers.division import DivisionProblem, solve_pipeline_division
from .assignment import assign_layers
from .costmodel import MalleusCostModel
from .grouping import group_rate, group_rates_batch


@dataclass
class OrchestrationResult:
    """Pipelines (ordered group lists) produced for one grouping result."""

    pipelines: List[List[TPGroup]] = field(default_factory=list)
    dp_degree: int = 0
    division_objective: float = math.inf
    feasible: bool = True
    #: Winning division's per-pipeline slow-group rate buckets; callers
    #: that re-solve a similar instance later (the sweep engine's
    #: warm-start cache) pass them back as ``divide_pipelines``'s
    #: ``warm_start`` seed.  Populated whenever the division solver ran
    #: (check ``feasible`` separately); ``None`` when it never did.
    slow_groups: Optional[List[List[float]]] = None


# ----------------------------------------------------------------------
# Pipeline division
# ----------------------------------------------------------------------
def classify_groups(
    groups: Sequence[TPGroup],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    micro_batch_size: int = 1,
    tolerance: float = 0.02,
    kernels: Optional[str] = None,
) -> Tuple[List[TPGroup], float, List[Tuple[TPGroup, float]]]:
    """Split groups into majority-rate "fast" groups and individual "slow" ones.

    The majority rate is the most common group straggling rate (within a
    relative ``tolerance``); the paper leverages the fact that most GPUs are
    healthy so most groups share the same rate.

    ``kernels`` selects the rate-evaluation backend (default: the cost
    model's knob); the ``"numpy"`` path batches the per-group rates
    through :func:`repro.core.grouping.group_rates_batch`.  The modal
    clustering and the fast-rate mean stay sequential python either way,
    so the classification is bit-identical across backends.
    """
    if kernels is None:
        kernels = getattr(cost_model, "kernels", "python")
    if kernels == "numpy":
        ys = group_rates_batch(groups, rates, cost_model, micro_batch_size)
        rated = list(zip(groups, ys))
    else:
        rated = [
            (group, group_rate(group, rates, cost_model, micro_batch_size))
            for group in groups
        ]
    finite = [(g, y) for g, y in rated if not math.isinf(y)]
    if not finite:
        return [], 1.0, [(g, y) for g, y in rated]
    # Find the modal rate by clustering within the tolerance.
    clusters: List[List[Tuple[TPGroup, float]]] = []
    for group, y in sorted(finite, key=lambda item: item[1]):
        placed = False
        for cluster in clusters:
            if abs(y - cluster[0][1]) <= tolerance * cluster[0][1]:
                cluster.append((group, y))
                placed = True
                break
        if not placed:
            clusters.append([(group, y)])
    majority = max(clusters, key=len)
    fast_groups = [g for g, _ in majority]
    fast_rate = sum(y for _, y in majority) / len(majority)
    # Identity-based membership: groups within a grouping are disjoint GPU
    # sets, so object identity and value equality coincide — and the set
    # lookup replaces the quadratic ``g not in fast_groups`` list scan.
    fast_ids = {id(g) for g in fast_groups}
    slow = [
        (g, y) for g, y in rated
        if id(g) not in fast_ids
    ]
    return fast_groups, fast_rate, slow


def divide_pipelines(
    groups: Sequence[TPGroup],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    dp_degree: int,
    total_micro_batches: int,
    micro_batch_size: int = 1,
    min_groups_per_pipeline: int = 1,
    legacy_kernels: bool = False,
    warm_start: Optional[Sequence[Sequence[float]]] = None,
    kernels: Optional[str] = None,
) -> OrchestrationResult:
    """Assign TP groups to ``dp_degree`` pipelines by solving Eq. 4.

    ``legacy_kernels`` selects the pre-overhaul division kernels and
    ``warm_start`` seeds a previous solution's per-pipeline slow-group
    rate buckets (see :func:`repro.solvers.division.solve_pipeline_division`;
    callers that retain a previous :class:`DivisionSolution` pass its
    ``slow_groups`` to start the fallback local search from the incumbent
    division instead of from scratch).  ``kernels`` selects the backend
    for the rate evaluation and the division solver (default: the cost
    model's knob).
    """
    if kernels is None:
        kernels = getattr(cost_model, "kernels", "python")
    if kernels == "numpy":
        all_ys = group_rates_batch(groups, rates, cost_model, micro_batch_size)
        usable = [g for g, y in zip(groups, all_ys) if not math.isinf(y)]
    else:
        usable = [
            group for group in groups
            if not math.isinf(
                group_rate(group, rates, cost_model, micro_batch_size)
            )
        ]
    if len(usable) < dp_degree * min_groups_per_pipeline:
        return OrchestrationResult(dp_degree=dp_degree, feasible=False)

    fast_groups, fast_rate, slow = classify_groups(
        usable, rates, cost_model, micro_batch_size, kernels=kernels
    )
    slow_rates = [y for _, y in slow]
    problem = DivisionProblem(
        num_pipelines=dp_degree,
        total_micro_batches=total_micro_batches,
        fast_group_count=len(fast_groups),
        fast_group_rate=fast_rate if fast_groups else 1.0,
        slow_group_rates=slow_rates,
        min_groups_per_pipeline=min_groups_per_pipeline,
    )
    use_cache = getattr(cost_model, "enable_caching", True)
    solution = solve_pipeline_division(
        problem, legacy_kernels=legacy_kernels,
        use_minmax_cache=use_cache and not legacy_kernels,
        warm_start=warm_start,
        kernels=kernels,
    )

    # Map the abstract division back onto concrete TPGroup objects.
    fast_pool = sorted(fast_groups, key=lambda g: (-g.size, g.gpu_ids))
    slow_pool: Dict[float, List[TPGroup]] = {}
    for group, y in slow:
        slow_pool.setdefault(round(y, 9), []).append(group)

    pipelines: List[List[TPGroup]] = []
    cursor = 0
    for i in range(dp_degree):
        pipeline: List[TPGroup] = []
        count = solution.fast_groups[i]
        pipeline.extend(fast_pool[cursor:cursor + count])
        cursor += count
        for y in solution.slow_groups[i]:
            key = round(y, 9)
            bucket = slow_pool.get(key)
            if not bucket:
                # Floating-point mismatch: fall back to the nearest bucket.
                key = min(slow_pool, key=lambda k: abs(k - y)) if slow_pool else None
                bucket = slow_pool.get(key) if key is not None else None
            if bucket:
                pipeline.append(bucket.pop())
        pipelines.append(pipeline)

    return OrchestrationResult(
        pipelines=pipelines,
        dp_degree=dp_degree,
        division_objective=solution.objective,
        feasible=all(len(p) >= min_groups_per_pipeline for p in pipelines),
        slow_groups=[list(bucket) for bucket in solution.slow_groups],
    )


# ----------------------------------------------------------------------
# Group ordering within a pipeline (Theorem 3 + bundle enumeration)
# ----------------------------------------------------------------------
def order_pipeline_groups(
    pipeline_groups: Sequence[TPGroup],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    num_layers: int,
    micro_batch_size: int,
    dp_degree: int,
) -> List[TPGroup]:
    """Order the groups of one pipeline into pipeline stages.

    Groups are bundled by TP degree; within a bundle they are sorted by
    descending straggling rate (Theorem 3).  When several bundle sizes exist
    the bundle order is enumerated (at most 4! possibilities since TP degrees
    are restricted to {1, 2, 4, 8}) and each ordering is scored with the
    layer-assignment ILP; the best-scoring ordering wins.
    """
    groups = list(pipeline_groups)
    if len(groups) <= 1:
        return groups

    if getattr(cost_model, "kernels", "python") == "numpy":
        batch_ys = group_rates_batch(groups, rates, cost_model,
                                     micro_batch_size)
        y_by_id = {id(g): y for g, y in zip(groups, batch_ys)}

        def rate_of(g: TPGroup) -> float:
            return y_by_id[id(g)]
    else:
        def rate_of(g: TPGroup) -> float:
            return group_rate(g, rates, cost_model, micro_batch_size)

    bundles: Dict[int, List[TPGroup]] = {}
    for group in groups:
        bundles.setdefault(group.size, []).append(group)
    for size in bundles:
        bundles[size].sort(key=lambda g: -rate_of(g))

    if len(bundles) == 1:
        # Theorem 3 applies directly: descending straggling rate.
        return bundles[next(iter(bundles))]

    best_order: Optional[List[TPGroup]] = None
    best_score = math.inf
    for permutation in itertools.permutations(sorted(bundles)):
        ordered: List[TPGroup] = []
        for size in permutation:
            ordered.extend(bundles[size])
        # The incumbent bottleneck is forwarded as the layer ILP's prune
        # threshold, tightened by the solver's own optimality tolerance
        # (its improve loop stops once ``obj * (1 - 1e-12) - 1e-9`` is
        # infeasible).  An ordering that only ties the incumbent — the
        # common case, since permuted bundles share the weight multiset —
        # is pruned after a single probe instead of a full solve; one
        # that beats the incumbent by more than the tolerance still
        # solves fully and wins the strict comparison below.
        prune = None
        if math.isfinite(best_score):
            prune = best_score * (1.0 - 1e-12) - 1e-9
        result = assign_layers(
            ordered, rates, cost_model, num_layers, micro_batch_size,
            dp_degree,
            prune_above=prune,
        )
        if not result.feasible:
            continue
        if result.bottleneck < best_score - 1e-12:
            best_score = result.bottleneck
            best_order = ordered
    if best_order is None:
        # No ordering is memory-feasible; return the Theorem 3 default and let
        # the lower level report infeasibility.
        default: List[TPGroup] = []
        for size in sorted(bundles, reverse=True):
            default.extend(bundles[size])
        return default
    return best_order


def orchestrate(
    groups: Sequence[TPGroup],
    rates: Dict[int, float],
    cost_model: MalleusCostModel,
    dp_degree: int,
    num_layers: int,
    global_batch_size: int,
    micro_batch_size: int = 1,
    max_min_groups_retries: int = 4,
) -> OrchestrationResult:
    """Full pipeline orchestration: division followed by group ordering.

    If the lower level later finds a division infeasible (a pipeline cannot
    hold all layers in memory), the caller can retry with a larger
    ``min_groups_per_pipeline``; this helper already retries a few times by
    growing the minimum when the division itself is structurally infeasible.
    """
    total_micro_batches = max(1, global_batch_size // micro_batch_size)
    last: Optional[OrchestrationResult] = None
    for min_groups in range(1, max_min_groups_retries + 1):
        if len(groups) < dp_degree * min_groups:
            break
        result = divide_pipelines(
            groups, rates, cost_model, dp_degree, total_micro_batches,
            micro_batch_size, min_groups_per_pipeline=min_groups,
        )
        if not result.feasible:
            last = result
            continue
        ordered = [
            order_pipeline_groups(
                pipeline, rates, cost_model, num_layers, micro_batch_size,
                dp_degree,
            )
            for pipeline in result.pipelines
        ]
        result.pipelines = ordered
        # Quick feasibility probe: every pipeline must be able to host L layers.
        feasible = True
        for pipeline in ordered:
            probe = assign_layers(
                pipeline, rates, cost_model, num_layers, micro_batch_size,
                dp_degree,
            )
            if not probe.feasible:
                feasible = False
                break
        if feasible:
            return result
        last = result
    if last is None:
        return OrchestrationResult(dp_degree=dp_degree, feasible=False)
    last.feasible = False
    return last
