"""The Malleus parallelization planner (§4).

The planner turns the profiler's per-GPU straggling rates into a complete
parallelization plan by solving the bi-level optimization problem:

* **upper level** — for each candidate maximum TP degree in ``{1, 2, 4, 8}``
  the GPUs are grouped (Theorem 1 + splitting guided by Theorem 2) and the
  groups are orchestrated into ``DP`` pipelines (division MINLP Eq. 4,
  ordering by Theorem 3);
* **lower level** — for each candidate orchestration the layers and the
  training data are assigned by the ILPs of Eq. 2 and Eq. 3.

The best candidate (smallest estimated step time) wins.  The planner also
records a per-phase time breakdown, which reproduces the scalability study
of Appendix A.2 (Table 5).

Hot-path overhaul
-----------------
Re-planning puts this solver on the critical path of every straggler event
(§5), so the candidate sweep is organised around a cheap, provably-sound
lower bound (total layer-work over total harmonic group speed, minimised
over the micro-batch candidates):

* every ``(grouping, dp)`` candidate is bounded *before* the expensive
  division/ordering/assignment phases run; candidates are evaluated in
  ascending-bound order so the incumbent tightens as early as possible, and
  any candidate whose bound exceeds the incumbent is skipped outright;
* the incumbent is threaded into :func:`solve_lower_level`, which applies
  the same bound per micro-batch size;
* lower-level solutions stay unmaterialized (:class:`PlanCandidate`); the
  single overall winner is built and validated once at the end.

``enable_pruning=False`` restores the exhaustive sweep and
``legacy_kernels=True`` additionally selects the pre-overhaul division
kernels and build-per-improvement materialization — together with a
``MalleusCostModel(enable_caching=False)`` they form the "before"
configuration of ``benchmarks/test_bench_planner_hotpath.py``.  Winners
(including equal-time ties) are identical with or without the caches and
pruning; ``tests/test_planner_cache_equivalence.py`` and
``tests/test_pruning_bounds.py`` assert both properties.

Transition-aware planning
-------------------------
Re-planning is never free: realising a new plan migrates parameter and
optimizer state (§5.1, 1-5 s per adjustment).  With
:class:`TransitionConfig` enabled and the incumbent's
:class:`PlanContext` passed as ``previous``, the sweep scores every
solved candidate's migration cost from the incumbent layout
(:func:`repro.parallel.migration.estimate_transition_cost`, computed on
the *unmaterialized* :class:`~repro.core.assignment.PlanCandidate`) and
the winner is the minimally-disruptive candidate whose amortized score
``step + migration / horizon_steps`` stays within ``epsilon`` of the
best pure step time; the pruning bound gains a provable (usually zero)
migration-time floor.  Disabled — the default — the sweep is
bit-identical to pure step-time planning;
``benchmarks/test_bench_transition_study.py`` asserts both the
off-switch identity and the strictly-lower-downtime contract.

Sweep engine
------------
The candidate sweep itself (bound-ordered evaluation, pruning, finalist
selection) lives in :mod:`repro.core.sweep` and is shared with the
replan engine.  :class:`~repro.core.sweep.SweepConfig` selects the
execution backend (``serial``, the default and bit-identical to the
historical in-line sweep, or ``process`` — a deterministic worker pool)
and the cross-event :class:`~repro.core.sweep.SolutionCache`
(``warm_cache=True``), which lets *every* (tp, dp) candidate warm-start
from its own previous division instead of only the incumbent pair.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..cluster.topology import Cluster
from ..models.spec import TrainingTask
from ..parallel.migration import (
    DEFAULT_LAYER_PACK,
    PlanLayout,
    TransitionEstimate,
    estimate_transition_cost,
    layout_from_candidate,
    transition_time_lower_bound,
)
from ..compat import require_numpy
from ..parallel.plan import ParallelizationPlan, TPGroup
from . import kernel_timing
from .assignment import PlanCandidate, sorted_divisors
from .costmodel import KERNEL_BACKENDS, CostModelConfig, MalleusCostModel
from .grouping import GroupingResult, group_gpus
from .sweep import (
    CandidateRecord,
    EvalContext,
    PlanningTimeBreakdown,
    SolutionCache,
    SweepConfig,
    SweepEntry,
    SweepExecutor,
    candidate_bound,
    run_sweep,
)


@dataclass
class TransitionConfig:
    """Knobs of transition-aware planning (§5.1 as a planning objective).

    With ``enabled=False`` (the default) the planner optimizes step time
    alone and every code path is bit-identical to the transition-unaware
    planner.  With ``enabled=True`` and a ``previous``
    :class:`PlanContext`, candidates are scored by the **amortized
    objective** ``step_time + migration_time / horizon_steps`` — the cost
    of reaching a plan is paid once but its step time is paid on every one
    of the ``horizon_steps`` steps the plan is expected to survive — under
    a step-time guard: only candidates within ``epsilon`` of the best pure
    step time may win, so enabling transitions can never regress the step
    time by more than ``epsilon``.

    ``tie_break_only=True`` is the conservative mode: candidates are
    ranked by step time exactly as today and the migration estimate only
    resolves exact ties (repairs that keep the incumbent layout therefore
    win them), which provably never changes the achieved step time.

    ``overlap=True`` models **overlapped migration**: the job keeps
    training at the old plan for up to ``overlap_steps`` steps while the
    state streams in the background, so only the *exposed tail* of the
    drain time — ``max(0, migration_time - overlap_steps *
    old_step_time)`` — is charged, both in the amortized score (and its
    lower-bound floor) and in the runtime's downtime accounting.  With
    ``overlap=False`` (the default) every charge is bit-identical to the
    stop-the-world model.
    """

    enabled: bool = False
    #: Steps the new plan is expected to survive; migration cost is
    #: amortized over this horizon.  Small horizons (frequent straggler
    #: events) weight disruption heavily, large ones recover pure
    #: step-time planning.
    horizon_steps: float = 20.0
    #: Maximum relative step-time regression a transition-aware choice may
    #: accept; candidates outside ``best_step * (1 + epsilon)`` never win.
    epsilon: float = 0.01
    tie_break_only: bool = False
    #: Layers fused per migration batch (threaded into the estimates).
    layer_pack: int = DEFAULT_LAYER_PACK
    #: Overlap migration with training at the old plan, charging only the
    #: exposed tail of the drain time (see the class docstring).
    overlap: bool = False
    #: Old-plan steps the migration may hide under when ``overlap`` is on;
    #: the hideable window is ``overlap_steps * old-plan step time``.
    overlap_steps: float = 1.0


@dataclass
class PlanContext:
    """Everything the incremental repair engine needs about a winning plan.

    Captured for free at the end of every successful :meth:`MalleusPlanner.plan`
    (the fields are references to objects the sweep built anyway) and handed
    back into :meth:`MalleusPlanner.plan_incremental` on the next straggler
    event, where it lets the engine keep the incumbent grouping / division /
    ordering and only repair what the event touched.
    """

    rates: Dict[int, float]
    tp_limit: int
    dp_degree: int
    grouping: GroupingResult
    #: Ordered groups per pipeline (the winning orchestration, including
    #: groups that were later assigned zero layers).
    pipelines_groups: Sequence[Sequence[TPGroup]]
    candidate: PlanCandidate
    micro_batch_size: int = 0
    estimated_step_time: float = math.inf
    #: Groupings for *every* candidate TP limit (not just the winner's);
    #: the repair engine delta-regroups these to bound-prune the other
    #: (tp, dp) candidates against the repaired incumbent.
    groupings: Dict[int, GroupingResult] = field(default_factory=dict)


@dataclass
class PlanningResult:
    """Output of one planner invocation."""

    plan: Optional[ParallelizationPlan]
    estimated_step_time: float
    breakdown: PlanningTimeBreakdown
    candidates: List[CandidateRecord] = field(default_factory=list)
    feasible: bool = True
    #: Repair context of the winning candidate (None when infeasible);
    #: consumed by :meth:`MalleusPlanner.plan_incremental`.
    context: Optional[PlanContext] = None
    #: Estimated transition cost of the winner from the previous plan
    #: (populated only by transition-aware sweeps).
    transition: Optional[TransitionEstimate] = None
    #: What the sweep engine did (backend, workers, evaluated/pruned
    #: counts, warm-cache hits); see :class:`repro.core.sweep.SweepStats`.
    sweep_stats: Dict[str, object] = field(default_factory=dict)

    def best_candidate(self) -> Optional[CandidateRecord]:
        """The winning candidate record, if any."""
        feasible = [c for c in self.candidates if c.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda c: c.estimated_step_time)


class MalleusPlanner:
    """Deduces parallelization plans from straggling rates.

    Parameters
    ----------
    task:
        The training workload (model + global batch size).
    cluster:
        The cluster topology.
    cost_model:
        Optional pre-built cost model (a default one is created otherwise).
    tp_candidates:
        Candidate maximum TP degrees (the paper uses ``{1, 2, 4, 8}``).
    dp_candidates:
        Candidate DP degrees; when ``None`` powers of two up to the number
        of nodes are tried (the paper keeps DP fixed across re-planning, so
        re-planning calls normally pass an explicit ``dp``).
    enable_pruning:
        Bound-based candidate pruning and bound-ordered evaluation (see the
        module docstring).  Sound — the winning plan is identical either
        way; disable only for equivalence testing / benchmarking.
    legacy_kernels:
        Use the pre-overhaul division kernels and materialize a plan for
        every improving lower-level candidate (the hot-path benchmark's
        "before" configuration).
    kernels:
        Solver-kernel backend — ``"python"`` (the reference scalar
        kernels), ``"numpy"`` (vectorized division/min-max/grouping
        kernels, bit-identical plans) or ``"legacy"`` (the pre-overhaul
        division kernels).  ``None`` (the default) inherits the cost
        model's knob, so the backend is normally chosen once on
        :class:`~repro.core.costmodel.MalleusCostModel`.
    transition_config:
        Transition-aware planning knobs (:class:`TransitionConfig`); a
        disabled config — pure step-time planning, bit-identical to the
        transition-unaware planner — is used when omitted.
    sweep_config:
        Candidate-sweep engine knobs (:class:`~repro.core.sweep
        .SweepConfig`): execution backend (``serial``/``process``), worker
        count and the cross-event warm-start cache.  The default —
        ``SweepConfig()`` — is the off-switch: a serial sweep with the
        warm cache disabled, bit-identical to the pre-engine planner.
    """

    def __init__(
        self,
        task: TrainingTask,
        cluster: Cluster,
        cost_model: Optional[MalleusCostModel] = None,
        tp_candidates: Sequence[int] = (1, 2, 4, 8),
        dp_candidates: Optional[Sequence[int]] = None,
        straggler_threshold: float = 1.05,
        enable_splitting: bool = True,
        enable_pruning: bool = True,
        legacy_kernels: bool = False,
        kernels: Optional[str] = None,
        transition_config: Optional[TransitionConfig] = None,
        sweep_config: Optional[SweepConfig] = None,
    ):
        self.task = task
        self.cluster = cluster
        self.cost_model = cost_model or MalleusCostModel(task.model, cluster)
        self.tp_candidates = tuple(
            tp for tp in tp_candidates if tp <= cluster.gpus_per_node
        )
        self.dp_candidates = tuple(dp_candidates) if dp_candidates else None
        self.straggler_threshold = straggler_threshold
        self.enable_splitting = enable_splitting
        self.enable_pruning = enable_pruning
        self.legacy_kernels = legacy_kernels
        if kernels is None:
            kernels = getattr(self.cost_model, "kernels", "python")
        if kernels not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend: {kernels!r} "
                f"(expected one of {KERNEL_BACKENDS})"
            )
        if kernels == "numpy":
            require_numpy("kernels='numpy'")
        self.kernels = kernels
        self.transition_config = transition_config or TransitionConfig()
        self.sweep_config = sweep_config or SweepConfig()
        self.sweep_executor = SweepExecutor(self.sweep_config)
        self.solution_cache = SolutionCache()

    def close(self) -> None:
        """Release the sweep executor's worker pool (serial: no-op)."""
        self.sweep_executor.shutdown()

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Planner-level cache diagnostics.

        ``cost_model`` mirrors :meth:`MalleusCostModel.cache_stats`;
        ``sweep_solutions`` reports the cross-event warm-start
        :class:`~repro.core.sweep.SolutionCache` (size, hits, misses,
        stores, stale rejections, evictions, invalidations).
        """
        return {
            "cost_model": self.cost_model.cache_stats(),
            "sweep_solutions": self.solution_cache.stats(),
        }

    # ------------------------------------------------------------------
    #: Largest DP degree the planner enumerates when none is pinned.  Very
    #: large DP degrees force every pipeline to hold the whole model with a
    #: handful of GPUs and are never competitive for the paper's workloads.
    MAX_DEFAULT_DP = 8

    def _default_dp_candidates(self, num_groups: int) -> List[int]:
        """Powers of two that could serve as the DP degree."""
        candidates = []
        dp = 1
        while dp <= min(num_groups, self.MAX_DEFAULT_DP):
            candidates.append(dp)
            dp *= 2
        return candidates

    def plan(
        self,
        rates: Dict[int, float],
        dp: Optional[int] = None,
        micro_batch_candidates: Optional[Sequence[int]] = None,
        previous: Optional[PlanContext] = None,
    ) -> PlanningResult:
        """Deduce the best parallelization plan for the given rates.

        ``dp`` pins the DP degree (used during re-planning to keep the
        number of model replicas unchanged, footnote 2 of the paper).
        ``previous`` is the incumbent plan's context; when transition-aware
        planning is enabled (:class:`TransitionConfig`) candidates are
        additionally scored by their estimated migration cost from it.
        With transitions disabled (the default) ``previous`` is ignored and
        the sweep is bit-identical to the transition-unaware planner.
        """
        # Pin the rate map for the whole episode: thousands of kernel
        # calls below share this one frozen mapping, so the cost model's
        # RateArray can skip the per-call dict re-read (see pin_rates).
        pin = getattr(self.cost_model, "pin_rates", None)
        release = pin(rates) if pin is not None else None
        try:
            return self._plan_impl(rates, dp, micro_batch_candidates,
                                   previous)
        finally:
            if release is not None:
                release()

    def _plan_impl(
        self,
        rates: Dict[int, float],
        dp: Optional[int],
        micro_batch_candidates: Optional[Sequence[int]],
        previous: Optional[PlanContext],
    ) -> PlanningResult:
        # Self-heal after in-place calibration edits (the caches are keyed
        # on arguments only); see MalleusCostModel.refresh_if_config_changed.
        refresh = getattr(self.cost_model, "refresh_if_config_changed", None)
        if refresh is not None:
            refresh()

        # Reset the process-local kernel accumulator so per-kernel times
        # attribute to *this* plan (see repro.core.kernel_timing); the
        # sweep drains it per evaluation, and the tail drain below sweeps
        # up whatever ran outside the sweep (phase-1 grouping).
        kernel_timing.drain()
        breakdown = PlanningTimeBreakdown()
        all_gpu_ids = self.cluster.gpu_ids()
        prune = self.enable_pruning
        scorer = self._transition_scorer(previous)

        if micro_batch_candidates is None:
            b_candidates: Sequence[int] = sorted_divisors(
                self.task.global_batch_size
            )
        else:
            b_candidates = list(micro_batch_candidates)

        # Phase 1: group the GPUs for every candidate TP limit, then bound
        # every (grouping, dp) candidate so the sweep can evaluate the most
        # promising ones first and prune the rest against the incumbent.
        # Bound computation is solver work that screens division candidates,
        # so it is accounted under the division phase, keeping the Table-5
        # "grouping" column a faithful measure of the grouping algorithms.
        entries: List[SweepEntry] = []
        groupings: Dict[int, GroupingResult] = {}
        index = 0
        num_layers = self.task.model.num_layers
        for tp_limit in self.tp_candidates:
            start = time.perf_counter()
            grouping = group_gpus(
                self.cluster, rates, self.cost_model, tp_limit,
                micro_batch_size=self.task.micro_batch_size,
                straggler_threshold=self.straggler_threshold,
                enable_splitting=self.enable_splitting,
            )
            groupings[tp_limit] = grouping
            breakdown.grouping += time.perf_counter() - start
            if dp is not None:
                dp_list: Iterable[int] = [dp]
            elif self.dp_candidates is not None:
                dp_list = self.dp_candidates
            else:
                dp_list = self._default_dp_candidates(grouping.num_groups())
            for dp_degree in dp_list:
                if prune:
                    start = time.perf_counter()
                    bound = candidate_bound(
                        grouping, rates, self.cost_model, num_layers,
                        self.task.global_batch_size, b_candidates, dp_degree,
                    )
                    breakdown.division += time.perf_counter() - start
                else:
                    bound = 0.0
                entries.append(SweepEntry(bound, index, grouping, dp_degree))
                index += 1
        if prune:
            entries.sort(key=lambda entry: (entry.bound, entry.entry_index))

        # Phase 2: the candidate sweep (repro.core.sweep).  Ties in step
        # time (within tolerance) resolve to the smallest enumeration
        # index, which reproduces the seed's tp-major/dp-minor sweep winner
        # exactly.  A transition-aware sweep relaxes the pruning cutoff to
        # the epsilon window and re-ranks the finalists afterwards
        # (select_transition_winner); pruning stays sound because a
        # candidate whose *step-time* bound exceeds the window can neither
        # improve the best pure step time nor enter the window.
        ctx = EvalContext(
            task=self.task,
            cost_model=self.cost_model,
            rates=rates,
            micro_batch_candidates=tuple(b_candidates),
            all_gpu_ids=tuple(all_gpu_ids),
            enable_pruning=prune,
            legacy_kernels=self.legacy_kernels,
            kernels=self.kernels,
        )
        outcome = run_sweep(
            entries, ctx, self.sweep_executor,
            breakdown=breakdown, scorer=scorer, seed=None,
            tie_break="entry_index", prune=prune,
            cache=self.solution_cache,
        )
        best_time = outcome.step_time

        # Phase 3: materialize exactly one plan — the overall winner.
        best_plan: Optional[ParallelizationPlan] = None
        if outcome.feasible:
            start = time.perf_counter()
            best_plan = outcome.plan
            if best_plan is None:
                best_plan = outcome.candidate.materialize(
                    rates, self.cost_model, all_gpu_ids
                )
            breakdown.assignment += time.perf_counter() - start

        feasible = best_plan is not None
        context: Optional[PlanContext] = None
        if best_plan is not None:
            best_plan.estimated_step_time = best_time
            context = PlanContext(
                rates=dict(rates),
                tp_limit=outcome.tp_limit,
                dp_degree=outcome.dp_degree,
                grouping=outcome.grouping,
                pipelines_groups=outcome.candidate.pipelines_groups,
                candidate=outcome.candidate,
                micro_batch_size=outcome.micro_batch_size,
                estimated_step_time=best_time,
                groupings=groupings,
            )
        breakdown.merge_kernels(kernel_timing.drain())
        return PlanningResult(
            plan=best_plan,
            estimated_step_time=best_time,
            breakdown=breakdown,
            candidates=outcome.records,
            feasible=feasible,
            context=context,
            transition=outcome.transition,
            sweep_stats=outcome.stats.as_dict(),
        )

    def plan_incremental(
        self,
        previous: PlanContext,
        rates: Dict[int, float],
        dp: Optional[int] = None,
        config=None,
    ):
        """Repair the previous plan for a new rate map instead of re-solving.

        Classifies the delta between ``previous.rates`` and ``rates``
        against the incumbent plan (``minor_rate_shift`` / ``group_change``
        / ``membership_change``) and dispatches to the cheapest sound repair
        tier; ``membership_change`` (and any repair the engine cannot apply)
        falls back to the full :meth:`plan`.  ``dp`` pins the DP degree of
        the candidate sweep and the fallback, exactly as in :meth:`plan`.
        Returns a :class:`repro.runtime.replan.RepairOutcome` whose
        ``result`` is a normal :class:`PlanningResult` (with a fresh
        ``context`` for the next event).  ``config`` is an optional
        :class:`repro.runtime.replan.ReplanConfig`.
        """
        # Lazy import: the engine lives in the runtime layer, which imports
        # this module; importing it at call time avoids the cycle.
        from ..runtime.replan import ReplanEngine

        return ReplanEngine(self, config).repair(previous, rates, dp=dp)

    def _transition_scorer(self, previous: Optional[PlanContext]):
        """Build the transition scorer for one sweep, or ``None``.

        Transition-aware scoring needs both the knob (``transition_config
        .enabled``) and an incumbent layout to migrate from; without either
        the sweep runs the pure step-time code path unchanged.
        """
        config = self.transition_config
        if config is None or not config.enabled:
            return None
        if previous is None or previous.candidate is None:
            return None
        return _TransitionScorer(self, previous)

class _TransitionScorer:
    """Scores sweep candidates against the incumbent layout.

    Bundles everything the transition-aware sweep needs — the incumbent's
    :data:`~repro.parallel.migration.PlanLayout`, the per-layer byte
    constants, and the config — and memoizes the per-grouping migration
    floor (:func:`~repro.parallel.migration.transition_time_lower_bound`,
    amortized over the horizon) by TP limit.
    """

    def __init__(self, planner: "MalleusPlanner", previous: PlanContext):
        self.config = planner.transition_config
        self.cluster = planner.cluster
        self.old_layout: PlanLayout = layout_from_candidate(previous.candidate)
        model = planner.task.model
        self.layer_param_bytes = model.layer_param_bytes()
        self.layer_optimizer_bytes = (
            model.params_per_layer()
            * planner.cost_model.config.optimizer_bytes_per_param
        )
        self.num_layers = model.num_layers
        self._floors: Dict[int, float] = {}
        # Overlapped migration hides the drain under up to ``overlap_steps``
        # steps of training at the old plan; the incumbent's estimated step
        # time is the analytic stand-in for that old-plan step time.
        self.hideable_seconds = 0.0
        if self.config.overlap and \
                math.isfinite(previous.estimated_step_time):
            self.hideable_seconds = max(
                0.0, self.config.overlap_steps * previous.estimated_step_time
            )

    def estimate(self, candidate: PlanCandidate) -> TransitionEstimate:
        """Analytic migration estimate for one unmaterialized candidate."""
        return estimate_transition_cost(
            self.old_layout, layout_from_candidate(candidate), self.cluster,
            self.layer_param_bytes, self.layer_optimizer_bytes,
            layer_pack=self.config.layer_pack,
        )

    def charge(self, estimate: TransitionEstimate) -> float:
        """Migration seconds the objective charges for one candidate.

        The full drain time without overlap; the exposed tail beyond the
        hideable window with it.  This is what enters the amortized score
        and the minimal-disruption ranking.
        """
        return estimate.exposed_seconds(self.hideable_seconds)

    def floor(self, grouping: GroupingResult) -> float:
        """Amortized provable migration-time floor of one grouping.

        With overlap the hideable window is subtracted before amortizing —
        the floor stays a sound bound on the *charged* seconds.
        """
        key = grouping.tp_limit
        cached = self._floors.get(key)
        if cached is None:
            gpus = [g for group in grouping.groups for g in group.gpu_ids]
            bound = transition_time_lower_bound(
                self.old_layout, gpus, self.cluster,
                self.layer_param_bytes, self.num_layers,
            )
            cached = max(0.0, bound - self.hideable_seconds) \
                / self.config.horizon_steps
            self._floors[key] = cached
        return cached


def default_planner(task: TrainingTask, cluster: Cluster,
                    config: Optional[CostModelConfig] = None) -> MalleusPlanner:
    """Convenience constructor with a default cost model."""
    cost_model = MalleusCostModel(task.model, cluster, config)
    return MalleusPlanner(task=task, cluster=cluster, cost_model=cost_model)
