"""The Malleus parallelization planner (§4).

The planner turns the profiler's per-GPU straggling rates into a complete
parallelization plan by solving the bi-level optimization problem:

* **upper level** — for each candidate maximum TP degree in ``{1, 2, 4, 8}``
  the GPUs are grouped (Theorem 1 + splitting guided by Theorem 2) and the
  groups are orchestrated into ``DP`` pipelines (division MINLP Eq. 4,
  ordering by Theorem 3);
* **lower level** — for each candidate orchestration the layers and the
  training data are assigned by the ILPs of Eq. 2 and Eq. 3.

The best candidate (smallest estimated step time) wins.  The planner also
records a per-phase time breakdown, which reproduces the scalability study
of Appendix A.2 (Table 5).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster
from ..models.spec import TrainingTask
from ..parallel.plan import ParallelizationPlan, TPGroup
from .assignment import LowerLevelResult, assign_layers, solve_lower_level
from .costmodel import CostModelConfig, MalleusCostModel
from .grouping import GroupingResult, group_gpus
from .orchestration import divide_pipelines, order_pipeline_groups


@dataclass
class PlanningTimeBreakdown:
    """Wall-clock seconds spent in each planning phase (Table 5)."""

    grouping: float = 0.0
    division: float = 0.0
    ordering: float = 0.0
    assignment: float = 0.0

    @property
    def total(self) -> float:
        """Total planning time."""
        return self.grouping + self.division + self.ordering + self.assignment

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view used by the experiment harness."""
        return {
            "grouping": self.grouping,
            "division": self.division,
            "ordering": self.ordering,
            "assignment": self.assignment,
            "total": self.total,
        }


@dataclass
class CandidateRecord:
    """Diagnostic record of one (tp_limit, dp) candidate."""

    tp_limit: int
    dp_degree: int
    estimated_step_time: float
    feasible: bool
    num_groups: int = 0
    isolated_gpus: List[int] = field(default_factory=list)


@dataclass
class PlanningResult:
    """Output of one planner invocation."""

    plan: Optional[ParallelizationPlan]
    estimated_step_time: float
    breakdown: PlanningTimeBreakdown
    candidates: List[CandidateRecord] = field(default_factory=list)
    feasible: bool = True

    def best_candidate(self) -> Optional[CandidateRecord]:
        """The winning candidate record, if any."""
        feasible = [c for c in self.candidates if c.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda c: c.estimated_step_time)


class MalleusPlanner:
    """Deduces parallelization plans from straggling rates.

    Parameters
    ----------
    task:
        The training workload (model + global batch size).
    cluster:
        The cluster topology.
    cost_model:
        Optional pre-built cost model (a default one is created otherwise).
    tp_candidates:
        Candidate maximum TP degrees (the paper uses ``{1, 2, 4, 8}``).
    dp_candidates:
        Candidate DP degrees; when ``None`` powers of two up to the number
        of nodes are tried (the paper keeps DP fixed across re-planning, so
        re-planning calls normally pass an explicit ``dp``).
    """

    def __init__(
        self,
        task: TrainingTask,
        cluster: Cluster,
        cost_model: Optional[MalleusCostModel] = None,
        tp_candidates: Sequence[int] = (1, 2, 4, 8),
        dp_candidates: Optional[Sequence[int]] = None,
        straggler_threshold: float = 1.05,
        enable_splitting: bool = True,
    ):
        self.task = task
        self.cluster = cluster
        self.cost_model = cost_model or MalleusCostModel(task.model, cluster)
        self.tp_candidates = tuple(
            tp for tp in tp_candidates if tp <= cluster.gpus_per_node
        )
        self.dp_candidates = tuple(dp_candidates) if dp_candidates else None
        self.straggler_threshold = straggler_threshold
        self.enable_splitting = enable_splitting

    # ------------------------------------------------------------------
    #: Largest DP degree the planner enumerates when none is pinned.  Very
    #: large DP degrees force every pipeline to hold the whole model with a
    #: handful of GPUs and are never competitive for the paper's workloads.
    MAX_DEFAULT_DP = 8

    def _default_dp_candidates(self, num_groups: int) -> List[int]:
        """Powers of two that could serve as the DP degree."""
        candidates = []
        dp = 1
        while dp <= min(num_groups, self.MAX_DEFAULT_DP):
            candidates.append(dp)
            dp *= 2
        return candidates

    def plan(
        self,
        rates: Dict[int, float],
        dp: Optional[int] = None,
        micro_batch_candidates: Optional[Sequence[int]] = None,
    ) -> PlanningResult:
        """Deduce the best parallelization plan for the given rates.

        ``dp`` pins the DP degree (used during re-planning to keep the
        number of model replicas unchanged, footnote 2 of the paper).
        """
        breakdown = PlanningTimeBreakdown()
        candidates: List[CandidateRecord] = []
        best_plan: Optional[ParallelizationPlan] = None
        best_time = math.inf
        model = self.task.model
        all_gpu_ids = self.cluster.gpu_ids()

        for tp_limit in self.tp_candidates:
            start = time.perf_counter()
            grouping = group_gpus(
                self.cluster, rates, self.cost_model, tp_limit,
                micro_batch_size=self.task.micro_batch_size,
                straggler_threshold=self.straggler_threshold,
                enable_splitting=self.enable_splitting,
            )
            breakdown.grouping += time.perf_counter() - start

            if dp is not None:
                dp_list: Iterable[int] = [dp]
            elif self.dp_candidates is not None:
                dp_list = self.dp_candidates
            else:
                dp_list = self._default_dp_candidates(grouping.num_groups())

            for dp_degree in dp_list:
                candidate = self._evaluate_candidate(
                    grouping, rates, dp_degree, breakdown,
                    micro_batch_candidates, all_gpu_ids,
                )
                candidates.append(candidate[0])
                result = candidate[1]
                if result is not None and result.feasible and \
                        result.estimated_step_time < best_time - 1e-12:
                    best_time = result.estimated_step_time
                    best_plan = result.plan

        feasible = best_plan is not None
        if best_plan is not None:
            best_plan.estimated_step_time = best_time
        return PlanningResult(
            plan=best_plan,
            estimated_step_time=best_time,
            breakdown=breakdown,
            candidates=candidates,
            feasible=feasible,
        )

    # ------------------------------------------------------------------
    def _evaluate_candidate(
        self,
        grouping: GroupingResult,
        rates: Dict[int, float],
        dp_degree: int,
        breakdown: PlanningTimeBreakdown,
        micro_batch_candidates: Optional[Sequence[int]],
        all_gpu_ids: Sequence[int],
    ) -> Tuple[CandidateRecord, Optional[LowerLevelResult]]:
        """Evaluate one (grouping, DP) candidate end to end."""
        task = self.task
        record = CandidateRecord(
            tp_limit=grouping.tp_limit,
            dp_degree=dp_degree,
            estimated_step_time=math.inf,
            feasible=False,
            num_groups=grouping.num_groups(),
            isolated_gpus=list(grouping.isolated_gpus),
        )
        if grouping.num_groups() < dp_degree:
            return record, None

        best_result: Optional[LowerLevelResult] = None
        total_micro_batches = task.global_batch_size // task.micro_batch_size
        for min_groups in range(1, 5):
            if grouping.num_groups() < dp_degree * min_groups:
                break
            start = time.perf_counter()
            division = divide_pipelines(
                grouping.groups, rates, self.cost_model, dp_degree,
                total_micro_batches, task.micro_batch_size,
                min_groups_per_pipeline=min_groups,
            )
            breakdown.division += time.perf_counter() - start
            if not division.feasible:
                continue

            start = time.perf_counter()
            ordered_pipelines = [
                order_pipeline_groups(
                    pipeline, rates, self.cost_model, task.model.num_layers,
                    task.micro_batch_size, dp_degree,
                )
                for pipeline in division.pipelines
            ]
            breakdown.ordering += time.perf_counter() - start

            start = time.perf_counter()
            result = solve_lower_level(
                ordered_pipelines, rates, self.cost_model,
                task.model.num_layers, task.global_batch_size,
                micro_batch_candidates, all_gpu_ids,
            )
            breakdown.assignment += time.perf_counter() - start
            if result.feasible:
                best_result = result
                break

        if best_result is None or not best_result.feasible:
            return record, None
        record.feasible = True
        record.estimated_step_time = best_result.estimated_step_time
        return record, best_result


def default_planner(task: TrainingTask, cluster: Cluster,
                    config: Optional[CostModelConfig] = None) -> MalleusPlanner:
    """Convenience constructor with a default cost model."""
    cost_model = MalleusCostModel(task.model, cluster, config)
    return MalleusPlanner(task=task, cluster=cluster, cost_model=cost_model)
