"""The (tp, dp) candidate sweep: stateless evaluation core + executors.

Until PR 5 the planner's candidate sweep lived in two divergent copies —
:meth:`repro.core.planner.MalleusPlanner.plan` (phase 2) and
:meth:`repro.runtime.replan.ReplanEngine._solve_repair` — each interleaving
bound pruning, candidate evaluation, transition scoring and winner
selection with its caller's bookkeeping.  This module gives the sweep one
owner:

* :func:`evaluate_candidate` — a **stateless, picklable** evaluation core:
  a :class:`CandidateSpec` (grouping, DP degree, pruning incumbent,
  optional warm-start division) plus an :class:`EvalContext` (task, cost
  model, rates) in, a :class:`CandidateResult` (solved
  :class:`~repro.core.assignment.PlanCandidate`, per-phase timings) out.
  No planner state is read or written, so the same function runs
  in-process or in a worker process.
* :class:`SweepExecutor` — runs a batch of specs on the configured
  backend.  ``serial`` (the default) evaluates in-process; ``process``
  fans the specs out over a persistent worker pool (workers receive the
  task/cost-model context once, at pool creation, warm coefficient caches
  included) and reassembles the results **by entry index**, so the
  reduction — and therefore the winner — is identical regardless of the
  worker count or the completion order.
* :func:`run_sweep` — the sweep loop itself, shared by the planner and
  the replan engine: bound-ordered evaluation, sound pruning against the
  incumbent (with the transition-aware window and migration floor),
  finalist collection and the winner selection, including
  :func:`select_transition_winner` (previously duplicated across both
  callers).
* :class:`SolutionCache` — a cross-event warm-start cache keyed by
  ``(tp_limit, dp_degree)`` with a **partition fingerprint** guard: the
  winning division of every solved sweep candidate is remembered, and on
  the next event a candidate whose grouping is unchanged skips the
  expensive pipeline-division solve entirely — its kept division is
  re-ordered and the lower level re-solved, exactly the repair the replan
  engine has always applied to the incumbent pair, now available to
  *every* candidate.  An **infeasibility memo** stratified on
  ``(num_groups, dp)`` and guarded by the grouping's rate-independent
  *capacity fingerprint* additionally handles candidates whose last
  full-depth solve hit the memory wall: an unchanged capacity
  structure skips the candidate outright, a changed one (group change,
  recovery) re-checks it freshly under the current rates but without the
  min-groups retry loop the memo proved futile; at 64-GPU scale — where
  the bounds cannot prune — those retried infeasible candidates dominate
  the sweep's cost.

Determinism and the off-switch guarantee
----------------------------------------
``SweepConfig(backend="serial", warm_cache=False)`` — the default — runs
the historical sweep verbatim: candidates are evaluated one by one in
bound order with the incumbent tightening dynamically, and every plan and
repair is bit-identical to the pre-PR-5 planner.

Any other configuration switches the sweep to **static rounds** so that
the set of exactly-solved candidates is a deterministic function of the
inputs alone (never of worker count, completion order, or chunking):

1. *warm round* — every cache hit is evaluated (in parallel) against the
   starting incumbent;
2. *pilot round* — when no incumbent exists yet (a cold ``plan()``), the
   lowest-bound candidate is evaluated alone to establish one;
3. *cold round* — the remaining candidates are bound-pruned against the
   (now tight) incumbent and the survivors are evaluated in parallel.

Between rounds the incumbent is recomputed from the folded results, which
depend only on the specs.  Bound pruning is provably sound (a pruned
candidate's true step time strictly exceeds the incumbent), so the winner
is identical across backends and worker counts for a fixed cache state;
with the warm cache on, the cache itself evolves deterministically for
the same reason, so whole *event sequences* select bit-identical winners
for every ``workers`` setting.

Warm-start quality contract
---------------------------
A warm hit re-uses the candidate's previous division for the new rates
(the division may be slightly stale — the same drift the replan engine's
``rebalance`` tier has always accepted).  Three guards bound that drift:

* **contender re-solve** — after the rounds, every warm representative
  whose step time lands within ``resolve_margin`` of the best step is
  re-solved cold before the winner is picked, so a stale division can
  only hide a better candidate when the staleness alone exceeds the
  margin (on the generated-trace matrix, warm repairs match cold full
  plans exactly);
* **age expiry** — ``max_warm_age`` consecutive warm serves (or
  infeasibility skips) force a cold re-solve that re-anchors the entry;
* a warm solve that comes back memory-infeasible falls back to the cold
  path inside the same evaluation, and any grouping change flips the
  fingerprint so the candidate is re-solved cold.

Cache entries are additionally invalidated by the cost model's config
fingerprint (the same self-healing ``plan()`` uses) and evicted
wholesale on membership changes — a cached division can never be served
for a departed GPU (the fingerprint of a grouping that lost a GPU cannot
match, and lookups double-check every cached GPU id against the current
rate map).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compat import np
from ..models.spec import TrainingTask
from ..parallel.plan import ParallelizationPlan, TPGroup
from . import kernel_timing
from .assignment import (
    BATCH_BOUND_EPSILON,
    PlanCandidate,
    candidate_step_time_bound,
    candidate_step_time_bound_batch,
    solve_lower_level,
)
from .costmodel import MalleusCostModel
from .grouping import GroupingResult
from .orchestration import divide_pipelines, order_pipeline_groups


@dataclass
class PlanningTimeBreakdown:
    """Wall-clock seconds spent in each planning phase (Table 5).

    On the repair path the same four phases absorb the engine's extra
    work — event classification and delta re-grouping under ``grouping``,
    the partial division repair under ``division`` — so ``total`` is
    comparable between incremental repairs and full plans.  Under the
    process backend the per-phase numbers are summed worker CPU seconds
    (they can exceed the wall clock).
    """

    grouping: float = 0.0
    division: float = 0.0
    ordering: float = 0.0
    assignment: float = 0.0
    #: Wall seconds spent inside the three solver kernels (``division``,
    #: ``minmax``, ``grouping`` — see :mod:`repro.core.kernel_timing`).
    #: Orthogonal to the four phase buckets: the phases partition the
    #: planner's wall clock, the kernels attribute the solver fraction of
    #: it (``kernels["minmax"]`` time is *inside* ``assignment`` and
    #: ``division``).  Not included in :attr:`total`.
    kernels: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total planning time."""
        return self.grouping + self.division + self.ordering + self.assignment

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view used by the experiment harness."""
        return {
            "grouping": self.grouping,
            "division": self.division,
            "ordering": self.ordering,
            "assignment": self.assignment,
            "total": self.total,
            "kernels": dict(self.kernels),
        }

    def merge(self, other: "PlanningTimeBreakdown") -> None:
        """Accumulate another breakdown's phases into this one."""
        self.grouping += other.grouping
        self.division += other.division
        self.ordering += other.ordering
        self.assignment += other.assignment
        self.merge_kernels(other.kernels)

    def merge_kernels(self, kernels: Dict[str, float]) -> None:
        """Accumulate per-kernel solver seconds into :attr:`kernels`."""
        for kernel, seconds in kernels.items():
            self.kernels[kernel] = self.kernels.get(kernel, 0.0) + seconds


@dataclass
class CandidateRecord:
    """Diagnostic record of one (tp_limit, dp) candidate.

    ``pruned`` marks candidates the planner skipped (entirely or partially)
    because their lower bound could not beat the incumbent — they are
    reported infeasible but were never solved exactly.  ``lower_bound`` is
    the bound used for ordering and pruning (0 when pruning is disabled).
    """

    tp_limit: int
    dp_degree: int
    estimated_step_time: float
    feasible: bool
    num_groups: int = 0
    isolated_gpus: List[int] = field(default_factory=list)
    pruned: bool = False
    lower_bound: float = 0.0
    #: Estimated migration time from the previous plan (transition-aware
    #: sweeps only; 0 otherwise).
    transition_seconds: float = 0.0


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class SweepConfig:
    """Knobs of the candidate-sweep engine.

    ``backend="serial"`` with ``warm_cache=False`` (the defaults) is the
    off-switch: the sweep runs the historical dynamic loop and every plan
    and repair is bit-identical to the pre-PR-5 planner.  ``"process"``
    evaluates candidates on a persistent worker pool; ``workers=0`` picks
    ``min(4, cpu_count)``.  ``warm_cache=True`` enables the cross-event
    :class:`SolutionCache` (see the module docstring for the
    determinism/quality contract).
    """

    backend: str = "serial"
    workers: int = 0
    warm_cache: bool = False
    #: Worker-pool fault budget: how many pool crashes (a worker died
    #: mid-batch, the pool broke) the executor absorbs by rebuilding the
    #: pool and retrying the batch before it degrades *permanently* to
    #: serial evaluation.  Every batch always produces results — a pool
    #: fault costs latency, never a plan.
    pool_retries: int = 1
    #: Seconds to wait for one batch before declaring the pool hung and
    #: treating it like a crash (0 disables the watchdog).  A hung worker
    #: cannot be joined, so the teardown kills the pool without waiting.
    batch_timeout: float = 0.0
    #: Consecutive warm hits a cache entry may serve before its candidate
    #: is re-solved cold (and the entry refreshed).  Bounds the division
    #: drift a repeatedly-warm-started candidate can accumulate; the age
    #: evolves deterministically with the event sequence, so the re-solve
    #: schedule — like everything else — is worker-count independent.
    max_warm_age: int = 4
    #: Contender band of the warm sweep: a warm representative whose step
    #: time lands within ``(1 + resolve_margin)`` of the best step seen is
    #: re-solved cold before the winner is picked, so a stale division can
    #: only hide a better candidate when the staleness alone exceeds the
    #: margin.  0 disables the pass (pure warm representatives).
    resolve_margin: float = 0.10
    #: Publish the per-batch rate map once through a
    #: ``multiprocessing.shared_memory`` block ([n int64 GPU ids |
    #: n float64 rates], both in the dict's insertion order) instead of
    #: re-pickling the full dict into every worker batch — and, since
    #: PR 10, the batch's grouping state too: a second block carries
    #: each distinct grouping's per-group member-id tables (the
    #: partition fingerprint), isolated ids, harmonic throughput and a
    #: crc32 integrity fingerprint per slot, while the specs themselves
    #: ship as slot references (warm pipelines as group indices).
    #: Process backend with numpy only (silently ignored otherwise);
    #: byte-identical results — workers rebuild the exact same objects,
    #: insertion order and within-batch identity included, from the
    #: blocks.
    shared_rates: bool = False
    #: Collapse the warm and cold rounds of the static sweep into one
    #: combined submission with per-spec granularity, so free workers pull
    #: cold candidates as soon as warm results drain instead of idling at
    #: the warm barrier.  Cold candidates are then pruned against the
    #: *starting* incumbent rather than the post-warm one — pruning stays
    #: sound and the fold stays entry-ordered, so the winner matches the
    #: barrier schedule except in sub-1e-12 step-time tie corners (more
    #: candidates are solved exactly, never fewer).  Process backend only.
    overlap: bool = False

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "process"):
            raise ValueError(f"unknown sweep backend: {self.backend!r}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.max_warm_age < 1:
            raise ValueError("max_warm_age must be >= 1")
        if self.resolve_margin < 0:
            raise ValueError("resolve_margin must be >= 0")
        if self.pool_retries < 0:
            raise ValueError("pool_retries must be >= 0")
        if self.batch_timeout < 0:
            raise ValueError("batch_timeout must be >= 0")

    def resolved_workers(self) -> int:
        """The worker count a process pool would use."""
        if self.workers:
            return self.workers
        return max(1, min(4, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# Stateless evaluation core
# ----------------------------------------------------------------------
@dataclass
class EvalContext:
    """Everything one sweep's evaluations share (picklable).

    The context is built once per sweep by the caller; the process
    backend ships the sweep-invariant parts (task, cost model, GPU ids,
    planner knobs) to the workers at pool creation — warm coefficient
    caches included — and only the per-sweep parts (rates, micro-batch
    candidates, config fingerprint) with each batch of specs.
    """

    task: TrainingTask
    cost_model: MalleusCostModel
    rates: Dict[int, float]
    micro_batch_candidates: Tuple[int, ...]
    all_gpu_ids: Tuple[int, ...]
    enable_pruning: bool = True
    legacy_kernels: bool = False
    #: Solver-kernel backend override (see ``MalleusCostModel.kernels``);
    #: ``None`` inherits the cost model's knob.  Threaded into the
    #: division solve and carried by the worker pool token so a knob
    #: change rebuilds the pool.
    kernels: Optional[str] = None


@dataclass
class CandidateSpec:
    """One (grouping, dp) evaluation work unit (picklable).

    ``incumbent`` is the sweep cutoff threaded into the lower level's
    micro-batch pruning; ``warm_pipelines`` (per-pipeline group tuples)
    short-circuits the division solve with a previous event's division;
    ``division_seed`` optionally seeds the division solver's fallback
    local search when the cold path does run (ignored by the solver when
    structurally incompatible).
    """

    entry_index: int
    dp_degree: int
    grouping: GroupingResult
    incumbent: float = math.inf
    warm_pipelines: Optional[Tuple[Tuple[TPGroup, ...], ...]] = None
    division_seed: Optional[Tuple[Tuple[float, ...], ...]] = None
    #: Cap the cold path's min-groups-per-pipeline retry loop at its first
    #: attempt.  Set when the infeasibility memo remembers that deeper
    #: divisions did not cure this candidate's memory infeasibility — the
    #: candidate is still *freshly* re-checked under the current rates, so
    #: a feasibility flip (e.g. a recovery event) is always discovered.
    shallow: bool = False


@dataclass
class CandidateTiming:
    """Per-phase solver seconds of one evaluation (worker-measured)."""

    division: float = 0.0
    ordering: float = 0.0
    assignment: float = 0.0
    #: Per-kernel solver seconds drained from the evaluating process's
    #: :mod:`repro.core.kernel_timing` accumulator — this is how kernel
    #: attribution crosses the process boundary back to the parent.
    kernels: Dict[str, float] = field(default_factory=dict)


@dataclass
class CandidateResult:
    """Outcome of one candidate evaluation (picklable).

    ``pruned`` means the evaluation proved the candidate cannot beat the
    ``incumbent`` it was given (no feasibility statement).  ``plan`` is
    populated only under ``legacy_kernels`` (eager materialization).
    """

    entry_index: int
    tp_limit: int
    dp_degree: int
    feasible: bool
    estimated_step_time: float = math.inf
    micro_batch_size: int = 0
    candidate: Optional[PlanCandidate] = None
    plan: Optional[ParallelizationPlan] = None
    num_groups: int = 0
    isolated_gpus: List[int] = field(default_factory=list)
    pruned: bool = False
    warm_used: bool = False
    #: The evaluation ran in shallow mode (min-groups retries capped by
    #: the infeasibility memo); shallow confirmations never re-anchor the
    #: memo, so its age keeps advancing toward the full-depth re-check.
    shallow: bool = False
    #: An infeasible result with *memory* evidence (some micro-batch size
    #: exceeded the per-stage capacity), as opposed to purely structural
    #: or division infeasibility.  Only this kind enters the cache's
    #: infeasibility memo: the capacity coefficients are rate-independent,
    #: so the evidence mostly carries across events — "mostly" because the
    #: incumbent may have pruned other micro-batch sizes and a different
    #: rate map can steer the division solver elsewhere, which is why the
    #: memo is guarded by the group-count check and the age expiry rather
    #: than treated as a proof.
    memory_limited: bool = False
    #: Winning division's per-pipeline slow-group rates (cold solves only;
    #: cached as the next event's division warm start).
    slow_groups: Optional[Tuple[Tuple[float, ...], ...]] = None
    timing: CandidateTiming = field(default_factory=CandidateTiming)


#: Reject band of the batched bound screen, as a multiple of
#: :data:`~repro.core.assignment.BATCH_BOUND_EPSILON`.  A micro-batch
#: candidate whose relaxed bound exceeds the relaxed minimum by more than
#: ``(1 + band)`` provably cannot attain the exact minimum — with
#: ``band = 4 * eps``, ``(1 + band)(1 - eps) >= 1 + 2*eps`` while the
#: relaxed-vs-exact drift is below ``eps`` on both sides — so only the
#: in-band candidates pay the exact sequential bound.
_BATCH_SCREEN_BAND = 4.0 * BATCH_BOUND_EPSILON


def candidate_bound(grouping: GroupingResult, rates: Dict[int, float],
                    cost_model: MalleusCostModel, num_layers: int,
                    global_batch_size: int, b_candidates: Sequence[int],
                    dp_degree: Optional[int] = None,
                    cutoff: Optional[float] = None) -> float:
    """Lower bound on the step time any division of ``grouping`` allows.

    :func:`~repro.core.assignment.candidate_step_time_bound` (total work
    over total harmonic speed, sharpened by the dp-aware warm-up term when
    ``dp_degree`` is given) applied to the grouping's full group list — a
    superset of any pipeline division's groups — minimised over the
    micro-batch candidates, since the lower level picks the best ``b``.

    On the numpy backend a relaxed-by-epsilon batched screen
    (:func:`~repro.core.assignment.candidate_step_time_bound_batch`)
    evaluates every micro-batch candidate in one vectorized pass first and
    only the candidates within the epsilon band of the screened minimum
    pay the exact sequential bound — the returned value is bit-identical
    to the plain loop (the screen provably never hides the exact argmin).

    With a finite ``cutoff`` (an incumbent step time the caller's sweep
    will prune against), a candidate whose *relaxed* minimum already
    clears the cutoff by more than the epsilon band skips the exact bound
    entirely and returns the relaxed value: it is a sound lower bound, and
    both it and the exact bound exceed the cutoff, so the sweep's
    pruning decision — and therefore every solved candidate and the final
    plan — is identical; only the pruned entry's recorded diagnostic bound
    differs (by less than one part in 10^9).
    """
    screened = candidate_step_time_bound_batch(
        [grouping.groups], rates, cost_model, num_layers,
        global_batch_size, b_candidates, dp_degree=dp_degree,
    )
    if screened is not None:
        screened_min = min(screened, default=math.inf)
        if math.isfinite(screened_min):
            if cutoff is not None and \
                    screened_min > cutoff * (1.0 + _BATCH_SCREEN_BAND) + 1e-9:
                # Every micro-batch size's exact bound is at least its
                # relaxed screen value, hence above the cutoff: the sweep
                # prunes this candidate either way.
                return screened_min
            limit = screened_min * (1.0 + _BATCH_SCREEN_BAND)
            survivors: Sequence[int] = [
                b for b, value in zip(b_candidates, screened)
                if value <= limit
            ]
        else:
            survivors = b_candidates
    else:
        survivors = b_candidates
    bound = math.inf
    for b in survivors:
        value = candidate_step_time_bound(
            [grouping.groups], rates, cost_model, num_layers,
            global_batch_size, b, dp_degree=dp_degree,
        )
        if value < bound:
            bound = value
    return bound


def evaluate_candidate(ctx: EvalContext,
                       spec: CandidateSpec) -> CandidateResult:
    """Evaluate one (grouping, DP) candidate end to end, statelessly.

    With ``spec.warm_pipelines`` the previous division is re-ordered and
    its lower level re-solved (the per-candidate analogue of the replan
    engine's ``rebalance`` tier); an infeasible warm solve falls back to
    the cold path in the same call.  Cold evaluation reproduces the
    historical ``MalleusPlanner._evaluate_candidate`` exactly.
    """
    if spec.warm_pipelines is not None:
        result = _evaluate_warm(ctx, spec)
        if result is None:
            # Warm solve memory-infeasible: the stale division is no longer
            # a valid representative; re-solve the candidate cold
            # (deterministic, so the solve set stays worker-count
            # independent).
            result = _evaluate_cold(ctx, spec)
    else:
        result = _evaluate_cold(ctx, spec)
    # Ship the per-kernel solver seconds this evaluation accumulated back
    # to the parent (the fold merges them into the planning breakdown).
    # The drain may also sweep up time charged since the previous drain in
    # this process — the caller's enclosing drain discipline (plan()
    # drains before the sweep) keeps the aggregate exact.
    result.timing.kernels = kernel_timing.drain()
    return result


def _base_result(spec: CandidateSpec) -> CandidateResult:
    grouping = spec.grouping
    return CandidateResult(
        entry_index=spec.entry_index,
        tp_limit=grouping.tp_limit,
        dp_degree=spec.dp_degree,
        feasible=False,
        num_groups=grouping.num_groups(),
        isolated_gpus=list(grouping.isolated_gpus),
        shallow=spec.shallow,
    )


def _evaluate_warm(ctx: EvalContext,
                   spec: CandidateSpec) -> Optional[CandidateResult]:
    """Warm path: keep the cached division, re-order + re-solve lower level.

    Returns ``None`` when the warm division is memory-infeasible for the
    current rates (the caller falls back to the cold path).  A warm solve
    whose every micro-batch candidate is *pruned* against the incumbent is
    returned as a pruned result: the cached division provably cannot beat
    the sweep cutoff, which is all a losing candidate needs to establish.
    """
    task = ctx.task
    result = _base_result(spec)
    result.warm_used = True
    pipelines = [list(groups) for groups in spec.warm_pipelines]
    dp = len(pipelines)

    start = time.perf_counter()
    ordered = [
        order_pipeline_groups(
            pipeline, ctx.rates, ctx.cost_model, task.model.num_layers,
            task.micro_batch_size, dp,
        )
        for pipeline in pipelines
    ]
    result.timing.ordering += time.perf_counter() - start

    materialize: object = "eager" if ctx.legacy_kernels else False
    start = time.perf_counter()
    lower = solve_lower_level(
        ordered, ctx.rates, ctx.cost_model, task.model.num_layers,
        task.global_batch_size, ctx.micro_batch_candidates, ctx.all_gpu_ids,
        materialize=materialize, incumbent=spec.incumbent,
        enable_pruning=ctx.enable_pruning,
    )
    result.timing.assignment += time.perf_counter() - start
    if lower.feasible:
        result.feasible = True
        result.estimated_step_time = lower.estimated_step_time
        result.micro_batch_size = lower.micro_batch_size
        result.candidate = lower.candidate
        result.plan = lower.plan
        return result
    if lower.pruned and not lower.memory_limited:
        result.pruned = True
        return result
    return None


def _evaluate_cold(ctx: EvalContext, spec: CandidateSpec) -> CandidateResult:
    """Cold path: full division / ordering / lower-level evaluation."""
    task = ctx.task
    grouping = spec.grouping
    dp_degree = spec.dp_degree
    result = _base_result(spec)
    if grouping.num_groups() < dp_degree:
        return result

    materialize: object = "eager" if ctx.legacy_kernels else False
    total_micro_batches = task.global_batch_size // task.micro_batch_size
    max_min_groups = 1 if spec.shallow else 4
    for min_groups in range(1, max_min_groups + 1):
        if grouping.num_groups() < dp_degree * min_groups:
            break
        start = time.perf_counter()
        division = divide_pipelines(
            grouping.groups, ctx.rates, ctx.cost_model, dp_degree,
            total_micro_batches, task.micro_batch_size,
            min_groups_per_pipeline=min_groups,
            legacy_kernels=ctx.legacy_kernels,
            warm_start=spec.division_seed,
            kernels=ctx.kernels,
        )
        result.timing.division += time.perf_counter() - start
        if not division.feasible:
            continue

        start = time.perf_counter()
        ordered_pipelines = [
            order_pipeline_groups(
                pipeline, ctx.rates, ctx.cost_model, task.model.num_layers,
                task.micro_batch_size, dp_degree,
            )
            for pipeline in division.pipelines
        ]
        result.timing.ordering += time.perf_counter() - start

        start = time.perf_counter()
        lower = solve_lower_level(
            ordered_pipelines, ctx.rates, ctx.cost_model,
            task.model.num_layers, task.global_batch_size,
            ctx.micro_batch_candidates, ctx.all_gpu_ids,
            materialize=materialize, incumbent=spec.incumbent,
            enable_pruning=ctx.enable_pruning,
        )
        result.timing.assignment += time.perf_counter() - start
        if lower.feasible:
            result.feasible = True
            result.estimated_step_time = lower.estimated_step_time
            result.micro_batch_size = lower.micro_batch_size
            result.candidate = lower.candidate
            result.plan = lower.plan
            if division.slow_groups is not None:
                result.slow_groups = tuple(
                    tuple(bucket) for bucket in division.slow_groups
                )
            return result
        if lower.memory_limited:
            result.memory_limited = True
        if lower.pruned and not lower.memory_limited:
            # Every micro-batch size was pruned against the incumbent
            # (none failed on memory).  The bound is division-independent,
            # so retrying with more groups per pipeline cannot beat the
            # incumbent either; report the candidate as pruned.
            result.pruned = True
            return result
    return result


# ----------------------------------------------------------------------
# Process-backend worker protocol
# ----------------------------------------------------------------------
@dataclass
class _WorkerState:
    """Sweep-invariant context a worker holds between batches."""

    task: TrainingTask
    cost_model: MalleusCostModel
    all_gpu_ids: Tuple[int, ...]
    enable_pruning: bool
    legacy_kernels: bool
    kernels: Optional[str] = None


_WORKER: Optional[_WorkerState] = None

#: Worker-side cache of the last attached shared-rates block:
#: ``(name, generation) -> rates dict``, at most one entry.  The dict is
#: rebuilt only when the parent publishes a new generation; in between,
#: every batch referencing the same block costs a ~60-byte descriptor
#: instead of a full rate-map pickle.
_SHM_RATES: Dict[Tuple[str, int], Dict[int, float]] = {}


def _attach_shared_rates(descriptor) -> Dict[int, float]:
    """Rebuild the rate map from a parent-published shared-memory block.

    ``descriptor`` is ``("shm", name, n, generation)``.  The attachment is
    closed as soon as the dict is rebuilt — workers never hold a mapping
    between batches.  Attaching must not register the block with the
    ``resource_tracker`` (Python < 3.13 has no ``track=False``): the
    block is parent-owned, and a worker-side registration would either
    double-unlink it at worker exit (spawn — private tracker) or, worse,
    pair with an ``unregister`` that strips the parent's own registration
    (fork — the tracker is shared).  Suppressing ``register`` during the
    attach is the one workaround correct under both start methods.
    """
    _, name, n, generation = descriptor
    cached = _SHM_RATES.get((name, generation))
    if cached is not None:
        return cached
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register
    ids = np.frombuffer(shm.buf, dtype=np.int64, count=n)
    values = np.frombuffer(shm.buf, dtype=np.float64, count=n, offset=n * 8)
    rates = dict(zip(ids.tolist(), values.tolist()))
    # Drop the array views before closing: an mmap with live buffer
    # exports cannot be unmapped.
    del ids, values
    shm.close()
    _SHM_RATES.clear()
    _SHM_RATES[(name, generation)] = rates
    return rates


@dataclass
class _SpecRef:
    """A :class:`CandidateSpec` with its grouping state factored out.

    Ships in place of the full spec when the executor publishes the
    batch's grouping tables through shared memory: ``grouping_slot``
    indexes the block's slot table, and ``warm_group_indices`` (when the
    warm pipelines' groups are all drawn from the grouping itself, the
    common case) encodes each warm pipeline as group indices instead of
    re-pickling every ``TPGroup``.  ``warm_pipelines`` stays as the
    pickled fallback for warm groups foreign to the grouping.
    """

    entry_index: int
    dp_degree: int
    grouping_slot: int
    incumbent: float = math.inf
    warm_group_indices: Optional[Tuple[Tuple[int, ...], ...]] = None
    warm_pipelines: Optional[Tuple[Tuple[TPGroup, ...], ...]] = None
    division_seed: Optional[Tuple[Tuple[float, ...], ...]] = None
    shallow: bool = False


#: Worker-side cache of the last attached shared-groupings block:
#: ``(name, generation) -> decoded GroupingResult slots``, at most one
#: entry.  Decoding runs once per published generation per worker; every
#: later batch (including the fine-grained one-spec futures of the
#: overlapped sweep, which all reference the same block) pays a ~70-byte
#: descriptor and a dict hit instead of a full grouping pickle.
_SHM_GROUPINGS: Dict[Tuple[str, int], List[GroupingResult]] = {}


def _attach_shared_groupings(descriptor) -> List[GroupingResult]:
    """Decode the parent-published grouping block into result slots.

    ``descriptor`` is ``("shmg", name, n_int, num_slots, generation)``.
    The block is ``[n_int int64 | num_slots float64]``: per slot a
    header ``[crc32, tp_limit, num_groups, num_isolated]``, the group
    sizes, the per-group member id tables (in group order — the
    partition fingerprint *is* this table), and the isolated ids; the
    float section carries each slot's ``harmonic_throughput`` bit-exact.
    The crc32 integrity fingerprint of each slot's payload is verified
    on decode — a mismatch (torn write, stale attach) raises, which the
    executor's fault budget turns into a retry or serial fallback, never
    a wrong plan.  Attachment suppresses ``resource_tracker.register``
    exactly like :func:`_attach_shared_rates` (the block is
    parent-owned).
    """
    import zlib

    _, name, n_int, num_slots, generation = descriptor
    cached = _SHM_GROUPINGS.get((name, generation))
    if cached is not None:
        return cached
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register
    ints = np.frombuffer(shm.buf, dtype=np.int64, count=n_int)
    floats = np.frombuffer(shm.buf, dtype=np.float64, count=num_slots,
                           offset=n_int * 8)
    values = ints.tolist()
    throughputs = floats.tolist()
    del ints, floats
    shm.close()

    slots: List[GroupingResult] = []
    position = 0
    for slot in range(num_slots):
        crc, tp_limit, num_groups, num_isolated = \
            values[position:position + 4]
        position += 4
        start = position
        sizes = values[position:position + num_groups]
        position += num_groups
        groups: List[TPGroup] = []
        for size in sizes:
            groups.append(TPGroup(
                gpu_ids=tuple(values[position:position + size])))
            position += size
        isolated = list(values[position:position + num_isolated])
        position += num_isolated
        payload = np.asarray(values[start:position], dtype=np.int64)
        if zlib.crc32(payload.tobytes()) != crc:
            raise RuntimeError(
                "shared grouping block failed its integrity fingerprint")
        slots.append(GroupingResult(
            tp_limit=tp_limit,
            groups=groups,
            isolated_gpus=isolated,
            harmonic_throughput=throughputs[slot],
        ))
    _SHM_GROUPINGS.clear()
    _SHM_GROUPINGS[(name, generation)] = slots
    return slots


def _resolve_spec_ref(ref: _SpecRef,
                      slots: List[GroupingResult]) -> CandidateSpec:
    """Rebuild the full :class:`CandidateSpec` from a shipped ref.

    Warm pipelines encoded as group indices resolve to the *same*
    ``TPGroup`` objects as the grouping's — exactly the identity pickle
    would have preserved — so worker-side identity-keyed memos behave
    identically to the pickled protocol.
    """
    grouping = slots[ref.grouping_slot]
    warm = ref.warm_pipelines
    if ref.warm_group_indices is not None:
        groups = grouping.groups
        warm = tuple(
            tuple(groups[index] for index in pipeline)
            for pipeline in ref.warm_group_indices
        )
    return CandidateSpec(
        entry_index=ref.entry_index,
        dp_degree=ref.dp_degree,
        grouping=grouping,
        incumbent=ref.incumbent,
        warm_pipelines=warm,
        division_seed=ref.division_seed,
        shallow=ref.shallow,
    )


def _init_worker(state: _WorkerState) -> None:
    global _WORKER
    _WORKER = state


def _worker_evaluate(batch) -> List[CandidateResult]:
    """Evaluate one batch of specs inside a pool worker.

    ``batch`` is ``(rates, micro_batch_candidates, config_vars, specs,
    groupings)``; ``rates`` is either the plain dict or a shared-memory
    descriptor (``("shm", name, n, generation)``) when the executor
    publishes rates out of band; ``groupings`` is ``None`` or the
    grouping-block descriptor (``("shmg", ...)``) whose slots resolve
    the batch's :class:`_SpecRef` entries; ``config_vars`` lets a worker
    self-heal after an in-place calibration edit in the parent,
    mirroring ``refresh_if_config_changed``.
    """
    rates, b_candidates, config_vars, specs, groupings = batch
    state = _WORKER
    if state is None:  # pragma: no cover - defensive
        raise RuntimeError("sweep worker used before initialization")
    if isinstance(rates, tuple) and rates and rates[0] == "shm":
        rates = _attach_shared_rates(rates)
    if groupings is not None:
        slots = _attach_shared_groupings(groupings)
        specs = [
            _resolve_spec_ref(spec, slots)
            if isinstance(spec, _SpecRef) else spec
            for spec in specs
        ]
    cost_model = state.cost_model
    if config_vars != vars(cost_model.config):
        for key, value in config_vars.items():
            setattr(cost_model.config, key, value)
        cost_model.refresh_if_config_changed()
    ctx = EvalContext(
        task=state.task,
        cost_model=cost_model,
        rates=rates,
        micro_batch_candidates=b_candidates,
        all_gpu_ids=state.all_gpu_ids,
        enable_pruning=state.enable_pruning,
        legacy_kernels=state.legacy_kernels,
        kernels=state.kernels,
    )
    return [evaluate_candidate(ctx, spec) for spec in specs]


class SweepExecutor:
    """Evaluates candidate specs on the configured backend.

    The ``process`` backend keeps one persistent worker pool per
    (cost-model, knobs) context: workers are initialised once with the
    task, the cost model (warm coefficient caches ride along) and the
    planner knobs, then receive only ``(rates, b-candidates, config
    fingerprint, specs)`` per batch.  Results are reassembled by entry
    index, so the caller's fold order never depends on completion order.
    A pool that cannot be created (no ``fork``/``spawn`` support) degrades
    to serial evaluation.
    """

    def __init__(self, config: Optional[SweepConfig] = None):
        self.config = config or SweepConfig()
        self._pool = None
        self._pool_token = None
        #: Shared-rates publication state: the live block, its capacity in
        #: rate entries, a strong reference to the rates object currently
        #: published (identity gates re-publication) and the generation
        #: counter workers key their rebuilt-dict cache on.
        self._shm = None
        self._shm_capacity = 0
        self._shm_rates = None
        self._shm_generation = 0
        #: Shared-groupings publication state, mirroring the rates block:
        #: the live block, its capacity in int64 slots, the identity key
        #: of the distinct groupings currently published (plus strong
        #: references pinning them, so a freed address can never alias a
        #: new grouping onto a stale slot), the encoded descriptor, and
        #: the generation workers key their decoded-slot cache on.
        self._shm_groupings = None
        self._shm_groupings_capacity = 0
        self._shm_groupings_key = None
        self._shm_groupings_refs = None
        self._shm_groupings_descriptor = None
        self._shm_groupings_generation = 0
        #: Pool crashes absorbed so far (drives the retry budget).
        self._pool_faults = 0
        #: Fault diagnostics: pool crashes/hangs seen, batches retried on a
        #: rebuilt pool, and whether the executor fell back to serial for
        #: good (the fault budget ran out).
        self.fault_stats: Dict[str, object] = {
            "pool_failures": 0, "batch_retries": 0, "serial_fallback": False,
        }

    # -- lifecycle -----------------------------------------------------
    def shutdown(self) -> None:
        """Terminate the worker pool (no-op for the serial backend).

        Idempotent and exception-safe: the pool reference is dropped
        *before* the pool is joined, so a worker that died mid-batch (whose
        executor may raise from ``shutdown``) can never wedge teardown or
        leave a half-dead pool behind for the next batch.
        """
        self._teardown_pool(dead=False)
        self._release_shm()

    def _release_shm(self) -> None:
        """Close and unlink the shared-rates block (idempotent).

        Unlinking only removes the name — a worker that already attached
        keeps a valid mapping until it drops its own reference, so a
        teardown racing a straggling batch is safe.
        """
        shm, self._shm = self._shm, None
        self._shm_rates = None
        self._shm_capacity = 0
        groupings, self._shm_groupings = self._shm_groupings, None
        self._shm_groupings_key = None
        self._shm_groupings_refs = None
        self._shm_groupings_descriptor = None
        self._shm_groupings_capacity = 0
        for block in (shm, groupings):
            if block is None:
                continue
            try:
                block.close()
                block.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def close(self) -> None:
        """Alias of :meth:`shutdown` (idempotent, exception-safe)."""
        self.shutdown()

    def idle_capacity(self) -> int:
        """Workers available for background work between real sweeps.

        The speculation engine pre-solves likely next events during idle
        service steps; this reports how much parallel slack the backend
        has for that (the whole pool — idle steps by definition carry no
        real sweep).  Serial backends report 1.  A process backend that
        degraded to serial *permanently* (the pool fault budget ran out)
        reports 0: its every evaluation now runs inline on the service
        thread, so there is no background slack at all and a future pool
        hook must not schedule work against it.  Advisory only: callers
        that must stay deterministic across machines (the service's
        exact-gated counters) budget by configured ``top_k``, never by
        this number.
        """
        if self.fault_stats.get("serial_fallback"):
            return 0
        if self.config.backend != "process":
            return 1
        return max(1, self.config.resolved_workers())

    def _teardown_pool(self, dead: bool) -> None:
        pool, self._pool, self._pool_token = self._pool, None, None
        if pool is None:
            return
        try:
            if dead:
                # The pool is broken or hung: never wait on its workers.
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
        if dead:
            # A hung worker survives a no-wait shutdown; kill what's left.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.shutdown()
        except Exception:
            pass

    # -- execution -----------------------------------------------------
    def run(self, ctx: EvalContext, specs: Sequence[CandidateSpec],
            *, fine: bool = False) -> List[CandidateResult]:
        """Evaluate ``specs``, returning results in spec order.

        ``fine=True`` submits one spec per future instead of one chunk
        per worker: the pool's internal queue then load-balances, which
        the overlapped sweep uses to let free workers pull cold
        candidates while slower warm ones are still being solved.

        The process backend is fault-tolerant: a batch that dies with the
        pool (a crashed worker) or exceeds ``SweepConfig.batch_timeout``
        (a hung worker) tears the pool down, and the batch is retried on a
        fresh pool while the ``pool_retries`` budget lasts — after that
        the executor degrades to serial evaluation permanently.  Either
        way every call returns a full, spec-ordered result list; a worker
        fault can cost latency but never a plan.
        """
        if not specs:
            return []
        if self.config.backend != "process" or len(specs) == 1 or \
                self.fault_stats["serial_fallback"]:
            return [evaluate_candidate(ctx, spec) for spec in specs]
        while True:
            pool = self._ensure_pool(ctx)
            if pool is None:
                break
            try:
                return self._run_batch(pool, ctx, specs, fine=fine)
            except Exception:
                self.fault_stats["pool_failures"] += 1
                self._pool_faults += 1
                self._teardown_pool(dead=True)
                if self._pool_faults <= self.config.pool_retries:
                    self.fault_stats["batch_retries"] += 1
                    continue
                self.fault_stats["serial_fallback"] = True
                break
        return [evaluate_candidate(ctx, spec) for spec in specs]

    def _shared_rates_payload(self, rates: Dict[int, float]):
        """Publish ``rates`` into the shared block; return its descriptor.

        The block is reused while the *same* rates object is being swept
        (a sweep never mutates its rate map mid-run; the strong reference
        makes identity aliasing impossible) and while its capacity
        suffices; each re-publication bumps the generation so workers
        know to rebuild their cached dict.  Returns ``None`` when shared
        memory or numpy is unavailable — the caller falls back to
        pickling the dict, so the knob can never cost a plan.
        """
        if np is None or not rates:
            return None
        n = len(rates)
        if self._shm is not None and self._shm_rates is rates:
            return ("shm", self._shm.name, n, self._shm_generation)
        try:
            from multiprocessing import shared_memory

            if self._shm is None or self._shm_capacity < n:
                self._release_shm()
                self._shm = shared_memory.SharedMemory(
                    create=True, size=n * 16)
                self._shm_capacity = n
            ids = np.frombuffer(self._shm.buf, dtype=np.int64, count=n)
            values = np.frombuffer(self._shm.buf, dtype=np.float64,
                                   count=n, offset=n * 8)
            # Insertion order, not sorted: the worker-side dict must be
            # indistinguishable from the pickled original, iteration
            # order included.
            ids[:] = list(rates)
            values[:] = list(rates.values())
            del ids, values
            self._shm_rates = rates
            self._shm_generation += 1
            return ("shm", self._shm.name, n, self._shm_generation)
        except Exception:  # pragma: no cover - no /dev/shm support
            self._release_shm()
            return None

    def _shared_groupings_payload(self, specs: Sequence[CandidateSpec]):
        """Publish the batch's grouping tables; return ``(descriptor,
        refs)``.

        Encodes every distinct grouping among ``specs`` (distinct by
        identity — the sweep builds one :class:`GroupingResult` per TP
        limit and every spec aliases it) into one shared block, and
        replaces each spec with a :class:`_SpecRef` holding the slot
        index, so the per-batch pickle cost no longer scales with the
        cluster size.  The block is reused while the same grouping
        objects are being swept (warm round, cold round, retries and the
        per-spec futures of the overlapped sweep all hit the same
        publication).  Returns ``(None, specs)`` unchanged when shared
        memory or numpy is unavailable, mirroring the rates block — the
        knob can never cost a plan.
        """
        if np is None or not specs:
            return None, specs
        import zlib

        distinct: List[GroupingResult] = []
        slot_by_id: Dict[int, int] = {}
        for spec in specs:
            if id(spec.grouping) not in slot_by_id:
                slot_by_id[id(spec.grouping)] = len(distinct)
                distinct.append(spec.grouping)
        key = tuple(slot_by_id)
        descriptor = self._shm_groupings_descriptor
        if descriptor is None or self._shm_groupings_key != key:
            try:
                from multiprocessing import shared_memory

                values: List[int] = []
                throughputs: List[float] = []
                for grouping in distinct:
                    payload: List[int] = [
                        group.size for group in grouping.groups
                    ] + [
                        gpu for group in grouping.groups
                        for gpu in group.gpu_ids
                    ] + list(grouping.isolated_gpus)
                    crc = zlib.crc32(
                        np.asarray(payload, dtype=np.int64).tobytes())
                    values.extend([crc, grouping.tp_limit,
                                   len(grouping.groups),
                                   len(grouping.isolated_gpus)])
                    values.extend(payload)
                    throughputs.append(grouping.harmonic_throughput)
                n_int = len(values)
                needed = n_int + len(distinct)
                if self._shm_groupings is None or \
                        self._shm_groupings_capacity < needed:
                    groupings, self._shm_groupings = \
                        self._shm_groupings, None
                    if groupings is not None:
                        groupings.close()
                        groupings.unlink()
                    self._shm_groupings = shared_memory.SharedMemory(
                        create=True, size=needed * 8)
                    self._shm_groupings_capacity = needed
                ints = np.frombuffer(self._shm_groupings.buf,
                                     dtype=np.int64, count=n_int)
                floats = np.frombuffer(self._shm_groupings.buf,
                                       dtype=np.float64,
                                       count=len(distinct),
                                       offset=n_int * 8)
                ints[:] = values
                floats[:] = throughputs
                del ints, floats
                self._shm_groupings_generation += 1
                descriptor = ("shmg", self._shm_groupings.name, n_int,
                              len(distinct),
                              self._shm_groupings_generation)
                self._shm_groupings_key = key
                self._shm_groupings_refs = distinct
                self._shm_groupings_descriptor = descriptor
            except Exception:  # pragma: no cover - no /dev/shm support
                self._shm_groupings_key = None
                self._shm_groupings_refs = None
                self._shm_groupings_descriptor = None
                return None, specs

        refs: List[_SpecRef] = []
        for spec in specs:
            warm_indices = None
            warm_pipelines = spec.warm_pipelines
            if warm_pipelines is not None:
                index_by_id = {
                    id(group): index
                    for index, group in enumerate(spec.grouping.groups)
                }
                if all(id(group) in index_by_id
                       for pipeline in warm_pipelines
                       for group in pipeline):
                    warm_indices = tuple(
                        tuple(index_by_id[id(group)] for group in pipeline)
                        for pipeline in warm_pipelines
                    )
                    warm_pipelines = None
            refs.append(_SpecRef(
                entry_index=spec.entry_index,
                dp_degree=spec.dp_degree,
                grouping_slot=slot_by_id[id(spec.grouping)],
                incumbent=spec.incumbent,
                warm_group_indices=warm_indices,
                warm_pipelines=warm_pipelines,
                division_seed=spec.division_seed,
                shallow=spec.shallow,
            ))
        return descriptor, refs

    def _run_batch(self, pool, ctx: EvalContext,
                   specs: Sequence[CandidateSpec],
                   fine: bool = False) -> List[CandidateResult]:
        config_vars = dict(vars(ctx.cost_model.config))
        rates_payload = ctx.rates
        groupings_payload = None
        if self.config.shared_rates:
            descriptor = self._shared_rates_payload(ctx.rates)
            if descriptor is not None:
                rates_payload = descriptor
            groupings_payload, specs = self._shared_groupings_payload(specs)
        workers = self.config.resolved_workers()
        if fine:
            chunks: List[List[CandidateSpec]] = [[spec] for spec in specs]
        else:
            chunks = [[] for _ in range(workers)]
            for i, spec in enumerate(specs):
                chunks[i % workers].append(spec)
        futures = [
            pool.submit(_worker_evaluate,
                        (rates_payload, ctx.micro_batch_candidates,
                         config_vars, chunk, groupings_payload))
            for chunk in chunks if chunk
        ]
        timeout = self.config.batch_timeout or None
        by_entry: Dict[int, CandidateResult] = {}
        for future in futures:
            for result in future.result(timeout=timeout):
                by_entry[result.entry_index] = result
        return [by_entry[spec.entry_index] for spec in specs]

    def _ensure_pool(self, ctx: EvalContext):
        # The token holds strong references (not ids) to the objects the
        # workers were initialised with: a pool is only reused while the
        # caller presents the *same* task and cost-model instances, and
        # the references keep those instances alive so a freed address can
        # never alias a new object onto a stale pool.
        token = (ctx.task, ctx.cost_model, ctx.all_gpu_ids,
                 ctx.enable_pruning, ctx.legacy_kernels, ctx.kernels,
                 self.config.resolved_workers())
        if self._pool is not None and self._pool_token is not None and \
                self._pool_token[0] is token[0] and \
                self._pool_token[1] is token[1] and \
                self._pool_token[2:] == token[2:]:
            return self._pool
        self.shutdown()
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else methods[0]
            state = _WorkerState(
                task=ctx.task,
                cost_model=ctx.cost_model,
                all_gpu_ids=ctx.all_gpu_ids,
                enable_pruning=ctx.enable_pruning,
                legacy_kernels=ctx.legacy_kernels,
                kernels=ctx.kernels,
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.resolved_workers(),
                mp_context=multiprocessing.get_context(method),
                initializer=_init_worker,
                initargs=(state,),
            )
            self._pool_token = token
        except Exception:  # pragma: no cover - platform without mp support
            self._pool = None
            self._pool_token = None
        return self._pool


# ----------------------------------------------------------------------
# Cross-event warm-start cache
# ----------------------------------------------------------------------
def grouping_fingerprint(grouping: GroupingResult) -> tuple:
    """Canonical identity of a grouping's *partition*.

    Insensitive to group order and to GPU order within a group (a
    re-grouping that merely re-sorts a group's members by their new rates
    produces the same partition, and every consumer of a
    :class:`~repro.parallel.plan.TPGroup` — rates, capacity, ordering —
    treats it as a set).
    """
    return tuple(sorted(group.sorted_ids for group in grouping.groups))


def capacity_fingerprint(grouping: GroupingResult,
                         cost_model: MalleusCostModel) -> tuple:
    """Canonical identity of a grouping's *memory-capacity structure*.

    The sorted multiset of per-group capacities — everything the memory
    constraints can see of a grouping (``mu``/``nu``/``max_layers`` depend
    on group capacity, pipeline shape and micro-batch size, never on
    which GPUs form a group or on their rates).  Two groupings with equal
    capacity fingerprints expose identical memory-feasible division
    spaces, so memory-infeasibility evidence transfers between them.
    """
    return tuple(sorted(
        cost_model.group_capacity(group.gpu_ids)
        for group in grouping.groups
    ))


@dataclass
class _CacheEntry:
    fingerprint: tuple
    #: Per-pipeline tuples of group gpu-id tuples (the stored division).
    shapes: Tuple[Tuple[Tuple[int, ...], ...], ...]
    slow_groups: Optional[Tuple[Tuple[float, ...], ...]] = None
    #: Consecutive warm hits served since the last cold solve.
    warm_age: int = 0


class SolutionCache:
    """Warm-start store for sweep candidates, keyed by ``(tp, dp)``.

    Each entry remembers the winning pipeline division of the candidate's
    last exact solve together with the **fingerprint of the grouping** it
    was solved under.  A lookup only hits when the current grouping's
    fingerprint matches (so any re-grouping — including every membership
    change, which by construction alters the partition — forces a cold
    re-solve) and every cached GPU id still exists in the current rate
    map.  Entries are invalidated wholesale when the cost model's config
    fingerprint changes (the same self-healing ``plan()`` performs) and
    on explicit membership eviction.
    """

    def __init__(self):
        self._entries: Dict[Tuple[int, int], _CacheEntry] = {}
        #: Candidates whose last full-depth solve was memory-infeasible:
        #: ``(num_groups, dp) -> (uses since, capacity fingerprint at mark
        #: time)`` (see :meth:`check_infeasible`).  Stratified on the
        #: *group count*, not the tp limit: memory feasibility depends on
        #: the per-group capacity structure, and two tp limits whose
        #: groupings degenerate to the same group count expose the same
        #: division space — one infeasible shape prunes the whole
        #: (num_groups, dp) stratum instead of being re-proved per tp.
        self._infeasible: Dict[Tuple[int, int],
                               Tuple[int, Optional[tuple]]] = {}
        self._config_fingerprint: Optional[tuple] = None
        self._counters = {
            "hits": 0, "misses": 0, "stores": 0, "infeasible_skips": 0,
            "stale_rejections": 0, "expirations": 0,
            "evictions": 0, "invalidations": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    # -- invalidation --------------------------------------------------
    def refresh_config(self, fingerprint: tuple) -> bool:
        """Drop everything when the calibration config changed in place."""
        if self._config_fingerprint is None:
            self._config_fingerprint = fingerprint
            return False
        if fingerprint == self._config_fingerprint:
            return False
        self._entries.clear()
        self._infeasible.clear()
        self._config_fingerprint = fingerprint
        self._counters["invalidations"] += 1
        return True

    def evict_membership_change(self) -> None:
        """Evict every entry (a GPU failed or joined).

        The fingerprint guard already makes a stale hit impossible — a
        grouping that lost or gained a GPU cannot reproduce the cached
        fingerprint — but membership events change the feasible set
        itself, so the divisions are worthless and holding them only
        risks confusion.
        """
        if self._entries:
            self._counters["evictions"] += len(self._entries)
        self._entries.clear()
        self._infeasible.clear()

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self._infeasible.clear()
        for key in self._counters:
            self._counters[key] = 0
        self._config_fingerprint = None

    # -- lookup / store ------------------------------------------------
    def lookup(self, tp_limit: int, dp_degree: int, grouping: GroupingResult,
               rates: Dict[int, float], max_warm_age: int = 0,
               fingerprint: Optional[tuple] = None):
        """Warm pipelines + division seed for a candidate, or ``None``.

        Returns ``(warm_pipelines, division_seed)`` where
        ``warm_pipelines`` is a tuple of per-pipeline
        :class:`~repro.parallel.plan.TPGroup` tuples built from the
        *current* grouping's group objects (the stored shapes identify
        groups as GPU-id sets; re-using the live groups keeps warm plans
        representationally identical to cold ones even when a re-sort
        changed the member order inside a group).  With a positive
        ``max_warm_age`` an entry that already served that many
        consecutive warm hits is reported as a miss (forcing a cold
        re-solve that re-anchors the division); the ``division_seed`` of
        the aged entry is still returned via the miss sentinel
        ``(None, seed)`` so the cold solve can warm-start its fallback
        local search.
        """
        entry = self._entries.get((tp_limit, dp_degree))
        if fingerprint is None:
            fingerprint = grouping_fingerprint(grouping)
        if entry is None:
            self._counters["misses"] += 1
            return None
        for pipeline in entry.shapes:
            for gpu_ids in pipeline:
                for gpu in gpu_ids:
                    if gpu not in rates:
                        # A cached division must never be served for a
                        # departed GPU; purge the entry outright.
                        del self._entries[(tp_limit, dp_degree)]
                        self._counters["stale_rejections"] += 1
                        self._counters["misses"] += 1
                        return None
        if max_warm_age > 0 and entry.warm_age >= max_warm_age:
            self._counters["expirations"] += 1
            self._counters["misses"] += 1
            return None, entry.slow_groups
        if entry.fingerprint != fingerprint:
            # The partition changed (a group change re-formed some
            # groups): the stored division cannot be replayed, but its
            # slow-bucket seed may still help the cold solve (the
            # division solver discards structurally incompatible seeds).
            self._counters["misses"] += 1
            return None, entry.slow_groups
        by_members: Dict[frozenset, TPGroup] = {
            group.id_set: group for group in grouping.groups
        }
        warm = []
        for pipeline in entry.shapes:
            groups = []
            for gpu_ids in pipeline:
                group = by_members.get(frozenset(gpu_ids))
                if group is None:
                    # The division references a group the grouping no
                    # longer contains (cannot happen while the fingerprint
                    # matches, but a stale entry must never win by crash).
                    self._counters["misses"] += 1
                    return None
                groups.append(group)
            warm.append(tuple(groups))
        self._counters["hits"] += 1
        return tuple(warm), entry.slow_groups

    # -- infeasibility memo --------------------------------------------
    def check_infeasible(self, num_groups: int, dp_degree: int,
                         max_warm_age: int,
                         capacities: Optional[tuple] = None):
        """How a remembered memory-infeasible stratum may be treated.

        Returns ``"skip"`` (the candidate need not be solved at all),
        ``"shallow"`` (re-check cold but without the min-groups retry
        loop), or ``None`` (no memo — full solve).  The decision keys on
        the grouping's :func:`capacity_fingerprint`: memory feasibility is
        a function of the per-group capacity multiset alone (rates only
        steer *which* division the heuristic solver tries), so

        * an **unchanged** capacity structure means the earlier memory
          evidence still applies — skip;
        * a **changed** structure (a group change or a recovery re-formed
          the groups) may have changed what fits — re-check under the
          current rates, but shallowly: the deeper min-groups retries the
          memo already proved futile cost the bulk of an infeasible
          candidate's solve.

        "Function of the capacity multiset" holds for the feasible
        *space*; the solver explores it heuristically, so the skip stays
        evidence-based rather than a proof — every use ages the entry and
        after ``max_warm_age`` uses the candidate is re-solved at full
        depth (ages advance deterministically, keeping the re-check
        schedule worker-count independent).
        """
        key = (num_groups, dp_degree)
        memo = self._infeasible.get(key)
        if memo is None:
            # Nearest-stratum fallback: a group-count drift of a few (an
            # event re-formed some groups) does not invalidate the
            # "deeper retries were futile" hint for the same dp, but it
            # always demotes the verdict to a shallow re-check — the
            # candidate is still freshly solved under the current rates,
            # just without the retry depth.  A capacity fingerprint has
            # one entry per group, so a cross-stratum "skip" (exact
            # capacity match under a different count) is impossible.
            same_dp = [k for k in self._infeasible if k[1] == dp_degree]
            if not same_dp:
                return None
            key = min(same_dp, key=lambda k: (abs(k[0] - num_groups), k[0]))
            memo = self._infeasible[key]
        age, marked_capacities = memo
        if max_warm_age > 0 and age >= max_warm_age:
            del self._infeasible[key]
            self._counters["expirations"] += 1
            return None
        self._infeasible[key] = (age + 1, marked_capacities)
        self._counters["infeasible_skips"] += 1
        if capacities is not None and capacities == marked_capacities:
            return "skip"
        return "shallow"

    def mark_infeasible(self, num_groups: int, dp_degree: int,
                        capacities: Optional[tuple] = None) -> None:
        """Remember that a full-depth solve hit memory infeasibility."""
        self._infeasible[(num_groups, dp_degree)] = (0, capacities)

    def clear_infeasible(self, num_groups: int, dp_degree: int) -> None:
        self._infeasible.pop((num_groups, dp_degree), None)

    def store(self, tp_limit: int, dp_degree: int, fingerprint: tuple,
              pipelines_groups: Sequence[Sequence[TPGroup]],
              slow_groups: Optional[Tuple[Tuple[float, ...], ...]] = None,
              warm: bool = False) -> None:
        """Remember a candidate's winning division for the next event.

        ``slow_groups`` (cold solves only) seeds the division solver's
        fallback local search next time the cold path runs; a warm-solve
        store (``warm=True``) keeps the previous seed — whose rate
        multiset is closest to the division actually kept — and advances
        the entry's warm age toward ``SweepConfig.max_warm_age``.
        """
        shapes = tuple(
            tuple(group.gpu_ids for group in pipeline)
            for pipeline in pipelines_groups
        )
        previous = self._entries.get((tp_limit, dp_degree))
        warm_age = 0
        if warm:
            warm_age = previous.warm_age + 1 if previous is not None else 1
            if slow_groups is None and previous is not None:
                slow_groups = previous.slow_groups
        self._entries[(tp_limit, dp_degree)] = _CacheEntry(
            fingerprint=fingerprint, shapes=shapes, slow_groups=slow_groups,
            warm_age=warm_age,
        )
        self._counters["stores"] += 1

    def stats(self) -> Dict[str, int]:
        """Size plus hit/miss/store/eviction counters."""
        return {"size": len(self._entries),
                "infeasible": len(self._infeasible), **self._counters}


# ----------------------------------------------------------------------
# Sweep loop (shared by MalleusPlanner.plan and ReplanEngine._solve_repair)
# ----------------------------------------------------------------------
@dataclass
class SweepEntry:
    """One (grouping, dp) candidate of a sweep, with its sound bound."""

    bound: float
    entry_index: int
    grouping: GroupingResult
    dp_degree: int


@dataclass
class SweepSeed:
    """An already-solved candidate seeding the sweep (the warm repair).

    Participates with entry index ``-1``: it wins every tie, which is the
    replan engine's historical contract (keeping the incumbent layout is
    free, a fresh identical-step-time layout is not).
    """

    step_time: float
    candidate: PlanCandidate
    micro_batch_size: int
    tp_limit: int
    dp_degree: int
    grouping: Optional[GroupingResult] = None


@dataclass
class Finalist:
    """One solved candidate of a transition-aware sweep."""

    step_time: float
    seconds: float
    order: int
    candidate: PlanCandidate
    micro_batch_size: int
    tp_limit: int
    dp_degree: int
    grouping: Optional[GroupingResult]
    estimate: object
    plan: Optional[ParallelizationPlan] = None


@dataclass
class SweepStats:
    """What one sweep did (reported per event on ``Adjustment``)."""

    backend: str = "serial"
    workers: int = 1
    candidates: int = 0
    evaluated: int = 0
    pruned: int = 0
    warm_hits: int = 0
    warm_misses: int = 0
    contender_resolves: int = 0
    infeasible_skips: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "candidates": self.candidates,
            "evaluated": self.evaluated,
            "pruned": self.pruned,
            "warm_hits": self.warm_hits,
            "warm_misses": self.warm_misses,
            "contender_resolves": self.contender_resolves,
            "infeasible_skips": self.infeasible_skips,
        }


@dataclass
class SweepOutcome:
    """Winner and bookkeeping of one sweep."""

    records: List[CandidateRecord] = field(default_factory=list)
    step_time: float = math.inf
    candidate: Optional[PlanCandidate] = None
    plan: Optional[ParallelizationPlan] = None
    micro_batch_size: int = 0
    tp_limit: int = 0
    dp_degree: int = 0
    grouping: Optional[GroupingResult] = None
    entry_index: int = -1
    transition: Optional[object] = None
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def feasible(self) -> bool:
        return self.candidate is not None


def select_transition_winner(finalists: Sequence[Finalist],
                             best_pure: float, config) -> Finalist:
    """Pick the transition-aware winner among the solved finalists.

    Only candidates whose **amortized score** ``step + migration /
    horizon_steps`` lies within ``epsilon`` of the best pure step time
    compete (in ``tie_break_only`` mode: exact step-time ties only).
    Within that window the objective is minimal disruption: the smallest
    estimated migration time wins, equal-migration candidates are ordered
    by the amortized score, and remaining ties resolve to the smallest
    order index — a warm repair seeded at order ``-1`` therefore wins
    every tie.  When nothing fits the window the pure step-time winner is
    kept, so enabling transitions never regresses the step time beyond
    ``epsilon``.
    """
    best_entry: Optional[Finalist] = None
    best_key = (math.inf, math.inf, math.inf)
    fallback: Optional[Finalist] = None
    fallback_key = (math.inf, math.inf)
    for entry in finalists:
        if (entry.step_time, entry.order) < fallback_key:
            fallback, fallback_key = entry, (entry.step_time, entry.order)
        score = entry.step_time + entry.seconds / config.horizon_steps
        if config.tie_break_only:
            if entry.step_time > best_pure + 1e-12:
                continue
            key = (entry.step_time, entry.seconds, entry.order)
        else:
            if score > best_pure * (1.0 + config.epsilon) + 1e-12:
                continue
            key = (entry.seconds, score, entry.order)
        wins = best_entry is None or key[0] < best_key[0] - 1e-12
        if not wins and abs(key[0] - best_key[0]) <= 1e-12:
            wins = key[1] < best_key[1] - 1e-12
            if not wins and abs(key[1] - best_key[1]) <= 1e-12:
                wins = key[2] < best_key[2]
        if wins:
            best_entry, best_key = entry, key
    return best_entry if best_entry is not None else fallback


class _SweepState:
    """Fold-in-order accumulator shared by the dynamic and static loops."""

    def __init__(self, ctx: EvalContext, scorer, seed: Optional[SweepSeed],
                 tie_break: str, cache: Optional[SolutionCache],
                 cache_on: bool, breakdown: PlanningTimeBreakdown,
                 stats: SweepStats):
        self.ctx = ctx
        self.scorer = scorer
        self.tie_break = tie_break
        self.cache = cache
        self.cache_on = cache_on
        self.breakdown = breakdown
        self.stats = stats
        self.windowed = scorer is not None and not scorer.config.tie_break_only
        self.records: Dict[int, CandidateRecord] = {}
        self.finalists: List[Finalist] = []
        self.best_pure = math.inf
        self.best_step = math.inf
        self.best: Optional[SweepOutcome] = None
        self.best_order = math.inf
        if seed is not None:
            self.best_pure = seed.step_time
            self.best_step = seed.step_time
            self.best_order = -1
            self.best = SweepOutcome(
                step_time=seed.step_time, candidate=seed.candidate,
                micro_batch_size=seed.micro_batch_size,
                tp_limit=seed.tp_limit, dp_degree=seed.dp_degree,
                grouping=seed.grouping, entry_index=-1,
            )
            if scorer is not None:
                estimate = scorer.estimate(seed.candidate)
                self.finalists.append(Finalist(
                    step_time=seed.step_time,
                    seconds=scorer.charge(estimate),
                    order=-1,
                    candidate=seed.candidate,
                    micro_batch_size=seed.micro_batch_size,
                    tp_limit=seed.tp_limit,
                    dp_degree=seed.dp_degree,
                    grouping=seed.grouping,
                    estimate=estimate,
                ))
            if self.cache_on and seed.grouping is not None:
                self.cache.store(
                    seed.tp_limit, seed.dp_degree,
                    grouping_fingerprint(seed.grouping),
                    seed.candidate.pipelines_groups,
                )

    # -- cutoffs -------------------------------------------------------
    def cutoff(self) -> float:
        """Pruning cutoff under the current incumbent."""
        if self.windowed:
            return self.best_pure * (1.0 + self.scorer.config.epsilon)
        if self.scorer is not None:
            return self.best_pure
        return self.best_step

    def prunes(self, entry: SweepEntry) -> bool:
        """Sound sweep-level pruning decision for one entry."""
        cutoff = self.cutoff()
        if entry.bound > cutoff + 1e-12:
            return True
        if self.windowed:
            # Transition term of the lower bound: the window is defined
            # on the amortized score (step + migration / horizon), so a
            # candidate whose step-time bound plus the provable
            # migration-time floor exceeds the window limit can never
            # enter it; requiring the step bound to also exceed the best
            # pure step time guarantees the candidate cannot shrink the
            # window either.
            floor = self.scorer.floor(entry.grouping)
            if floor > 0.0 and entry.bound > self.best_pure + 1e-12 and \
                    entry.bound + floor > cutoff + 1e-12:
                return True
        return False

    # -- folding -------------------------------------------------------
    def record_pruned(self, entry: SweepEntry) -> None:
        self.stats.pruned += 1
        self.records[entry.entry_index] = CandidateRecord(
            tp_limit=entry.grouping.tp_limit,
            dp_degree=entry.dp_degree,
            estimated_step_time=math.inf,
            feasible=False,
            num_groups=entry.grouping.num_groups(),
            isolated_gpus=list(entry.grouping.isolated_gpus),
            pruned=True,
            lower_bound=entry.bound,
        )

    def fold(self, entry: SweepEntry, result: CandidateResult,
             refold: bool = False) -> None:
        """Fold one evaluation into the records and the incumbent.

        ``refold=True`` marks a contender re-solve of an entry already
        folded this sweep: the evaluation counter is not incremented
        again (``contender_resolves`` accounts for the extra solve).
        """
        if not refold:
            self.stats.evaluated += 1
        if result.warm_used:
            self.stats.warm_hits += 1
        timing = result.timing
        self.breakdown.division += timing.division
        self.breakdown.ordering += timing.ordering
        self.breakdown.assignment += timing.assignment
        self.breakdown.merge_kernels(timing.kernels)
        record = CandidateRecord(
            tp_limit=result.tp_limit,
            dp_degree=result.dp_degree,
            estimated_step_time=result.estimated_step_time,
            feasible=result.feasible,
            num_groups=result.num_groups,
            isolated_gpus=result.isolated_gpus,
            pruned=result.pruned,
            lower_bound=entry.bound,
        )
        self.records[entry.entry_index] = record
        if not result.feasible:
            if self.cache_on and result.memory_limited and \
                    not result.shallow:
                # The full-depth solve produced *memory* evidence (never a
                # bound prune or a structural/division failure); remember
                # it so the next sweeps skip or shallow-check the
                # candidate.  Shallow confirmations never re-anchor the
                # memo, so its age keeps advancing toward the full-depth
                # re-check.
                self.cache.mark_infeasible(
                    result.num_groups, result.dp_degree,
                    capacities=capacity_fingerprint(entry.grouping,
                                                    self.ctx.cost_model),
                )
            return
        if self.cache_on:
            self.cache.clear_infeasible(result.num_groups, result.dp_degree)
            self.cache.store(
                result.tp_limit, result.dp_degree,
                grouping_fingerprint(entry.grouping),
                result.candidate.pipelines_groups,
                slow_groups=result.slow_groups,
                warm=result.warm_used,
            )
        step_time = result.estimated_step_time
        if self.scorer is not None:
            estimate = self.scorer.estimate(result.candidate)
            charged = self.scorer.charge(estimate)
            record.transition_seconds = charged
            self.finalists.append(Finalist(
                step_time=step_time,
                seconds=charged,
                order=entry.entry_index,
                candidate=result.candidate,
                micro_batch_size=result.micro_batch_size,
                tp_limit=result.tp_limit,
                dp_degree=result.dp_degree,
                grouping=entry.grouping,
                estimate=estimate,
                plan=result.plan,
            ))
            if step_time < self.best_pure:
                self.best_pure = step_time
            return
        wins = step_time < self.best_step - 1e-12
        if not wins and self.tie_break == "entry_index" and \
                abs(step_time - self.best_step) <= 1e-12:
            wins = entry.entry_index < self.best_order
        if wins:
            self.best_step = step_time
            self.best_order = entry.entry_index
            self.best = SweepOutcome(
                step_time=step_time,
                candidate=result.candidate,
                plan=result.plan,
                micro_batch_size=result.micro_batch_size,
                tp_limit=result.tp_limit,
                dp_degree=result.dp_degree,
                grouping=entry.grouping,
                entry_index=entry.entry_index,
            )

    # -- finish --------------------------------------------------------
    def outcome(self, entries: Sequence[SweepEntry]) -> SweepOutcome:
        if self.scorer is not None and self.finalists:
            winner = select_transition_winner(
                self.finalists, self.best_pure, self.scorer.config)
            self.best = SweepOutcome(
                step_time=winner.step_time,
                candidate=winner.candidate,
                plan=winner.plan,
                micro_batch_size=winner.micro_batch_size,
                tp_limit=winner.tp_limit,
                dp_degree=winner.dp_degree,
                grouping=winner.grouping,
                entry_index=winner.order,
                transition=winner.estimate,
            )
        outcome = self.best if self.best is not None else SweepOutcome()
        outcome.records = [
            self.records[entry.entry_index] for entry in entries
            if entry.entry_index in self.records
        ]
        outcome.stats = self.stats
        return outcome


def run_sweep(
    entries: Sequence[SweepEntry],
    ctx: EvalContext,
    executor: SweepExecutor,
    *,
    breakdown: PlanningTimeBreakdown,
    scorer=None,
    seed: Optional[SweepSeed] = None,
    tie_break: str = "entry_index",
    prune: bool = True,
    cache: Optional[SolutionCache] = None,
) -> SweepOutcome:
    """Run one bound-ordered (tp, dp) candidate sweep.

    ``entries`` must already be in evaluation order (ascending bound when
    ``prune`` is on — the callers sort exactly as before).  ``seed`` is an
    already-solved incumbent candidate (the replan engine's warm repair);
    ``tie_break`` is ``"entry_index"`` (equal step times resolve to the
    smallest enumeration index — the planner's rule) or ``"strict"`` (only
    strict improvements replace the incumbent — the repair rule, under
    which the seed keeps every tie).  See the module docstring for the
    serial-dynamic versus static-rounds execution contract.
    """
    config = executor.config
    cache_on = bool(config.warm_cache) and cache is not None
    if cache_on:
        cache.refresh_config(ctx.cost_model.config_fingerprint())
    stats = SweepStats(
        backend=config.backend,
        workers=(config.resolved_workers()
                 if config.backend == "process" else 1),
        candidates=len(entries) + (1 if seed is not None else 0),
    )
    state = _SweepState(ctx, scorer, seed, tie_break, cache, cache_on,
                        breakdown, stats)

    dynamic = config.backend == "serial" and not cache_on
    if dynamic:
        for entry in entries:
            if prune and state.prunes(entry):
                state.record_pruned(entry)
                continue
            spec = CandidateSpec(
                entry_index=entry.entry_index,
                dp_degree=entry.dp_degree,
                grouping=entry.grouping,
                incumbent=state.cutoff(),
            )
            state.fold(entry, evaluate_candidate(ctx, spec))
        return state.outcome(entries)

    # Static rounds: warm hits, then a pilot (when no incumbent exists),
    # then the cold remainder — each round's composition is a function of
    # the inputs alone, so the solve set (and with it the cache evolution
    # and the winner) is identical for every backend/worker combination.
    warm_round: List[Tuple[SweepEntry, CandidateSpec]] = []
    cold_entries: List[Tuple[SweepEntry, Optional[tuple], bool]] = []
    # Fingerprints are per *grouping*, shared by all its dp entries —
    # compute each at most once per sweep (capacity ones lazily: they are
    # only needed on memo consultations).
    fingerprints: Dict[int, tuple] = {}
    capacity_fps: Dict[int, tuple] = {}

    def fingerprint_of(grouping: GroupingResult) -> tuple:
        key = id(grouping)
        cached = fingerprints.get(key)
        if cached is None:
            cached = grouping_fingerprint(grouping)
            fingerprints[key] = cached
        return cached

    def capacity_fp_of(grouping: GroupingResult) -> tuple:
        key = id(grouping)
        cached = capacity_fps.get(key)
        if cached is None:
            cached = capacity_fingerprint(grouping, ctx.cost_model)
            capacity_fps[key] = cached
        return cached

    for entry in entries:
        if prune and state.prunes(entry):
            # Bound-pruned against the starting incumbent: skip before
            # any memo/cache work (and before the memo ages).
            state.record_pruned(entry)
            continue
        hit = None
        shallow = False
        if cache_on:
            hit = cache.lookup(
                entry.grouping.tp_limit, entry.dp_degree,
                entry.grouping, ctx.rates,
                max_warm_age=config.max_warm_age,
                fingerprint=fingerprint_of(entry.grouping),
            )
            if hit is None or hit[0] is None:
                # No replayable division: consult the infeasibility memo.
                # An unchanged capacity structure lets the candidate be
                # skipped outright; a changed one (group change, recovery)
                # still gets a fresh cold re-check under the current
                # rates, just without the deeper min-groups retries the
                # memo proved futile (the retry loop dominates infeasible
                # candidates' cost); the memo ages out after max_warm_age
                # uses, forcing a periodic full-depth re-solve.
                verdict = cache.check_infeasible(
                    entry.grouping.num_groups(), entry.dp_degree,
                    config.max_warm_age,
                    capacities=capacity_fp_of(entry.grouping),
                )
                if verdict is not None:
                    stats.infeasible_skips += 1
                if verdict == "skip":
                    # pruned=True: like a bound prune, the candidate is
                    # reported infeasible without having been solved
                    # exactly this sweep (the evidence is the memo's).
                    state.records[entry.entry_index] = CandidateRecord(
                        tp_limit=entry.grouping.tp_limit,
                        dp_degree=entry.dp_degree,
                        estimated_step_time=math.inf,
                        feasible=False,
                        num_groups=entry.grouping.num_groups(),
                        isolated_gpus=list(entry.grouping.isolated_gpus),
                        pruned=True,
                        lower_bound=entry.bound,
                    )
                    continue
                shallow = verdict == "shallow"
        if hit is None or hit[0] is None:
            # Miss, or an aged entry due for a cold re-anchor (the miss
            # sentinel still carries the division seed).
            if cache_on:
                stats.warm_misses += 1
            cold_entries.append((entry, hit[1] if hit else None, shallow))
            continue
        warm_pipelines, division_seed = hit
        warm_round.append((entry, CandidateSpec(
            entry_index=entry.entry_index,
            dp_degree=entry.dp_degree,
            grouping=entry.grouping,
            warm_pipelines=warm_pipelines,
            division_seed=division_seed,
        )))

    def run_round(batch: List[Tuple[SweepEntry, CandidateSpec]],
                  fine: bool = False):
        cutoff = state.cutoff()
        survivors: List[Tuple[SweepEntry, CandidateSpec]] = []
        for entry, spec in batch:
            if prune and state.prunes(entry):
                state.record_pruned(entry)
                continue
            spec.incumbent = cutoff
            survivors.append((entry, spec))
        results = executor.run(ctx, [spec for _, spec in survivors],
                               fine=fine)
        folded = []
        for (entry, _), result in zip(survivors, results):
            state.fold(entry, result)
            folded.append((entry, result))
        return folded

    overlapped = config.overlap and config.backend == "process" and \
        not executor.fault_stats["serial_fallback"]
    if overlapped:
        # One combined warm+cold round at per-spec granularity: free
        # workers pull cold candidates the moment warm ones drain instead
        # of idling at the warm barrier (and the pilot is subsumed — its
        # only purpose was tightening the cold round's cutoff, which the
        # combined round forgoes by design).  Every spec is pruned against
        # the *starting* incumbent and the results fold in entry order,
        # so the round stays run-to-run deterministic.
        warm_folded = run_round(
            list(warm_round) + [
                (entry, CandidateSpec(
                    entry_index=entry.entry_index,
                    dp_degree=entry.dp_degree,
                    grouping=entry.grouping, division_seed=seed_buckets,
                    shallow=shallow,
                ))
                for entry, seed_buckets, shallow in cold_entries
            ],
            fine=True,
        )
    else:
        warm_folded = run_round(warm_round)
        if prune and math.isinf(state.cutoff()) and cold_entries:
            # Pilot: establish an incumbent with the lowest-bound
            # candidate so the cold round keeps the sweep's pruning power.
            pilot, pilot_seed, pilot_shallow = cold_entries.pop(0)
            run_round([(pilot, CandidateSpec(
                entry_index=pilot.entry_index, dp_degree=pilot.dp_degree,
                grouping=pilot.grouping, division_seed=pilot_seed,
                shallow=pilot_shallow,
            ))])
        run_round([
            (entry, CandidateSpec(
                entry_index=entry.entry_index, dp_degree=entry.dp_degree,
                grouping=entry.grouping, division_seed=seed_buckets,
                shallow=shallow,
            ))
            for entry, seed_buckets, shallow in cold_entries
        ])

    # Contender re-solve: a warm representative whose step time lands
    # within the resolve margin of the best step seen could owe its rank
    # to division drift; re-solve those candidates cold (the contender
    # set depends only on folded values, so the pass — like every round —
    # is deterministic).  A cold solve that improves on its warm twin
    # re-folds (re-anchoring the cache entry); under transition-aware
    # scoring both versions stay in the finalist pool — the stale-but-
    # cheaper-to-reach division and the fresh one are both real plans.
    if config.resolve_margin > 0 and warm_folded:
        reference = min(state.best_pure, state.best_step)
        if math.isfinite(reference):
            threshold = reference * (1.0 + config.resolve_margin) + 1e-12
            contenders = [
                (entry, result) for entry, result in warm_folded
                if result.feasible and result.warm_used
                and result.estimated_step_time <= threshold
            ]
            if contenders:
                cutoff = state.cutoff()
                results = executor.run(ctx, [
                    CandidateSpec(
                        entry_index=entry.entry_index,
                        dp_degree=entry.dp_degree,
                        grouping=entry.grouping,
                        incumbent=cutoff,
                    )
                    for entry, _ in contenders
                ])
                for (entry, warm_result), cold_result in zip(contenders,
                                                             results):
                    stats.contender_resolves += 1
                    if not cold_result.feasible:
                        continue
                    if scorer is not None or \
                            cold_result.estimated_step_time < \
                            warm_result.estimated_step_time - 1e-12:
                        state.fold(entry, cold_result, refold=True)
    return state.outcome(entries)
