"""Experiment harness: one module per table/figure of the paper's evaluation.

| Paper artefact | Module |
|----------------|--------|
| Table 2 / Figure 7 (end-to-end)        | :mod:`repro.experiments.end_to_end` |
| Table 3 (optimality, cost-model error) | :mod:`repro.experiments.optimality` |
| Figure 8 (Oobleck comparison)          | :mod:`repro.experiments.oobleck_compare` |
| Table 4 (case studies)                 | :mod:`repro.experiments.case_studies` |
| Figure 9 (partitioning ablation)       | :mod:`repro.experiments.ablation` |
| Figure 10 (cost-model enumeration)     | :mod:`repro.experiments.costmodel_validation` |
| Table 5 (planning scalability)         | :mod:`repro.experiments.planning_scalability` |
| Tables 6/7 (restart configurations)    | :mod:`repro.experiments.restart_configs` |
| Figure 11 (Theorem 2 validation)       | :mod:`repro.experiments.grouping_validation` |
| §5.3 re-planning overlap (extra)       | :mod:`repro.experiments.replanning` |
| Planner hot-path before/after (extra)  | :mod:`repro.experiments.planner_hotpath` |
| Transition-aware planning (extra)      | :mod:`repro.experiments.transition_study` |
| Generated-trace scenario sweep (extra) | :mod:`repro.experiments.scenario_sweep` |
"""

from .ablation import AblationResult, format_ablation, run_ablation
from .case_studies import CaseStudyResult, format_case_study, run_case_study
from .common import (
    PAPER_GPU_COUNTS,
    PAPER_SITUATIONS,
    Workload,
    format_table,
    geometric_mean,
    paper_workload,
)
from .costmodel_validation import (
    CostModelValidationResult,
    format_costmodel_validation,
    run_costmodel_validation,
)
from .end_to_end import EndToEndResult, format_end_to_end, run_end_to_end
from .grouping_validation import (
    GroupingValidationResult,
    format_grouping_validation,
    run_grouping_validation,
)
from .oobleck_compare import (
    OobleckComparisonResult,
    format_oobleck_comparison,
    run_oobleck_comparison,
)
from .optimality import OptimalityResult, format_optimality, run_optimality
from .planner_hotpath import (
    PlannerHotpathResult,
    format_kernel_profile,
    format_planner_hotpath,
    gate_against_baseline,
    read_hotpath_json,
    run_planner_hotpath,
    write_hotpath_json,
)
from .planning_scalability import (
    PlanningScalabilityResult,
    format_planning_scalability,
    run_planning_scalability,
)
from .replanning import (
    IncrementalComparisonResult,
    ReplanningResult,
    format_incremental_comparison,
    format_replanning,
    run_incremental_comparison,
    run_replanning_ablation,
)
from .restart_configs import (
    RestartConfigResult,
    format_restart_configs,
    run_restart_configs,
)
from .scenario_sweep import (
    ScenarioSweepResult,
    ScenarioSweepRow,
    format_scenario_sweep,
    run_scenario_sweep,
)
from .transition_study import (
    TransitionStudyResult,
    TransitionStudyRow,
    format_transition_study,
    run_transition_study,
)

__all__ = [
    "AblationResult",
    "CaseStudyResult",
    "CostModelValidationResult",
    "EndToEndResult",
    "GroupingValidationResult",
    "IncrementalComparisonResult",
    "OobleckComparisonResult",
    "OptimalityResult",
    "PAPER_GPU_COUNTS",
    "PAPER_SITUATIONS",
    "PlannerHotpathResult",
    "PlanningScalabilityResult",
    "ReplanningResult",
    "RestartConfigResult",
    "ScenarioSweepResult",
    "ScenarioSweepRow",
    "TransitionStudyResult",
    "TransitionStudyRow",
    "Workload",
    "format_ablation",
    "format_case_study",
    "format_costmodel_validation",
    "format_end_to_end",
    "format_grouping_validation",
    "format_incremental_comparison",
    "format_kernel_profile",
    "format_oobleck_comparison",
    "format_optimality",
    "format_planner_hotpath",
    "format_planning_scalability",
    "format_replanning",
    "format_scenario_sweep",
    "format_transition_study",
    "format_restart_configs",
    "format_table",
    "gate_against_baseline",
    "geometric_mean",
    "paper_workload",
    "read_hotpath_json",
    "run_ablation",
    "run_case_study",
    "run_costmodel_validation",
    "run_end_to_end",
    "run_grouping_validation",
    "run_incremental_comparison",
    "run_oobleck_comparison",
    "run_optimality",
    "run_planner_hotpath",
    "run_planning_scalability",
    "run_replanning_ablation",
    "run_scenario_sweep",
    "run_transition_study",
    "run_restart_configs",
    "write_hotpath_json",
]
