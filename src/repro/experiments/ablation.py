"""Ablation of the four non-uniform partitioning dimensions: Figure 9.

Figure 9 evaluates the 110B model with three stragglers (rates 2.57, 5.42
and 12.53) spread over one, two or three nodes, and enables the non-uniform
partitioning dimensions one by one:

* Megatron-LM (everything uniform);
* non-uniform **layers** only;
* non-uniform **layers + data**;
* non-uniform **layers + data + devices** (group splitting);
* non-uniform **layers + data + devices + stages** (the full Malleus);
* the theoretic optimum.

The reproduction mirrors that by progressively unlocking planner features:

* *layer-only*: the uniform Megatron grouping and pipelines are kept, the
  layer ILP runs per pipeline, but the data assignment stays uniform;
* *layer+data*: the full lower-level problem on the uniform upper level;
* *+device*: GPU grouping with straggler isolation (Theorem 2 splitting);
* *+stage*: the full bi-level planner with non-uniform pipeline division.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines.config_search import search_megatron_config
from ..baselines.megatron import build_megatron_plan
from ..cluster.stragglers import ClusterState, StragglerSpec
from ..cluster.trace import ablation_situations
from ..core.assignment import assign_layers, solve_lower_level
from ..core.grouping import group_gpus
from ..core.orchestration import order_pipeline_groups
from ..core.planner import MalleusPlanner
from ..parallel.plan import TPGroup
from ..simulator.executor import ExecutionSimulator
from ..simulator.session import theoretic_optimal_step_time
from .common import Workload, format_table, paper_workload


@dataclass
class AblationRow:
    """Step times for one straggler placement under each planner variant."""

    scenario: str
    straggler_rates: Dict[int, float]
    megatron: float
    layer_only: float
    layer_data: float
    layer_data_device: float
    full: float
    theoretic_optimum: float

    def gap(self, value: float) -> float:
        """``1 - T_opt / T_actual`` as reported under each Figure 9 bar."""
        if value <= 0 or math.isinf(value):
            return float("nan")
        return 1.0 - self.theoretic_optimum / value


@dataclass
class AblationResult:
    """All Figure 9 scenarios."""

    model: str
    rows: List[AblationRow]


def _uniform_pipelines(workload: Workload) -> List[List[TPGroup]]:
    """The uniform Megatron-style pipelines (groups in order), as TP groups."""
    config = search_megatron_config(workload.task, workload.cluster,
                                    workload.cost_model)
    if config is None:
        raise RuntimeError("no feasible Megatron configuration")
    plan = build_megatron_plan(config, workload.task, workload.cluster)
    return [
        [stage.group for stage in pipeline.stages]
        for pipeline in plan.pipelines
    ], plan


def run_ablation(model_name: str = "110b") -> AblationResult:
    """Run the Figure 9 ablation for one model."""
    workload = paper_workload(model_name)
    simulator = ExecutionSimulator(workload.cost_model)
    task = workload.task
    scenarios = ablation_situations(workload.cluster)

    uniform_pipelines, uniform_plan = _uniform_pipelines(workload)
    normal_rates = {g: 1.0 for g in workload.cluster.gpu_ids()}
    normal_time = simulator.simulate_step(
        uniform_plan, normal_rates, check_memory=False
    ).step_time

    rows: List[AblationRow] = []
    for name, situation in scenarios.items():
        state = situation.as_state(workload.cluster)
        rates = state.rate_map()

        megatron_time = simulator.simulate_step(
            uniform_plan, rates, check_memory=False
        ).step_time

        layer_only_time = _layer_only_time(workload, uniform_pipelines, rates,
                                           simulator)
        layer_data = solve_lower_level(
            uniform_pipelines, rates, workload.cost_model,
            task.model.num_layers, task.global_batch_size,
            all_gpu_ids=workload.cluster.gpu_ids(),
        )
        layer_data_time = _simulate(layer_data.plan, rates, simulator)

        device_time = _device_level_time(workload, rates, simulator,
                                         uniform_plan.dp_degree)

        planner = MalleusPlanner(task, workload.cluster, workload.cost_model)
        full = planner.plan(rates)
        full_time = _simulate(full.plan, rates, simulator)

        optimum = theoretic_optimal_step_time(normal_time, state)
        rows.append(
            AblationRow(
                scenario=name,
                straggler_rates={g: r for g, r in rates.items() if r > 1.0},
                megatron=megatron_time,
                layer_only=layer_only_time,
                layer_data=layer_data_time,
                layer_data_device=device_time,
                full=full_time,
                theoretic_optimum=optimum,
            )
        )
    return AblationResult(model=model_name, rows=rows)


def _simulate(plan, rates, simulator) -> float:
    """Simulated step time of a plan (inf when no plan is available)."""
    if plan is None:
        return math.inf
    return simulator.simulate_step(plan, rates, check_memory=False).step_time


def _layer_only_time(workload: Workload, uniform_pipelines, rates,
                     simulator) -> float:
    """Non-uniform layers, uniform data: solve Eq. 2 only."""
    from ..core.assignment import LayerAssignmentResult, build_plan

    task = workload.task
    dp = len(uniform_pipelines)
    layer_results = [
        assign_layers(groups, rates, workload.cost_model,
                      task.model.num_layers, task.micro_batch_size, dp)
        for groups in uniform_pipelines
    ]
    if any(not r.feasible for r in layer_results):
        return math.inf
    uniform_micro_batches = [task.num_micro_batches // dp] * dp
    plan = build_plan(
        uniform_pipelines, layer_results, uniform_micro_batches, rates,
        workload.cost_model, task.micro_batch_size, task.model.num_layers,
        task.global_batch_size, workload.cluster.gpu_ids(),
    )
    return _simulate(plan, rates, simulator)


def _device_level_time(workload: Workload, rates, simulator, dp) -> float:
    """Non-uniform layers + data + devices, but uniform stage counts.

    Groups are built with straggler isolation enabled; pipelines are formed
    by dealing the groups round-robin (every pipeline keeps the same number
    of groups), and the lower-level problem runs on top.
    """
    task = workload.task
    cost_model = workload.cost_model
    best = math.inf
    for tp_limit in (1, 2, 4, 8):
        grouping = group_gpus(workload.cluster, rates, cost_model, tp_limit)
        groups = sorted(
            grouping.groups,
            key=lambda g: -cost_model.group_straggling_rate(
                [rates[x] for x in g.gpu_ids], task.micro_batch_size
            ),
        )
        if len(groups) < dp:
            continue
        pipelines: List[List[TPGroup]] = [[] for _ in range(dp)]
        for index, group in enumerate(groups):
            pipelines[index % dp].append(group)
        ordered = [
            order_pipeline_groups(p, rates, cost_model, task.model.num_layers,
                                  task.micro_batch_size, dp)
            for p in pipelines
        ]
        result = solve_lower_level(
            ordered, rates, cost_model, task.model.num_layers,
            task.global_batch_size, all_gpu_ids=workload.cluster.gpu_ids(),
        )
        if result.feasible:
            best = min(best, _simulate(result.plan, rates, simulator))
    return best


def format_ablation(result: AblationResult) -> str:
    """Render the Figure 9 bars."""
    headers = ["Scenario", "Megatron", "w/ Layer", "w/ Layer+Data",
               "w/ +Device", "w/ +Stage (full)", "Theoretic Opt."]
    rows = []
    for row in result.rows:
        rows.append([
            row.scenario,
            f"{row.megatron:.1f} ({row.gap(row.megatron):+.0%})",
            f"{row.layer_only:.1f} ({row.gap(row.layer_only):+.0%})",
            f"{row.layer_data:.1f} ({row.gap(row.layer_data):+.0%})",
            f"{row.layer_data_device:.1f} ({row.gap(row.layer_data_device):+.0%})",
            f"{row.full:.1f} ({row.gap(row.full):+.0%})",
            f"{row.theoretic_optimum:.1f}",
        ])
    return format_table(headers, rows,
                        title=f"Figure 9 ({result.model}): non-uniform "
                              f"partitioning ablation (gap to optimum)")
