"""Case studies of discovered parallelization plans: Table 4.

Table 4 shows the plans Malleus deduces for two situations:

* the 110B model under S4 with straggling rates x0 = 5.42, x8 = 3.75 and
  x16 = 2.57 — Malleus isolates the stragglers on all three nodes, forming
  groups of 1, 2 and 4 GPUs, and balances two pipelines with 8 and 6 stages;
* the 32B model under S5 with x0..x7 = 2.62 (a whole straggling node) and
  x8 = 3.8 — Malleus removes the level-2 straggler and keeps the level-1
  node with fewer layers and less data.

The reproduction reports the same structural facts: which stragglers were
removed or isolated, the per-pipeline stage count and TP degrees, the layer
assignments and the micro-batch split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.trace import case_study_situation
from ..core.planner import MalleusPlanner
from ..parallel.plan import ParallelizationPlan
from .common import Workload, format_table, paper_workload


@dataclass
class CaseStudyResult:
    """The plan Malleus deduces for one case-study situation."""

    name: str
    model: str
    straggler_rates: Dict[int, float]
    plan: ParallelizationPlan
    estimated_step_time: float

    @property
    def removed_gpus(self) -> List[int]:
        """GPUs removed from training (assigned zero layers)."""
        return list(self.plan.removed_gpus)

    @property
    def micro_batches(self) -> List[int]:
        """Per-pipeline micro-batch counts ``m_i``."""
        return self.plan.micro_batches()

    @property
    def stage_counts(self) -> List[int]:
        """Per-pipeline stage counts ``PP_i``."""
        return [p.pp_degree for p in self.plan.pipelines]

    def group_sizes(self) -> List[List[int]]:
        """Per-pipeline TP degrees of every stage."""
        return [[s.tp_degree for s in p.stages] for p in self.plan.pipelines]

    def layer_assignment(self) -> List[List[int]]:
        """Per-pipeline layer counts ``l_{i,j}``."""
        return [p.layer_assignment() for p in self.plan.pipelines]

    def straggler_layer_share(self) -> float:
        """Fraction of all assigned layers hosted by stages with stragglers."""
        total, straggling = 0, 0
        threshold = 1.05
        for pipeline in self.plan.pipelines:
            for stage in pipeline.stages:
                total += stage.num_layers
                if any(self.straggler_rates.get(g, 1.0) > threshold
                       for g in stage.gpu_ids):
                    straggling += stage.num_layers
        return straggling / total if total else 0.0


def run_case_study(which: str = "110b-s4",
                   dp_degree: Optional[int] = None) -> CaseStudyResult:
    """Reproduce one of the Table 4 case studies (``"110b-s4"`` or ``"32b-s5"``)."""
    key = which.lower()
    model_name = "110b" if key.startswith("110b") else "32b"
    workload = paper_workload(model_name)
    situation = case_study_situation(key, workload.cluster)
    state = situation.as_state(workload.cluster)

    if dp_degree is None:
        dp_degree = 2 if model_name == "110b" else 4  # matches Table 4
    planner = MalleusPlanner(workload.task, workload.cluster, workload.cost_model)
    result = planner.plan(state.rate_map(), dp=dp_degree)
    if not result.feasible or result.plan is None:
        # Fall back to a free DP degree if the paper's DP is infeasible under
        # the analytic memory model.
        result = planner.plan(state.rate_map())
    if result.plan is None:
        raise RuntimeError(f"case study '{which}' produced no feasible plan")
    rates = {
        g: r for g, r in state.rate_map().items() if r > 1.0
    }
    return CaseStudyResult(
        name=key,
        model=model_name,
        straggler_rates=rates,
        plan=result.plan,
        estimated_step_time=result.estimated_step_time,
    )


def format_case_study(result: CaseStudyResult) -> str:
    """Render the Table 4-style description of one case study."""
    headers = ["Pipeline", "m_i", "Stage TP degrees", "Layer assignment"]
    rows = []
    for pipeline in result.plan.pipelines:
        rows.append([
            pipeline.pipeline_index,
            pipeline.num_micro_batches,
            " ".join(str(s.tp_degree) for s in pipeline.stages),
            " ".join(str(s.num_layers) for s in pipeline.stages),
        ])
    table = format_table(
        headers, rows,
        title=(
            f"Table 4 ({result.name}): stragglers "
            f"{sorted(result.straggler_rates.items())}, removed GPUs "
            f"{result.removed_gpus}, estimated step {result.estimated_step_time:.1f}s"
        ),
    )
    return table
