"""Shared helpers for the experiment harness.

Every experiment module exposes a ``run_*`` function returning a plain
dataclass (so tests can assert on the numbers) plus a ``format_*`` function
that renders the same rows/series the paper reports.  Benchmarks under
``benchmarks/`` simply call the ``run_*`` functions.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.stragglers import ClusterState
from ..cluster.topology import Cluster, paper_cluster
from ..core.costmodel import CostModelConfig, MalleusCostModel
from ..models.presets import paper_task
from ..models.spec import TrainingTask

#: GPU counts used by the paper per model size.
PAPER_GPU_COUNTS = {"32b": 32, "70b": 64, "110b": 64}

#: Situation names of the Figure 7 / Table 2 trace (excluding the final Normal).
PAPER_SITUATIONS = ["Normal", "S1", "S2", "S3", "S4", "S5", "S6"]


@dataclass
class Workload:
    """A (model, cluster, cost model) bundle used by most experiments."""

    name: str
    task: TrainingTask
    cluster: Cluster
    cost_model: MalleusCostModel

    @property
    def num_gpus(self) -> int:
        """Number of GPUs the workload trains on."""
        return self.cluster.num_gpus


def paper_workload(model_name: str,
                   cost_config: Optional[CostModelConfig] = None,
                   global_batch_size: int = 64) -> Workload:
    """Build the evaluation workload for one of the paper's models."""
    key = model_name.lower().replace("llama2-", "")
    if key not in PAPER_GPU_COUNTS:
        raise KeyError(f"unknown paper workload '{model_name}'")
    task = paper_task(key, global_batch_size=global_batch_size)
    cluster = paper_cluster(PAPER_GPU_COUNTS[key])
    cost_model = MalleusCostModel(task.model, cluster, cost_config)
    return Workload(name=key, task=task, cluster=cluster, cost_model=cost_model)


def normal_state(cluster: Cluster) -> ClusterState:
    """A straggler-free cluster state."""
    return ClusterState(cluster=cluster)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a simple fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def json_sanitize(value: object) -> object:
    """Replace non-finite floats with ``None``, recursively.

    ``json.dump`` happily serializes ``math.nan`` as the invalid-JSON
    token ``NaN`` (empty-sample percentiles from
    :func:`repro.runtime.service.percentile` are the usual source), which
    then poisons committed baselines.  Benchmark writers pass their
    payloads through here so those values land as ``null`` instead.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_sanitize(item) for item in value]
    return value


def dump_bench_json(payload: object, handle) -> None:
    """Write a benchmark payload with the repo's JSON conventions.

    Sanitizes non-finite floats to ``null`` (with ``allow_nan=False`` as
    a backstop so a leak fails loudly rather than writing invalid JSON),
    sorts keys, indents by two, and ends the file with a newline.
    """
    json.dump(json_sanitize(payload), handle, indent=2, sort_keys=True,
              allow_nan=False)
    handle.write("\n")


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's 'Avg. Improv.' metric)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))
