"""Cost-model validation by exhaustive enumeration: Figure 10 (Appendix A.1).

The paper fixes a DP4 x TP2 x PP2 hybrid-parallel strategy for the 32B model
with sequence length 1K, global batch size 512 and micro-batch size 1, adds
one level-1 straggler, and then *enumerates* the layers assigned to the
straggling stage (the partner stage receives the rest) and, given the best
layer split, the micro-batches assigned to the straggling pipeline.  For
every enumerated point it compares the cost model's estimate with the
measured time, and checks that the cost-model optimum coincides with the
enumerated optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.stragglers import ClusterState
from ..cluster.topology import paper_cluster
from ..core.costmodel import MalleusCostModel
from ..core.grouping import group_rate
from ..models.presets import get_model
from ..models.spec import TrainingTask
from ..parallel.plan import (
    ParallelizationPlan,
    PipelinePlan,
    PipelineStage,
    TPGroup,
)
from ..simulator.executor import ExecutionSimulator
from .common import format_table


@dataclass
class EnumerationPoint:
    """One enumerated layer or data split."""

    value: int  # layers (or micro-batches) given to the straggling stage/pipeline
    estimated_straggler_time: float
    actual_straggler_time: float
    estimated_normal_time: float
    actual_normal_time: float
    actual_end_to_end: float


@dataclass
class CostModelValidationResult:
    """Figure 10 data: the two enumeration sweeps."""

    layer_sweep: List[EnumerationPoint]
    data_sweep: List[EnumerationPoint]
    estimated_best_layers: int
    actual_best_layers: int
    estimated_best_micro_batches: int
    actual_best_micro_batches: int

    @property
    def layer_optimum_coincides(self) -> bool:
        """Whether the cost model picked the enumerated-best layer split."""
        return self.estimated_best_layers == self.actual_best_layers

    @property
    def data_optimum_coincides(self) -> bool:
        """Whether the cost model picked the enumerated-best data split."""
        return self.estimated_best_micro_batches == self.actual_best_micro_batches


def _build_fixed_plan(cluster, num_layers: int, straggler_layers: int,
                      straggler_micro_batches: int, normal_micro_batches: List[int],
                      micro_batch_size: int, global_batch_size: int,
                      dp: int, tp: int, pp: int) -> ParallelizationPlan:
    """DP4 x TP2 x PP2 plan with a custom split for the straggling pipeline."""
    gpu_ids = cluster.gpu_ids()
    pipelines: List[PipelinePlan] = []
    cursor = 0
    for i in range(dp):
        stages: List[PipelineStage] = []
        for j in range(pp):
            group = TPGroup(gpu_ids=tuple(gpu_ids[cursor:cursor + tp]))
            cursor += tp
            if i == 0:
                layers = straggler_layers if j == 0 else num_layers - straggler_layers
            else:
                layers = num_layers // pp
            stages.append(PipelineStage(group=group, num_layers=layers,
                                        stage_index=j + 1))
        m_i = straggler_micro_batches if i == 0 else normal_micro_batches[i - 1]
        pipelines.append(PipelinePlan(stages=stages, num_micro_batches=m_i,
                                      pipeline_index=i))
    return ParallelizationPlan(
        pipelines=pipelines,
        micro_batch_size=micro_batch_size,
        num_layers=num_layers,
        global_batch_size=global_batch_size,
    )


def run_costmodel_validation(
    straggler_rate: float = 2.6,
    dp: int = 4, tp: int = 2, pp: int = 2,
    seq_length: int = 1024,
    global_batch_size: int = 512,
    layer_step: int = 3,
    data_step: int = 6,
) -> CostModelValidationResult:
    """Run the Figure 10 enumeration experiment."""
    model = get_model("32b", seq_length=seq_length)
    cluster = paper_cluster(num_gpus=dp * tp * pp * 2)  # 16 GPUs in 2 nodes
    cluster = paper_cluster(num_gpus=max(8, dp * tp * pp))
    task = TrainingTask(model=model, global_batch_size=global_batch_size,
                        micro_batch_size=1)
    cost_model = MalleusCostModel(model, cluster)
    simulator = ExecutionSimulator(cost_model)
    rates = {g: 1.0 for g in cluster.gpu_ids()}
    rates[0] = straggler_rate  # the straggler sits in pipeline 0, stage 0

    num_layers = model.num_layers
    micro_batches_total = global_batch_size
    even_mb = micro_batches_total // dp

    # ------------------------------------------------------------------
    # Sweep 1: layers assigned to the straggling stage.
    # ------------------------------------------------------------------
    layer_sweep: List[EnumerationPoint] = []
    straggler_group_rate = cost_model.group_straggling_rate(
        [straggler_rate, 1.0][:tp] if tp > 1 else [straggler_rate], 1
    )
    normal_group_rate = cost_model.group_straggling_rate([1.0] * tp, 1)
    tau = cost_model.tau(1)
    for layers in range(layer_step, num_layers // 2 + 1, layer_step):
        plan = _build_fixed_plan(cluster, num_layers, layers, even_mb,
                                 [even_mb] * (dp - 1), 1, global_batch_size,
                                 dp, tp, pp)
        result = simulator.simulate_step(plan, rates, check_memory=False)
        schedule = result.schedules[0]
        est_straggler = straggler_group_rate * layers * tau * even_mb
        est_normal = normal_group_rate * (num_layers - layers) * tau * even_mb
        layer_sweep.append(
            EnumerationPoint(
                value=layers,
                estimated_straggler_time=est_straggler,
                actual_straggler_time=schedule.stage_finish_times[0],
                estimated_normal_time=est_normal,
                actual_normal_time=schedule.makespan,
                actual_end_to_end=result.step_time,
            )
        )

    best_actual_layers = min(layer_sweep, key=lambda p: p.actual_end_to_end).value
    best_estimated_layers = min(
        layer_sweep,
        key=lambda p: max(p.estimated_straggler_time, p.estimated_normal_time),
    ).value

    # ------------------------------------------------------------------
    # Sweep 2: micro-batches assigned to the straggling pipeline, with the
    # estimated-best layer split fixed.
    # ------------------------------------------------------------------
    data_sweep: List[EnumerationPoint] = []
    layers = best_estimated_layers
    straggler_pipeline_bottleneck = max(
        straggler_group_rate * layers,
        normal_group_rate * (num_layers - layers),
    )
    for m in range(data_step, micro_batches_total // dp * 2, data_step):
        remaining = micro_batches_total - m
        base, extra = divmod(remaining, dp - 1)
        others = [base + (1 if i < extra else 0) for i in range(dp - 1)]
        plan = _build_fixed_plan(cluster, num_layers, layers, m, others, 1,
                                 global_batch_size, dp, tp, pp)
        result = simulator.simulate_step(plan, rates, check_memory=False)
        est_straggler = straggler_pipeline_bottleneck * tau * m
        est_normal = normal_group_rate * (num_layers // pp) * tau * max(others)
        data_sweep.append(
            EnumerationPoint(
                value=m,
                estimated_straggler_time=est_straggler,
                actual_straggler_time=result.pipeline_times[0],
                estimated_normal_time=est_normal,
                actual_normal_time=max(result.pipeline_times[1:]),
                actual_end_to_end=result.step_time,
            )
        )
    best_actual_mb = min(data_sweep, key=lambda p: p.actual_end_to_end).value
    best_estimated_mb = min(
        data_sweep,
        key=lambda p: max(p.estimated_straggler_time, p.estimated_normal_time),
    ).value

    return CostModelValidationResult(
        layer_sweep=layer_sweep,
        data_sweep=data_sweep,
        estimated_best_layers=best_estimated_layers,
        actual_best_layers=best_actual_layers,
        estimated_best_micro_batches=best_estimated_mb,
        actual_best_micro_batches=best_actual_mb,
    )


def format_costmodel_validation(result: CostModelValidationResult) -> str:
    """Render the Figure 10 sweeps."""
    headers = ["Straggler layers", "Est. straggler", "Est. normal",
               "Actual normal", "Actual end-to-end"]
    rows = [
        [p.value, f"{p.estimated_straggler_time:.1f}",
         f"{p.estimated_normal_time:.1f}", f"{p.actual_normal_time:.1f}",
         f"{p.actual_end_to_end:.1f}"]
        for p in result.layer_sweep
    ]
    part1 = format_table(headers, rows,
                         title="Figure 10 (left): layer enumeration")
    headers2 = ["Straggler micro-batches", "Est. straggler", "Est. normal",
                "Actual straggler", "Actual end-to-end"]
    rows2 = [
        [p.value, f"{p.estimated_straggler_time:.1f}",
         f"{p.estimated_normal_time:.1f}", f"{p.actual_straggler_time:.1f}",
         f"{p.actual_end_to_end:.1f}"]
        for p in result.data_sweep
    ]
    part2 = format_table(headers2, rows2,
                         title="Figure 10 (right): data enumeration")
    summary = (
        f"layer optimum: estimated {result.estimated_best_layers}, "
        f"actual {result.actual_best_layers}; "
        f"data optimum: estimated {result.estimated_best_micro_batches}, "
        f"actual {result.actual_best_micro_batches}"
    )
    return "\n\n".join([part1, part2, summary])
