"""End-to-end evaluation: Table 2 and Figure 7.

For every model (32B/70B/110B) the paper runs Malleus, Megatron-LM and
DeepSpeed (each with and without restarts) through the trace
Normal -> S1 -> ... -> S6 -> Normal and reports the average step time per
situation, the speed-up of Malleus over every baseline, the MFU in the
straggler-free case, and the theoretic optimum.  This module regenerates
those rows with the simulated substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines.deepspeed import DeepSpeedBaseline, DeepSpeedRestartBaseline
from ..baselines.megatron import MegatronBaseline, MegatronRestartBaseline
from ..baselines.oobleck import OobleckBaseline
from ..cluster.trace import paper_trace
from ..runtime.malleus import MalleusSystem
from ..simulator.session import (
    TraceRunResult,
    run_trace,
    theoretic_optimal_step_time,
)
from .common import (
    PAPER_SITUATIONS,
    Workload,
    format_table,
    geometric_mean,
    paper_workload,
)


@dataclass
class EndToEndResult:
    """Table 2-style result for one model."""

    model: str
    situations: List[str]
    step_times: Dict[str, Dict[str, float]]  # framework -> situation -> seconds
    theoretic_optimum: Dict[str, float]
    mfu: Dict[str, float]
    adjustments: Dict[str, Dict[str, str]] = field(default_factory=dict)
    downtimes: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def improvement(self, baseline: str, situation: str) -> float:
        """Speed-up of Malleus over a baseline in one situation."""
        malleus = self.step_times["Malleus"][situation]
        other = self.step_times[baseline][situation]
        if malleus <= 0:
            return float("inf")
        return other / malleus

    def average_improvement(self, baseline: str,
                            situations: Optional[Sequence[str]] = None) -> float:
        """Geometric-mean speed-up over the straggler situations (Table 2)."""
        situations = situations or [s for s in self.situations if s != "Normal"]
        return geometric_mean(
            [self.improvement(baseline, s) for s in situations]
        )


def _framework_zoo(workload: Workload, include_oobleck: bool = False):
    """Instantiate the frameworks compared in Table 2."""
    task, cluster, cm = workload.task, workload.cluster, workload.cost_model
    frameworks = [
        MalleusSystem(task, cluster, cm),
        MegatronBaseline(task, cluster, cm),
        DeepSpeedBaseline(task, cluster, cm),
        MegatronRestartBaseline(task, cluster, cm),
        DeepSpeedRestartBaseline(task, cluster, cm),
    ]
    if include_oobleck:
        frameworks.append(OobleckBaseline(task, cluster, cm))
    return frameworks


def run_end_to_end(model_name: str = "32b",
                   situations: Optional[Sequence[str]] = None,
                   include_oobleck: bool = False,
                   steps_per_situation: int = 100) -> EndToEndResult:
    """Run the Table 2 / Figure 7 experiment for one model."""
    workload = paper_workload(model_name)
    situations = list(situations or PAPER_SITUATIONS)
    trace = paper_trace(workload.cluster, duration_steps=steps_per_situation,
                        include_trailing_normal=False)
    keep = [s for s in trace.situations if s.name in situations]
    trace.situations = keep

    step_times: Dict[str, Dict[str, float]] = {}
    adjustments: Dict[str, Dict[str, str]] = {}
    downtimes: Dict[str, Dict[str, float]] = {}
    mfu: Dict[str, float] = {}
    results: Dict[str, TraceRunResult] = {}

    for framework in _framework_zoo(workload, include_oobleck):
        run = run_trace(framework, trace)
        results[framework.name] = run
        step_times[framework.name] = run.as_dict()
        adjustments[framework.name] = {
            s.situation: s.adjustment.kind for s in run.situations
        }
        downtimes[framework.name] = {
            s.situation: s.adjustment.downtime for s in run.situations
        }
        normal_time = run.as_dict().get("Normal")
        if normal_time:
            mfu[framework.name] = workload.cost_model.mfu(
                normal_time, workload.task.global_batch_size, workload.num_gpus
            )

    malleus_normal = step_times["Malleus"]["Normal"]
    optimum = {}
    for situation in trace.situations:
        state = situation.as_state(workload.cluster)
        optimum[situation.name] = theoretic_optimal_step_time(
            malleus_normal, state
        )

    return EndToEndResult(
        model=model_name,
        situations=[s.name for s in trace.situations],
        step_times=step_times,
        theoretic_optimum=optimum,
        mfu=mfu,
        adjustments=adjustments,
        downtimes=downtimes,
    )


def format_end_to_end(result: EndToEndResult) -> str:
    """Render the Table 2 rows for one model."""
    headers = ["Framework"] + result.situations + ["Avg. Improv."]
    rows: List[List[object]] = []
    for framework, per_situation in result.step_times.items():
        row: List[object] = [framework]
        for situation in result.situations:
            value = per_situation.get(situation, float("nan"))
            row.append(f"{value:.1f}")
        if framework == "Malleus":
            row.append("-")
        else:
            row.append(f"{result.average_improvement(framework):.2f}x")
        rows.append(row)
    opt_row: List[object] = ["Theoretic Opt."]
    for situation in result.situations:
        opt_row.append(f"{result.theoretic_optimum[situation]:.1f}")
    opt_row.append("-")
    rows.append(opt_row)
    title = (
        f"Table 2 ({result.model}): averaged running time per step (seconds); "
        f"MFU (normal): "
        + ", ".join(f"{k}={v:.1%}" for k, v in sorted(result.mfu.items()))
    )
    return format_table(headers, rows, title=title)
