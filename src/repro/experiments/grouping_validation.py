"""Theorem 2 validation: Figure 11 (Appendix B.7).

When a heavy straggler is isolated from an 8-GPU group, the remaining 7 GPUs
can be re-grouped into groups of 4, 2 and 1 in six different ways; the
planner ranks them with the Theorem 2 estimator (``T ∝ 1 / Σ 1/y``) instead
of solving the full problem for each.  Figure 11 evaluates the three
grouping possibilities of Figure 5 on the 110B model (stragglers with rates
2.57, 5.42 and 12.53 inside one node) and shows that the estimator's ranking
agrees with the end-to-end measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.assignment import solve_lower_level
from ..core.grouping import (
    enumerate_consecutive_groupings,
    group_rate,
    harmonic_throughput,
    power_of_two_decomposition,
)
from ..core.orchestration import order_pipeline_groups
from ..core.planner import MalleusPlanner
from ..parallel.plan import TPGroup
from ..simulator.executor import ExecutionSimulator
from .common import Workload, format_table, paper_workload


@dataclass
class GroupingCandidate:
    """One grouping possibility of the straggling node."""

    label: str
    group_sizes: List[int]
    estimated_relative_time: float
    simulated_step_time: float


@dataclass
class GroupingValidationResult:
    """Figure 11 data."""

    model: str
    straggler_rates: Dict[int, float]
    candidates: List[GroupingCandidate]

    def ranking_agrees(self) -> bool:
        """Whether the Theorem 2 ranking matches the simulated ranking."""
        by_estimate = sorted(self.candidates,
                             key=lambda c: c.estimated_relative_time)
        by_simulation = sorted(self.candidates,
                               key=lambda c: c.simulated_step_time)
        return by_estimate[0].label == by_simulation[0].label


def run_grouping_validation(model_name: str = "110b",
                            straggler_rates: Sequence[float] = (2.57, 5.42, 12.53),
                            dp_degree: int = 2) -> GroupingValidationResult:
    """Run the Figure 11 experiment.

    The heaviest straggler is isolated; the remaining 7 GPUs of the node are
    re-grouped according to each enumerated possibility, the rest of the
    cluster keeps its even TP-8 grouping, and the lower-level problem plus
    the execution simulator evaluate every possibility end to end.
    """
    workload = paper_workload(model_name)
    cluster, cost_model, task = (workload.cluster, workload.cost_model,
                                 workload.task)
    simulator = ExecutionSimulator(cost_model)

    rates = {g: 1.0 for g in cluster.gpu_ids()}
    rates[0], rates[2], rates[4] = straggler_rates

    node0 = cluster.nodes[0].gpu_ids()
    heavy = max(node0, key=lambda g: rates[g])
    remaining = [g for g in node0 if g != heavy]
    sizes = power_of_two_decomposition(len(remaining), 8)
    candidates = enumerate_consecutive_groupings(remaining, rates, sizes)

    other_groups: List[TPGroup] = []
    for node in cluster.nodes[1:]:
        ids = node.gpu_ids()
        other_groups.append(TPGroup(gpu_ids=tuple(ids)))

    results: List[GroupingCandidate] = []
    for index, regrouping in enumerate(candidates, start=1):
        node_groups = [TPGroup(gpu_ids=(heavy,))] + regrouping
        all_groups = node_groups + other_groups
        throughput = harmonic_throughput(all_groups, rates, cost_model)
        estimated_relative = 1.0 / throughput if throughput > 0 else float("inf")

        # Deal the groups into pipelines (slowest groups spread out), order
        # them, and solve the lower-level problem to evaluate end to end.
        ordered_by_rate = sorted(
            all_groups,
            key=lambda g: -group_rate(g, rates, cost_model, task.micro_batch_size),
        )
        pipelines: List[List[TPGroup]] = [[] for _ in range(dp_degree)]
        for position, group in enumerate(ordered_by_rate):
            pipelines[position % dp_degree].append(group)
        ordered = [
            order_pipeline_groups(p, rates, cost_model, task.model.num_layers,
                                  task.micro_batch_size, dp_degree)
            for p in pipelines
        ]
        lower = solve_lower_level(
            ordered, rates, cost_model, task.model.num_layers,
            task.global_batch_size, all_gpu_ids=cluster.gpu_ids(),
        )
        simulated = float("inf")
        if lower.feasible and lower.plan is not None:
            simulated = simulator.simulate_step(
                lower.plan, rates, check_memory=False
            ).step_time
        results.append(
            GroupingCandidate(
                label=f"possibility-{index}",
                group_sizes=[g.size for g in node_groups],
                estimated_relative_time=estimated_relative,
                simulated_step_time=simulated,
            )
        )
    return GroupingValidationResult(
        model=model_name,
        straggler_rates={g: r for g, r in rates.items() if r > 1.0},
        candidates=results,
    )


def format_grouping_validation(result: GroupingValidationResult) -> str:
    """Render the Figure 11 bars."""
    headers = ["Grouping", "Node-0 group sizes", "Theorem-2 estimate (rel.)",
               "Simulated step (s)"]
    rows = []
    best_estimate = min(c.estimated_relative_time for c in result.candidates)
    for candidate in result.candidates:
        rows.append([
            candidate.label,
            "+".join(map(str, candidate.group_sizes)),
            f"{candidate.estimated_relative_time / best_estimate:.3f}",
            f"{candidate.simulated_step_time:.2f}",
        ])
    agree = "yes" if result.ranking_agrees() else "no"
    return format_table(
        headers, rows,
        title=f"Figure 11 ({result.model}): Theorem 2 vs simulation "
              f"(ranking agrees: {agree})",
    )
