"""Comparison with the fault-tolerant baseline Oobleck: Figure 8.

The paper runs the 32B model through the same six-situation trace with
Oobleck treating stragglers as faulty GPUs.  Figure 8 reports, for every
situation, the per-step time of Oobleck vs Malleus (Oobleck is 1.82-2.49x
slower) and, for every transition, whether Oobleck could migrate (a few
seconds) or had to restart (hundreds of seconds), next to Malleus's
migration cost (1.5-3.9 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.oobleck import OobleckBaseline
from ..cluster.trace import paper_trace
from ..runtime.malleus import MalleusSystem
from ..simulator.session import run_trace
from .common import Workload, format_table, paper_workload


@dataclass
class OobleckComparisonRow:
    """Per-situation comparison between Oobleck and Malleus."""

    situation: str
    oobleck_step_time: float
    malleus_step_time: float
    oobleck_adjustment: str
    oobleck_downtime: float
    malleus_adjustment: str
    malleus_downtime: float

    @property
    def slowdown(self) -> float:
        """How much slower Oobleck trains than Malleus."""
        if self.malleus_step_time <= 0:
            return float("inf")
        return self.oobleck_step_time / self.malleus_step_time


@dataclass
class OobleckComparisonResult:
    """Figure 8 data."""

    model: str
    rows: List[OobleckComparisonRow]

    def restart_transitions(self) -> List[str]:
        """Situations Oobleck entered through a full restart."""
        return [row.situation for row in self.rows
                if row.oobleck_adjustment == "restart"]

    def migrate_transitions(self) -> List[str]:
        """Situations Oobleck entered through template migration."""
        return [row.situation for row in self.rows
                if row.oobleck_adjustment == "migrate"]


def run_oobleck_comparison(model_name: str = "32b",
                           steps_per_situation: int = 100,
                           include_trailing_normal: bool = True
                           ) -> OobleckComparisonResult:
    """Run the Figure 8 experiment."""
    workload = paper_workload(model_name)
    trace = paper_trace(workload.cluster, duration_steps=steps_per_situation,
                        include_trailing_normal=include_trailing_normal)

    malleus = MalleusSystem(workload.task, workload.cluster, workload.cost_model)
    oobleck = OobleckBaseline(workload.task, workload.cluster, workload.cost_model)
    malleus_run = run_trace(malleus, trace)
    oobleck_run = run_trace(oobleck, trace)

    rows: List[OobleckComparisonRow] = []
    for m_res, o_res in zip(malleus_run.situations, oobleck_run.situations):
        rows.append(
            OobleckComparisonRow(
                situation=m_res.situation,
                oobleck_step_time=o_res.avg_step_time,
                malleus_step_time=m_res.avg_step_time,
                oobleck_adjustment=o_res.adjustment.kind,
                oobleck_downtime=o_res.adjustment.downtime,
                malleus_adjustment=m_res.adjustment.kind,
                malleus_downtime=m_res.adjustment.downtime,
            )
        )
    return OobleckComparisonResult(model=model_name, rows=rows)


def format_oobleck_comparison(result: OobleckComparisonResult) -> str:
    """Render the Figure 8 series."""
    headers = ["Situation", "Oobleck (s)", "Malleus (s)", "Slowdown",
               "Oobleck adj.", "Oobleck cost (s)", "Malleus cost (s)"]
    rows = []
    for row in result.rows:
        rows.append([
            row.situation,
            f"{row.oobleck_step_time:.1f}",
            f"{row.malleus_step_time:.1f}",
            f"{row.slowdown:.2f}x",
            row.oobleck_adjustment,
            f"{row.oobleck_downtime:.1f}",
            f"{row.malleus_downtime:.1f}",
        ])
    return format_table(headers, rows,
                        title=f"Figure 8 ({result.model}): Oobleck vs Malleus")
