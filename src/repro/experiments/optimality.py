"""Optimality and cost-model accuracy: Table 3.

Table 3 compares three ratios for every model and straggler situation:

* ``R_actual`` — measured step time with stragglers divided by the
  straggler-free step time;
* ``R_opt`` — the theoretic optimum of that ratio,
  ``N / ((N - n) + sum 1/x_i)``;
* ``R_est`` — the ratio predicted by the planner's cost model (the solution
  value of Eq. 1).

The paper reports ``1 - R_opt/R_actual`` within 10% everywhere and the
cost-model error ``1 - R_est/R_actual`` within 6.3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster.trace import paper_situation
from ..runtime.malleus import MalleusSystem
from ..simulator.session import theoretic_optimal_step_time
from .common import PAPER_SITUATIONS, format_table, paper_workload


@dataclass
class OptimalityRow:
    """One (model, situation) row of Table 3."""

    model: str
    situation: str
    r_actual: float
    r_opt: float
    r_est: float

    @property
    def optimality_gap(self) -> float:
        """``1 - R_opt / R_actual`` (distance from the theoretic optimum)."""
        return 1.0 - self.r_opt / self.r_actual

    @property
    def estimation_error(self) -> float:
        """``1 - R_est / R_actual`` (cost-model error)."""
        return 1.0 - self.r_est / self.r_actual


@dataclass
class OptimalityResult:
    """All Table 3 rows for one model."""

    model: str
    rows: List[OptimalityRow]

    def worst_optimality_gap(self) -> float:
        """Largest distance from the theoretic optimum."""
        return max(abs(row.optimality_gap) for row in self.rows)

    def worst_estimation_error(self) -> float:
        """Largest cost-model error."""
        return max(abs(row.estimation_error) for row in self.rows)


def run_optimality(model_name: str = "32b",
                   situations: Optional[Sequence[str]] = None) -> OptimalityResult:
    """Run the Table 3 experiment for one model."""
    workload = paper_workload(model_name)
    situations = [s for s in (situations or PAPER_SITUATIONS) if s != "Normal"]

    system = MalleusSystem(workload.task, workload.cluster, workload.cost_model)
    normal_state = paper_situation("Normal", workload.cluster).as_state(
        workload.cluster
    )
    system.setup(normal_state)
    normal_time = system.step_time(normal_state)
    normal_estimate = system.estimated_step_time(normal_state.rate_map())

    rows: List[OptimalityRow] = []
    for name in situations:
        state = paper_situation(name, workload.cluster).as_state(workload.cluster)
        system.on_situation_change(state)
        actual = system.step_time(state)
        estimated = system.estimated_step_time(state.rate_map())
        optimum = theoretic_optimal_step_time(normal_time, state)
        rows.append(
            OptimalityRow(
                model=model_name,
                situation=name,
                r_actual=actual / normal_time,
                r_opt=optimum / normal_time,
                r_est=estimated / normal_estimate
                if normal_estimate > 0 else float("nan"),
            )
        )
    # Reset to normal between runs is not needed: the Malleus system adapts to
    # each situation independently via re-planning.
    return OptimalityResult(model=model_name, rows=rows)


def format_optimality(result: OptimalityResult) -> str:
    """Render the Table 3 rows for one model."""
    headers = ["Situation", "R_actual", "R_opt", "1-R_opt/R_actual",
               "R_est", "1-R_est/R_actual"]
    rows = []
    for row in result.rows:
        rows.append([
            row.situation,
            f"{row.r_actual:.2f}",
            f"{row.r_opt:.2f}",
            f"{row.optimality_gap:+.2%}",
            f"{row.r_est:.2f}",
            f"{row.estimation_error:+.2%}",
        ])
    return format_table(headers, rows,
                        title=f"Table 3 ({result.model}): optimality and "
                              f"cost-model accuracy")
