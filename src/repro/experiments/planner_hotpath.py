"""Planner hot-path overhaul: before/after planning-time benchmark.

The planner overhaul (memoized cost-model kernels, bound-based candidate
pruning, deferred plan materialization, heap-based division kernels) targets
the re-planning loop of §5: re-plan latency bounds how fast the system can
react to a straggler event, so planning time is a first-class metric
(Appendix A.2, Table 5).

This experiment runs the same Table-5-scale scenarios twice:

* **before** — the pre-overhaul reference configuration: a cost model with
  ``enable_caching=False`` plus a planner with ``enable_pruning=False`` and
  ``legacy_kernels=True`` (rescanning water-filling, deep-copy local
  search, uncached min-max solves, plan materialization on every improving
  candidate);
* **after** — the defaults.

Both must produce *identical* plans (estimated step time, per-stage layer
splits, micro-batch splits, removed GPUs); the speedup is pure overhead
removal, not a change in plan quality.  Results are written as
``BENCH_planner_hotpath.json`` so ``benchmarks/regression_gate.py`` can
compare a fresh run against the committed baseline.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster, make_cluster
from ..cluster.trace import paper_situation
from ..core.costmodel import MalleusCostModel
from ..core.planner import MalleusPlanner, PlanningResult
from ..models.presets import paper_task
from ..models.spec import TrainingTask
from ..solvers.minmax import clear_minmax_cache
from .common import format_table, paper_workload
from .planning_scalability import _scaled_straggler_rates


@dataclass
class HotpathRow:
    """Before/after planning time of one scenario."""

    scenario: str
    num_gpus: int
    before_seconds: float
    after_seconds: float
    speedup: float
    estimated_step_time: float
    plans_identical: bool

    def as_dict(self) -> Dict:
        """JSON-serialisable view."""
        return asdict(self)


@dataclass
class PlannerHotpathResult:
    """All rows of the hot-path benchmark."""

    rows: List[HotpathRow]

    def row(self, scenario: str) -> HotpathRow:
        """Look up a scenario by name."""
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)


def _plan_signature(result: PlanningResult):
    """Everything that defines a plan's quality, for equality checks."""
    if result.plan is None:
        return (None, result.estimated_step_time)
    plan = result.plan
    return (
        result.estimated_step_time,
        plan.micro_batch_size,
        plan.stage_shape(),
        plan.micro_batches(),
        plan.removed_gpus,
        [[stage.gpu_ids for stage in pipeline.stages]
         for pipeline in plan.pipelines],
    )


def _timed_plan(task: TrainingTask, cluster: Cluster, rates: Dict[int, float],
                dp: Optional[int], tp_candidates: Sequence[int], legacy: bool,
                repeats: int) -> Tuple[float, PlanningResult]:
    """Best-of-``repeats`` wall-clock time of one planner configuration.

    Every repeat starts cold: a fresh cost model and a cleared process-global
    min-max memo, so the before/after comparison (and the regression gate's
    numbers) do not depend on what ran earlier in the process.
    """
    best = float("inf")
    result: Optional[PlanningResult] = None
    for _ in range(repeats):
        clear_minmax_cache()
        cost_model = MalleusCostModel(task.model, cluster,
                                      enable_caching=not legacy)
        planner = MalleusPlanner(
            task, cluster, cost_model, tp_candidates=tp_candidates,
            enable_pruning=not legacy, legacy_kernels=legacy,
        )
        start = time.perf_counter()
        result = planner.plan(rates, dp=dp)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_planner_hotpath(repeats: int = 2,
                        large_num_gpus: int = 1024,
                        large_batch_size: int = 1024,
                        large_num_stragglers: int = 32) -> PlannerHotpathResult:
    """Run the before/after comparison on the Table-5 scenarios."""
    rows: List[HotpathRow] = []

    # 64 GPUs, scenario S3 (full TP enumeration, DP pinned to 2).
    workload = paper_workload("110b")
    state = paper_situation("S3", workload.cluster).as_state(workload.cluster)
    rates = state.rate_map()
    before_s, before = _timed_plan(
        workload.task, workload.cluster, rates, 2, (1, 2, 4, 8),
        legacy=True, repeats=1,
    )
    after_s, after = _timed_plan(
        workload.task, workload.cluster, rates, 2, (1, 2, 4, 8),
        legacy=False, repeats=repeats,
    )
    rows.append(HotpathRow(
        scenario="64 GPUs (S3)",
        num_gpus=workload.num_gpus,
        before_seconds=before_s,
        after_seconds=after_s,
        speedup=before_s / after_s if after_s > 0 else float("inf"),
        estimated_step_time=after.estimated_step_time,
        plans_identical=_plan_signature(before) == _plan_signature(after),
    ))

    # 1024 GPUs, 32 stragglers, global batch 1024 (largest configuration).
    large_cluster = make_cluster(num_nodes=large_num_gpus // 8, gpus_per_node=8)
    large_task = paper_task("110b", global_batch_size=large_batch_size)
    large_rates = _scaled_straggler_rates(large_num_gpus,
                                          large_num_stragglers, 8)
    before_s, before = _timed_plan(
        large_task, large_cluster, large_rates, 8, (8,),
        legacy=True, repeats=1,
    )
    after_s, after = _timed_plan(
        large_task, large_cluster, large_rates, 8, (8,),
        legacy=False, repeats=repeats,
    )
    rows.append(HotpathRow(
        scenario=f"{large_num_gpus} GPUs",
        num_gpus=large_num_gpus,
        before_seconds=before_s,
        after_seconds=after_s,
        speedup=before_s / after_s if after_s > 0 else float("inf"),
        estimated_step_time=after.estimated_step_time,
        plans_identical=_plan_signature(before) == _plan_signature(after),
    ))
    return PlannerHotpathResult(rows=rows)


def format_planner_hotpath(result: PlannerHotpathResult) -> str:
    """Render the before/after rows."""
    headers = ["Scenario", "Before", "After", "Speedup", "Identical plan"]
    rows = []
    for row in result.rows:
        rows.append([
            row.scenario,
            f"{row.before_seconds:.3f}s",
            f"{row.after_seconds:.3f}s",
            f"{row.speedup:.1f}x",
            "yes" if row.plans_identical else "NO",
        ])
    return format_table(headers, rows,
                        title="Planner hot-path: before/after planning time")


def write_hotpath_json(result: PlannerHotpathResult, path: str) -> None:
    """Persist a run for the regression gate."""
    payload = {"rows": [row.as_dict() for row in result.rows]}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_hotpath_json(path: str) -> PlannerHotpathResult:
    """Load a persisted run."""
    with open(path) as handle:
        payload = json.load(handle)
    return PlannerHotpathResult(
        rows=[HotpathRow(**row) for row in payload["rows"]]
    )
