"""Planner hot-path overhaul: before/after planning-time benchmark.

The planner overhaul (memoized cost-model kernels, bound-based candidate
pruning, deferred plan materialization, heap-based division kernels) targets
the re-planning loop of §5: re-plan latency bounds how fast the system can
react to a straggler event, so planning time is a first-class metric
(Appendix A.2, Table 5).

This experiment runs the same Table-5-scale scenarios twice:

* **before** — the pre-overhaul reference configuration: a cost model with
  ``enable_caching=False`` plus a planner with ``enable_pruning=False`` and
  ``legacy_kernels=True`` (rescanning water-filling, deep-copy local
  search, uncached min-max solves, plan materialization on every improving
  candidate);
* **after** — the defaults.

Both must produce *identical* plans (estimated step time, per-stage layer
splits, micro-batch splits, removed GPUs); the speedup is pure overhead
removal, not a change in plan quality.

A second family of rows measures the **incremental re-planning engine**
(``repro.runtime.replan``) on single-GPU rate-shift events at 1024, 4096
and 8192 GPUs: *before* is a full (already-overhauled, warm-cache) re-plan
for the shifted rates, *after* is ``plan_incremental`` repairing the
incumbent plan.  For these rows ``plans_identical`` means the repaired
plan's estimated step time matches the full re-plan within the engine's
default epsilon (1%).

Results are written as ``BENCH_planner_hotpath.json`` so the regression
gate (``benchmarks/regression_gate.py`` or ``python -m
repro.experiments.planner_hotpath --gate``) can compare a fresh run
against the committed baseline.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster, make_cluster
from ..cluster.trace import paper_situation
from ..core.costmodel import MalleusCostModel
from ..core.planner import MalleusPlanner, PlanningResult
from ..core.sweep import SweepConfig
from ..models.presets import paper_task
from ..models.spec import TrainingTask
from ..runtime.replan import ReplanEngine
from ..solvers.minmax import clear_minmax_cache
from .common import format_table, paper_workload
from .planning_scalability import _scaled_straggler_rates


@dataclass
class HotpathRow:
    """Before/after planning time of one scenario."""

    scenario: str
    num_gpus: int
    before_seconds: float
    after_seconds: float
    speedup: float
    estimated_step_time: float
    plans_identical: bool

    def as_dict(self) -> Dict:
        """JSON-serialisable view."""
        return asdict(self)


@dataclass
class PlannerHotpathResult:
    """All rows of the hot-path benchmark."""

    rows: List[HotpathRow]

    def row(self, scenario: str) -> HotpathRow:
        """Look up a scenario by name."""
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)


def _plan_signature(result: PlanningResult):
    """Everything that defines a plan's quality, for equality checks."""
    if result.plan is None:
        return (None, result.estimated_step_time)
    plan = result.plan
    return (
        result.estimated_step_time,
        plan.micro_batch_size,
        plan.stage_shape(),
        plan.micro_batches(),
        plan.removed_gpus,
        [[stage.gpu_ids for stage in pipeline.stages]
         for pipeline in plan.pipelines],
    )


def _timed_plan(task: TrainingTask, cluster: Cluster, rates: Dict[int, float],
                dp: Optional[int], tp_candidates: Sequence[int], legacy: bool,
                repeats: int) -> Tuple[float, PlanningResult]:
    """Best-of-``repeats`` wall-clock time of one planner configuration.

    Every repeat starts cold: a fresh cost model and a cleared process-global
    min-max memo, so the before/after comparison (and the regression gate's
    numbers) do not depend on what ran earlier in the process.
    """
    best = float("inf")
    result: Optional[PlanningResult] = None
    for _ in range(repeats):
        clear_minmax_cache()
        cost_model = MalleusCostModel(task.model, cluster,
                                      enable_caching=not legacy)
        planner = MalleusPlanner(
            task, cluster, cost_model, tp_candidates=tp_candidates,
            enable_pruning=not legacy, legacy_kernels=legacy,
        )
        start = time.perf_counter()
        result = planner.plan(rates, dp=dp)
        best = min(best, time.perf_counter() - start)
    return best, result


def _timed_incremental(task: TrainingTask, cluster: Cluster,
                       rates: Dict[int, float], dp: Optional[int],
                       tp_candidates: Sequence[int],
                       repeats: int, epsilon: float = 0.01,
                       ) -> Tuple[float, float, float, bool]:
    """Full-replan vs incremental-repair timing for a single-GPU rate shift.

    Plans once to establish the incumbent (warming the cost-model caches —
    the realistic re-planning condition), shifts one existing straggler's
    rate by 20% (a ``minor_rate_shift``: the GPU stays a straggler and
    stays isolated), then times a full warm re-plan and an incremental
    repair for the shifted rates.  The min-max memo is cleared before every
    timed run so neither side rides the other's solutions.  Returns
    ``(full_seconds, incremental_seconds, repaired_step_time, within_eps)``.
    """
    cost_model = MalleusCostModel(task.model, cluster)
    planner = MalleusPlanner(task, cluster, cost_model,
                             tp_candidates=tp_candidates)
    incumbent = planner.plan(rates, dp=dp)
    shifted = dict(rates)
    gpu = next(g for g in sorted(shifted) if shifted[g] > 1.0)
    shifted[gpu] = shifted[gpu] * 1.2

    full_best = float("inf")
    full_result: Optional[PlanningResult] = None
    for _ in range(repeats):
        clear_minmax_cache()
        start = time.perf_counter()
        full_result = planner.plan(shifted, dp=dp)
        full_best = min(full_best, time.perf_counter() - start)

    inc_best = float("inf")
    outcome = None
    for _ in range(repeats):
        clear_minmax_cache()
        start = time.perf_counter()
        outcome = planner.plan_incremental(incumbent.context, shifted, dp=dp)
        inc_best = min(inc_best, time.perf_counter() - start)

    repaired = outcome.result.estimated_step_time
    within = abs(repaired / full_result.estimated_step_time - 1.0) <= epsilon
    return full_best, inc_best, repaired, within


def _timed_warm_sweep(task: TrainingTask, cluster: Cluster,
                      rates: Dict[int, float], shifted: Dict[int, float],
                      repeats: int, epsilon: float = 0.01,
                      ) -> Tuple[float, float, float, bool]:
    """Cold vs warm-cache repair sweep for one ``group_change`` event.

    The 64-GPU regime is where the repair sweep hurts most: the bounds
    cannot prune (every candidate's bound sits below the incumbent), so a
    ``group_change`` sweep re-solves almost the full candidate set.  The
    warm arm runs the same repair with ``SweepConfig(warm_cache=True)``:
    unchanged-grouping candidates replay their cached division and known-
    infeasible candidates are skipped outright (both primed by the initial
    plan), while near-winner representatives are re-solved cold by the
    contender pass.  Each repeat rebuilds the planner and re-primes the
    cache untimed, so the timed repair never rides a previous repeat's
    entries.  Returns ``(cold_seconds, warm_seconds, warm_step, within)``.
    """
    def one(sweep_config) -> Tuple[float, float]:
        best = float("inf")
        step = float("inf")
        for _ in range(repeats):
            clear_minmax_cache()
            planner = MalleusPlanner(
                task, cluster, MalleusCostModel(task.model, cluster),
                sweep_config=sweep_config,
            )
            engine = ReplanEngine(planner)
            context = planner.plan(rates).context
            start = time.perf_counter()
            outcome = engine.repair(context, shifted)
            best = min(best, time.perf_counter() - start)
            step = outcome.result.estimated_step_time
            planner.close()
        return best, step

    cold_seconds, cold_step = one(SweepConfig())
    warm_seconds, warm_step = one(SweepConfig(warm_cache=True))
    within = abs(warm_step / cold_step - 1.0) <= epsilon
    return cold_seconds, warm_seconds, warm_step, within


def run_planner_hotpath(repeats: int = 2,
                        large_num_gpus: int = 1024,
                        large_batch_size: int = 1024,
                        large_num_stragglers: int = 32,
                        incremental_scales: Sequence[int] = (1024, 4096, 8192),
                        ) -> PlannerHotpathResult:
    """Run the before/after comparison on the Table-5 scenarios."""
    rows: List[HotpathRow] = []

    # 64 GPUs, scenario S3 (full TP enumeration, DP pinned to 2).
    workload = paper_workload("110b")
    state = paper_situation("S3", workload.cluster).as_state(workload.cluster)
    rates = state.rate_map()
    before_s, before = _timed_plan(
        workload.task, workload.cluster, rates, 2, (1, 2, 4, 8),
        legacy=True, repeats=1,
    )
    after_s, after = _timed_plan(
        workload.task, workload.cluster, rates, 2, (1, 2, 4, 8),
        legacy=False, repeats=repeats,
    )
    rows.append(HotpathRow(
        scenario="64 GPUs (S3)",
        num_gpus=workload.num_gpus,
        before_seconds=before_s,
        after_seconds=after_s,
        speedup=before_s / after_s if after_s > 0 else float("inf"),
        estimated_step_time=after.estimated_step_time,
        plans_identical=_plan_signature(before) == _plan_signature(after),
    ))

    # 1024 GPUs, 32 stragglers, global batch 1024 (largest configuration).
    large_cluster = make_cluster(num_nodes=large_num_gpus // 8, gpus_per_node=8)
    large_task = paper_task("110b", global_batch_size=large_batch_size)
    large_rates = _scaled_straggler_rates(large_num_gpus,
                                          large_num_stragglers, 8)
    before_s, before = _timed_plan(
        large_task, large_cluster, large_rates, 8, (8,),
        legacy=True, repeats=1,
    )
    after_s, after = _timed_plan(
        large_task, large_cluster, large_rates, 8, (8,),
        legacy=False, repeats=repeats,
    )
    rows.append(HotpathRow(
        scenario=f"{large_num_gpus} GPUs",
        num_gpus=large_num_gpus,
        before_seconds=before_s,
        after_seconds=after_s,
        speedup=before_s / after_s if after_s > 0 else float("inf"),
        estimated_step_time=after.estimated_step_time,
        plans_identical=_plan_signature(before) == _plan_signature(after),
    ))

    # Warm-cache sweep row: a group_change event at 64 GPUs (the regime
    # where the bounds cannot prune, so the repair sweep re-solves nearly
    # every candidate) — cold sweep vs SweepConfig(warm_cache=True), full
    # DP enumeration.  GPU 17 turning into a straggler re-forms its node's
    # groups at every TP limit, exercising the cache's fingerprint guard,
    # the infeasibility memo and the contender re-solve together.
    shifted = dict(rates)
    shifted[17] = 2.6
    cold_s, warm_s, warm_step, within = _timed_warm_sweep(
        workload.task, workload.cluster, rates, shifted, repeats=repeats,
    )
    rows.append(HotpathRow(
        scenario="64 GPUs (warm-cache sweep)",
        num_gpus=workload.num_gpus,
        before_seconds=cold_s,
        after_seconds=warm_s,
        speedup=cold_s / warm_s if warm_s > 0 else float("inf"),
        estimated_step_time=warm_step,
        plans_identical=within,
    ))

    # Incremental-repair rows: full warm re-plan vs plan_incremental for a
    # single-GPU rate-shift event, at the Table-5 configuration and beyond
    # (3% stragglers, TP pinned to 8, DP pinned to 8 — as in the paper's
    # scalability study).
    for num_gpus in incremental_scales:
        cluster = make_cluster(num_nodes=num_gpus // 8, gpus_per_node=8)
        task = paper_task("110b", global_batch_size=large_batch_size)
        scale_rates = _scaled_straggler_rates(
            num_gpus, max(1, num_gpus // 32), 8
        )
        full_s, inc_s, step_time, within = _timed_incremental(
            task, cluster, scale_rates, 8, (8,), repeats=repeats,
        )
        rows.append(HotpathRow(
            scenario=f"{num_gpus} GPUs (incremental)",
            num_gpus=num_gpus,
            before_seconds=full_s,
            after_seconds=inc_s,
            speedup=full_s / inc_s if inc_s > 0 else float("inf"),
            estimated_step_time=step_time,
            plans_identical=within,
        ))
    return PlannerHotpathResult(rows=rows)


def format_planner_hotpath(result: PlannerHotpathResult) -> str:
    """Render the before/after rows."""
    headers = ["Scenario", "Before", "After", "Speedup", "Identical plan"]
    rows = []
    for row in result.rows:
        rows.append([
            row.scenario,
            f"{row.before_seconds:.3f}s",
            f"{row.after_seconds:.3f}s",
            f"{row.speedup:.1f}x",
            "yes" if row.plans_identical else "NO",
        ])
    return format_table(headers, rows,
                        title="Planner hot-path: before/after planning time")


def write_hotpath_json(result: PlannerHotpathResult, path: str) -> None:
    """Persist a run for the regression gate."""
    payload = {"rows": [row.as_dict() for row in result.rows]}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_hotpath_json(path: str) -> PlannerHotpathResult:
    """Load a persisted run."""
    with open(path) as handle:
        payload = json.load(handle)
    return PlannerHotpathResult(
        rows=[HotpathRow(**row) for row in payload["rows"]]
    )


# ----------------------------------------------------------------------
# Regression gate (shared by benchmarks/regression_gate.py and the
# ``python -m repro.experiments.planner_hotpath --gate`` entry point)
# ----------------------------------------------------------------------
def gate_against_baseline(fresh_path: str, baseline_path: str,
                          tolerance: float = 0.20,
                          min_delta: float = 0.010) -> int:
    """Compare a fresh run against the committed baseline.

    Fails (returns 1) when the optimised planner's time regresses by more
    than ``tolerance`` (plus ``min_delta`` seconds of absolute slack for
    timer jitter on millisecond-scale rows) on any baseline scenario, or
    when a run reports non-identical plans / out-of-epsilon repairs.
    Timings are machine-local: the gate compares runs on the *same*
    machine, not across hardware.
    """
    fresh = read_hotpath_json(fresh_path)
    baseline = read_hotpath_json(baseline_path)

    failures = []
    for base_row in baseline.rows:
        try:
            fresh_row = fresh.row(base_row.scenario)
        except KeyError:
            failures.append(f"{base_row.scenario}: missing from fresh run")
            continue
        if not fresh_row.plans_identical:
            failures.append(f"{base_row.scenario}: before/after plans differ")
        limit = max(base_row.after_seconds * (1.0 + tolerance),
                    base_row.after_seconds + min_delta)
        status = "ok" if fresh_row.after_seconds <= limit else "REGRESSED"
        print(f"{base_row.scenario:>24}: baseline "
              f"{base_row.after_seconds:.3f}s, fresh "
              f"{fresh_row.after_seconds:.3f}s (limit {limit:.3f}s) "
              f"[{status}]")
        if fresh_row.after_seconds > limit:
            failures.append(
                f"{base_row.scenario}: planning time "
                f"{fresh_row.after_seconds:.3f}s exceeds "
                f"{limit:.3f}s (baseline {base_row.after_seconds:.3f}s "
                f"+ {tolerance:.0%})"
            )

    if failures:
        print("regression_gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("regression_gate: OK")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the hot-path benchmark and optionally gate it.

    ``python -m repro.experiments.planner_hotpath`` runs the experiment and
    writes the fresh JSON; ``--gate`` additionally compares it against the
    committed baseline (one-liner perf gate), and ``--update`` refreshes
    the baseline from the fresh run instead of comparing.
    """
    import argparse
    import os
    import shutil

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--gate", action="store_true",
                        help="compare the fresh run against the baseline")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the fresh run")
    parser.add_argument("--fresh", default="benchmarks/BENCH_planner_hotpath.json",
                        help="where to write the fresh run "
                             "(default: %(default)s)")
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/BENCH_planner_hotpath.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression (default: 20%%)")
    parser.add_argument("--min-delta", type=float, default=0.010,
                        help="absolute timer-jitter slack in seconds "
                             "(default: %(default)ss)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of-N timing repeats (default: 2)")
    args = parser.parse_args(argv)

    result = run_planner_hotpath(repeats=args.repeats)
    print(format_planner_hotpath(result))
    os.makedirs(os.path.dirname(args.fresh) or ".", exist_ok=True)
    write_hotpath_json(result, args.fresh)
    print(f"fresh run written to {args.fresh}")
    if args.update:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated at {args.baseline}")
        return 0
    if args.gate:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; seed it with --update")
            return 1
        return gate_against_baseline(args.fresh, args.baseline,
                                     args.tolerance, args.min_delta)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via make gate
    import sys

    sys.exit(main())
