"""Planner hot-path overhaul: before/after planning-time benchmark.

The planner overhaul (memoized cost-model kernels, bound-based candidate
pruning, deferred plan materialization, heap-based division kernels) targets
the re-planning loop of §5: re-plan latency bounds how fast the system can
react to a straggler event, so planning time is a first-class metric
(Appendix A.2, Table 5).

This experiment runs the same Table-5-scale scenarios twice:

* **before** — the pre-overhaul reference configuration: a cost model with
  ``enable_caching=False`` plus a planner with ``enable_pruning=False`` and
  ``legacy_kernels=True`` (rescanning water-filling, deep-copy local
  search, uncached min-max solves, plan materialization on every improving
  candidate);
* **after** — the defaults.

Both must produce *identical* plans (estimated step time, per-stage layer
splits, micro-batch splits, removed GPUs); the speedup is pure overhead
removal, not a change in plan quality.

A second family of rows measures the **incremental re-planning engine**
(``repro.runtime.replan``) on single-GPU rate-shift events at 1024, 4096
and 8192 GPUs: *before* is a full (already-overhauled, warm-cache) re-plan
for the shifted rates, *after* is ``plan_incremental`` repairing the
incumbent plan.  For these rows ``plans_identical`` means the repaired
plan's estimated step time matches the full re-plan within the engine's
default epsilon (1%).

A third family — the PR-7 **array-kernel rows** at 16384 and 65536
GPUs — compares the numpy kernel backend (``kernels="numpy"``) against
the python reference kernels on a cold full plan and on an incremental
repair.  At and below ``--reference-max-gpus`` (default 16384) these
rows demand exact bit-identity (``plans_identical`` is strict signature
equality); above it the python reference arm is skipped — a single
reference plan at 64k costs minutes — and the rows are gated on
absolute latency ceilings alone.  All kernel rows carry the per-kernel
wall-time breakdown (``kernel_seconds``, printed as a table by
``--profile``); the committed baseline pins the scale targets — 16k
cold plan under 1s / repair under 50ms, 64k cold plan under 5s /
repair under 150ms.  ``--only 16384`` runs and gates just the 16k pair
(``make gate-hotpath-16k``); ``--only 65536`` the 64k pair
(``make gate-hotpath-64k``).

Results are written as ``BENCH_planner_hotpath.json`` so the regression
gate (``benchmarks/regression_gate.py`` or ``python -m
repro.experiments.planner_hotpath --gate``) can compare a fresh run
against the committed baseline.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster, make_cluster
from ..cluster.trace import paper_situation
from ..core.costmodel import MalleusCostModel
from ..core.planner import MalleusPlanner, PlanningResult
from ..core.sweep import SweepConfig
from ..models.presets import paper_task
from ..models.spec import TrainingTask
from ..runtime.replan import ReplanEngine
from ..solvers.minmax import clear_minmax_cache
from .common import dump_bench_json, format_table, paper_workload
from .planning_scalability import _scaled_straggler_rates


@dataclass
class HotpathRow:
    """Before/after planning time of one scenario."""

    scenario: str
    num_gpus: int
    before_seconds: float
    after_seconds: float
    speedup: float
    estimated_step_time: float
    plans_identical: bool
    #: Per-kernel wall seconds of the *after* run (``division`` /
    #: ``minmax`` / ``grouping``, from ``PlanningTimeBreakdown.kernels``)
    #: so the speedup is attributable instead of one opaque total.
    #: ``None`` on rows predating the kernel clock.
    kernel_seconds: Optional[Dict[str, float]] = None

    def as_dict(self) -> Dict:
        """JSON-serialisable view."""
        return asdict(self)


@dataclass
class PlannerHotpathResult:
    """All rows of the hot-path benchmark."""

    rows: List[HotpathRow]

    def row(self, scenario: str) -> HotpathRow:
        """Look up a scenario by name."""
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)


def _plan_signature(result: PlanningResult):
    """Everything that defines a plan's quality, for equality checks."""
    if result.plan is None:
        return (None, result.estimated_step_time)
    plan = result.plan
    return (
        result.estimated_step_time,
        plan.micro_batch_size,
        plan.stage_shape(),
        plan.micro_batches(),
        plan.removed_gpus,
        [[stage.gpu_ids for stage in pipeline.stages]
         for pipeline in plan.pipelines],
    )


def _timed_plan(task: TrainingTask, cluster: Cluster, rates: Dict[int, float],
                dp: Optional[int], tp_candidates: Sequence[int], legacy: bool,
                repeats: int) -> Tuple[float, PlanningResult]:
    """Best-of-``repeats`` wall-clock time of one planner configuration.

    Every repeat starts cold: a fresh cost model and a cleared process-global
    min-max memo, so the before/after comparison (and the regression gate's
    numbers) do not depend on what ran earlier in the process.
    """
    best = float("inf")
    result: Optional[PlanningResult] = None
    for _ in range(repeats):
        clear_minmax_cache()
        cost_model = MalleusCostModel(task.model, cluster,
                                      enable_caching=not legacy)
        planner = MalleusPlanner(
            task, cluster, cost_model, tp_candidates=tp_candidates,
            enable_pruning=not legacy, legacy_kernels=legacy,
        )
        start = time.perf_counter()
        result = planner.plan(rates, dp=dp)
        best = min(best, time.perf_counter() - start)
    return best, result


def _timed_incremental(task: TrainingTask, cluster: Cluster,
                       rates: Dict[int, float], dp: Optional[int],
                       tp_candidates: Sequence[int],
                       repeats: int, epsilon: float = 0.01,
                       ) -> Tuple[float, float, float, bool]:
    """Full-replan vs incremental-repair timing for a single-GPU rate shift.

    Plans once to establish the incumbent (warming the cost-model caches —
    the realistic re-planning condition), shifts one existing straggler's
    rate by 20% (a ``minor_rate_shift``: the GPU stays a straggler and
    stays isolated), then times a full warm re-plan and an incremental
    repair for the shifted rates.  The min-max memo is cleared before every
    timed run so neither side rides the other's solutions.  Returns
    ``(full_seconds, incremental_seconds, repaired_step_time, within_eps)``.
    """
    cost_model = MalleusCostModel(task.model, cluster)
    planner = MalleusPlanner(task, cluster, cost_model,
                             tp_candidates=tp_candidates)
    incumbent = planner.plan(rates, dp=dp)
    shifted = dict(rates)
    gpu = next(g for g in sorted(shifted) if shifted[g] > 1.0)
    shifted[gpu] = shifted[gpu] * 1.2

    full_best = float("inf")
    full_result: Optional[PlanningResult] = None
    for _ in range(repeats):
        clear_minmax_cache()
        start = time.perf_counter()
        full_result = planner.plan(shifted, dp=dp)
        full_best = min(full_best, time.perf_counter() - start)

    inc_best = float("inf")
    outcome = None
    for _ in range(repeats):
        clear_minmax_cache()
        start = time.perf_counter()
        outcome = planner.plan_incremental(incumbent.context, shifted, dp=dp)
        inc_best = min(inc_best, time.perf_counter() - start)

    repaired = outcome.result.estimated_step_time
    within = abs(repaired / full_result.estimated_step_time - 1.0) <= epsilon
    return full_best, inc_best, repaired, within


def _timed_warm_sweep(task: TrainingTask, cluster: Cluster,
                      rates: Dict[int, float], shifted: Dict[int, float],
                      repeats: int, epsilon: float = 0.01,
                      ) -> Tuple[float, float, float, bool]:
    """Cold vs warm-cache repair sweep for one ``group_change`` event.

    The 64-GPU regime is where the repair sweep hurts most: the bounds
    cannot prune (every candidate's bound sits below the incumbent), so a
    ``group_change`` sweep re-solves almost the full candidate set.  The
    warm arm runs the same repair with ``SweepConfig(warm_cache=True)``:
    unchanged-grouping candidates replay their cached division and known-
    infeasible candidates are skipped outright (both primed by the initial
    plan), while near-winner representatives are re-solved cold by the
    contender pass.  Each repeat rebuilds the planner and re-primes the
    cache untimed, so the timed repair never rides a previous repeat's
    entries.  Returns ``(cold_seconds, warm_seconds, warm_step, within)``.
    """
    def one(sweep_config) -> Tuple[float, float]:
        best = float("inf")
        step = float("inf")
        for _ in range(repeats):
            clear_minmax_cache()
            planner = MalleusPlanner(
                task, cluster, MalleusCostModel(task.model, cluster),
                sweep_config=sweep_config,
            )
            engine = ReplanEngine(planner)
            context = planner.plan(rates).context
            start = time.perf_counter()
            outcome = engine.repair(context, shifted)
            best = min(best, time.perf_counter() - start)
            step = outcome.result.estimated_step_time
            planner.close()
        return best, step

    cold_seconds, cold_step = one(SweepConfig())
    warm_seconds, warm_step = one(SweepConfig(warm_cache=True))
    within = abs(warm_step / cold_step - 1.0) <= epsilon
    return cold_seconds, warm_seconds, warm_step, within


def _timed_kernel_backends(task: TrainingTask, cluster: Cluster,
                           rates: Dict[int, float], dp: Optional[int],
                           tp_candidates: Sequence[int], repeats: int,
                           reference: bool = True,
                           ) -> Tuple[HotpathRow, HotpathRow]:
    """numpy-vs-python kernel rows at one scale: cold plan and repair.

    *before* is the reference python-kernel configuration, *after* the
    numpy array kernels; both rows demand **bit-identical** plans
    (exact :func:`_plan_signature` equality, not the repair rows' 1%
    epsilon) because the array kernels are contractually exact.  The
    repair row mirrors :func:`_timed_incremental`'s protocol — shift one
    existing straggler by 20% and repair the incumbent with the DP
    degree pinned — with each backend repairing its own incumbent.

    ``reference=False`` skips the python arms entirely (the 64k regime,
    where a single reference plan costs minutes): the rows then report
    ``before_seconds=0.0``/``speedup=0.0`` and ``plans_identical=True``
    vacuously — bit-identity is asserted at every scale where the
    reference arm *does* run, and the kernels themselves carry the
    equivalence contract in the test suite.
    """
    num_gpus = len(rates)

    def build(kernels: str) -> MalleusPlanner:
        cost_model = MalleusCostModel(task.model, cluster, kernels=kernels)
        return MalleusPlanner(task, cluster, cost_model,
                              tp_candidates=tp_candidates, kernels=kernels)

    # Cold full plan, python reference (timed once — it is the slow arm).
    planner_py: Optional[MalleusPlanner] = None
    ref: Optional[PlanningResult] = None
    before_cold = 0.0
    if reference:
        clear_minmax_cache()
        planner_py = build("python")
        start = time.perf_counter()
        ref = planner_py.plan(rates, dp=dp)
        before_cold = time.perf_counter() - start

    # Cold full plan, numpy kernels (best of ``repeats``, each fully cold).
    after_cold = float("inf")
    result: Optional[PlanningResult] = None
    planner_np: Optional[MalleusPlanner] = None
    for _ in range(repeats):
        clear_minmax_cache()
        planner_np = build("numpy")
        start = time.perf_counter()
        result = planner_np.plan(rates, dp=dp)
        after_cold = min(after_cold, time.perf_counter() - start)
    cold_row = HotpathRow(
        scenario=f"{num_gpus} GPUs (numpy cold)",
        num_gpus=num_gpus,
        before_seconds=before_cold,
        after_seconds=after_cold,
        speedup=(before_cold / after_cold
                 if reference and after_cold > 0 else 0.0),
        estimated_step_time=result.estimated_step_time,
        plans_identical=(_plan_signature(ref) == _plan_signature(result)
                         if reference else True),
        kernel_seconds=dict(result.breakdown.kernels),
    )

    # Incremental repair of the incumbent after a 20% shift of one
    # existing straggler (a minor_rate_shift), DP pinned.
    shifted = dict(rates)
    gpu = next(g for g in sorted(shifted) if shifted[g] > 1.0)
    shifted[gpu] = shifted[gpu] * 1.2

    out_py = None
    before_rep = 0.0
    if reference:
        clear_minmax_cache()
        start = time.perf_counter()
        out_py = planner_py.plan_incremental(ref.context, shifted, dp=dp)
        before_rep = time.perf_counter() - start

    after_rep = float("inf")
    out_np = None
    for _ in range(repeats):
        clear_minmax_cache()
        start = time.perf_counter()
        out_np = planner_np.plan_incremental(result.context, shifted, dp=dp)
        after_rep = min(after_rep, time.perf_counter() - start)
    repair_row = HotpathRow(
        scenario=f"{num_gpus} GPUs (numpy repair)",
        num_gpus=num_gpus,
        before_seconds=before_rep,
        after_seconds=after_rep,
        speedup=(before_rep / after_rep
                 if reference and after_rep > 0 else 0.0),
        estimated_step_time=out_np.result.estimated_step_time,
        plans_identical=(_plan_signature(out_py.result)
                         == _plan_signature(out_np.result)
                         if reference else True),
        kernel_seconds=dict(out_np.result.breakdown.kernels),
    )
    return cold_row, repair_row


def run_planner_hotpath(repeats: int = 2,
                        large_num_gpus: int = 1024,
                        large_batch_size: int = 1024,
                        large_num_stragglers: int = 32,
                        incremental_scales: Sequence[int] = (1024, 4096, 8192),
                        kernel_scales: Sequence[int] = (16384, 65536),
                        reference_max_gpus: int = 16384,
                        only: Optional[str] = None,
                        ) -> PlannerHotpathResult:
    """Run the before/after comparison on the Table-5 scenarios.

    ``only`` filters scenarios by substring (e.g. ``"16384"`` runs just
    the 16k numpy-kernel rows — the pair ``make gate-hotpath-16k``
    gates — and ``"65536"`` the 64k rows of ``make gate-hotpath-64k``).
    ``reference_max_gpus`` caps the scale at which the cold python
    reference arm runs: above it (the 65536-GPU rows by default) only
    the numpy arm is timed, which is what makes a 64k benchmark
    affordable — a single python reference plan at that scale costs
    minutes.  Bit-identity is still asserted at every scale at or below
    the cap.
    """
    rows: List[HotpathRow] = []

    def want(scenario: str) -> bool:
        return only is None or only in scenario

    # Array-kernel rows (3% stragglers, TP and DP pinned to 8): the
    # 16384-GPU scale target — cold full plan under 1s, repair under
    # 50ms, plans bit-identical to the python reference kernels — and
    # the 65536-GPU row (8192 nodes) gated on absolute ceilings alone
    # (cold plan under 5s, repair under 150ms; no reference arm).
    for kernel_scale in kernel_scales:
        if not want(f"{kernel_scale} GPUs (numpy"):
            continue
        kernel_cluster = make_cluster(num_nodes=kernel_scale // 8,
                                      gpus_per_node=8)
        kernel_task = paper_task("110b", global_batch_size=large_batch_size)
        kernel_rates = _scaled_straggler_rates(
            kernel_scale, max(1, kernel_scale // 32), 8
        )
        # Min-of-repeats with one extra round: the repair row is a
        # millisecond-scale measurement gated by an absolute ceiling, so
        # it gets a little more protection against scheduler jitter.
        cold_row, repair_row = _timed_kernel_backends(
            kernel_task, kernel_cluster, kernel_rates, 8, (8,),
            repeats=max(repeats, 3),
            reference=kernel_scale <= reference_max_gpus,
        )
        rows.extend([cold_row, repair_row])

    # 64 GPUs, scenario S3 (full TP enumeration, DP pinned to 2).
    workload = None
    rates = None
    if want("64 GPUs (S3)") or want("64 GPUs (warm-cache sweep)"):
        workload = paper_workload("110b")
        state = paper_situation(
            "S3", workload.cluster).as_state(workload.cluster)
        rates = state.rate_map()
    if want("64 GPUs (S3)"):
        before_s, before = _timed_plan(
            workload.task, workload.cluster, rates, 2, (1, 2, 4, 8),
            legacy=True, repeats=1,
        )
        after_s, after = _timed_plan(
            workload.task, workload.cluster, rates, 2, (1, 2, 4, 8),
            legacy=False, repeats=repeats,
        )
        rows.append(HotpathRow(
            scenario="64 GPUs (S3)",
            num_gpus=workload.num_gpus,
            before_seconds=before_s,
            after_seconds=after_s,
            speedup=before_s / after_s if after_s > 0 else float("inf"),
            estimated_step_time=after.estimated_step_time,
            plans_identical=_plan_signature(before) == _plan_signature(after),
        ))

    # 1024 GPUs, 32 stragglers, global batch 1024 (largest configuration).
    if want(f"{large_num_gpus} GPUs"):
        large_cluster = make_cluster(num_nodes=large_num_gpus // 8,
                                     gpus_per_node=8)
        large_task = paper_task("110b", global_batch_size=large_batch_size)
        large_rates = _scaled_straggler_rates(large_num_gpus,
                                              large_num_stragglers, 8)
        before_s, before = _timed_plan(
            large_task, large_cluster, large_rates, 8, (8,),
            legacy=True, repeats=1,
        )
        after_s, after = _timed_plan(
            large_task, large_cluster, large_rates, 8, (8,),
            legacy=False, repeats=repeats,
        )
        rows.append(HotpathRow(
            scenario=f"{large_num_gpus} GPUs",
            num_gpus=large_num_gpus,
            before_seconds=before_s,
            after_seconds=after_s,
            speedup=before_s / after_s if after_s > 0 else float("inf"),
            estimated_step_time=after.estimated_step_time,
            plans_identical=_plan_signature(before) == _plan_signature(after),
        ))

    # Warm-cache sweep row: a group_change event at 64 GPUs (the regime
    # where the bounds cannot prune, so the repair sweep re-solves nearly
    # every candidate) — cold sweep vs SweepConfig(warm_cache=True), full
    # DP enumeration.  GPU 17 turning into a straggler re-forms its node's
    # groups at every TP limit, exercising the cache's fingerprint guard,
    # the infeasibility memo and the contender re-solve together.
    if want("64 GPUs (warm-cache sweep)"):
        shifted = dict(rates)
        shifted[17] = 2.6
        cold_s, warm_s, warm_step, within = _timed_warm_sweep(
            workload.task, workload.cluster, rates, shifted, repeats=repeats,
        )
        rows.append(HotpathRow(
            scenario="64 GPUs (warm-cache sweep)",
            num_gpus=workload.num_gpus,
            before_seconds=cold_s,
            after_seconds=warm_s,
            speedup=cold_s / warm_s if warm_s > 0 else float("inf"),
            estimated_step_time=warm_step,
            plans_identical=within,
        ))

    # Incremental-repair rows: full warm re-plan vs plan_incremental for a
    # single-GPU rate-shift event, at the Table-5 configuration and beyond
    # (3% stragglers, TP pinned to 8, DP pinned to 8 — as in the paper's
    # scalability study).
    for num_gpus in incremental_scales:
        if not want(f"{num_gpus} GPUs (incremental)"):
            continue
        cluster = make_cluster(num_nodes=num_gpus // 8, gpus_per_node=8)
        task = paper_task("110b", global_batch_size=large_batch_size)
        scale_rates = _scaled_straggler_rates(
            num_gpus, max(1, num_gpus // 32), 8
        )
        full_s, inc_s, step_time, within = _timed_incremental(
            task, cluster, scale_rates, 8, (8,), repeats=repeats,
        )
        rows.append(HotpathRow(
            scenario=f"{num_gpus} GPUs (incremental)",
            num_gpus=num_gpus,
            before_seconds=full_s,
            after_seconds=inc_s,
            speedup=full_s / inc_s if inc_s > 0 else float("inf"),
            estimated_step_time=step_time,
            plans_identical=within,
        ))
    return PlannerHotpathResult(rows=rows)


def format_planner_hotpath(result: PlannerHotpathResult) -> str:
    """Render the before/after rows.

    Rows with a kernel clock additionally show where the *after* run's
    solver time went (``division``/``minmax``/``grouping`` seconds).
    """
    with_kernels = any(row.kernel_seconds for row in result.rows)
    headers = ["Scenario", "Before", "After", "Speedup", "Identical plan"]
    if with_kernels:
        headers.append("Kernel seconds")
    rows = []
    for row in result.rows:
        skipped_reference = row.before_seconds == 0.0 and row.speedup == 0.0
        cells = [
            row.scenario,
            "-" if skipped_reference else f"{row.before_seconds:.3f}s",
            f"{row.after_seconds:.3f}s",
            "-" if skipped_reference else f"{row.speedup:.1f}x",
            "yes" if row.plans_identical else "NO",
        ]
        if with_kernels:
            if row.kernel_seconds:
                cells.append(" ".join(
                    f"{name}={seconds:.3f}"
                    for name, seconds in sorted(row.kernel_seconds.items())
                ))
            else:
                cells.append("-")
        rows.append(cells)
    return format_table(headers, rows,
                        title="Planner hot-path: before/after planning time")


def format_kernel_profile(result: PlannerHotpathResult) -> str:
    """Per-kernel wall-time table of every row that carries a kernel clock.

    Breaks each numpy row's total planning time into the named solver
    kernels recorded by ``PlanningTimeBreakdown.kernels`` (``division``,
    ``grouping``, ``minmax``, ...) plus the unattributed remainder, so
    scalar-tail hunts start from measured shares instead of guesses.
    """
    headers = ["Scenario", "Kernel", "Seconds", "Share"]
    rows = []
    for row in result.rows:
        if not row.kernel_seconds:
            continue
        total = row.after_seconds
        attributed = 0.0
        first = True
        for name, seconds in sorted(row.kernel_seconds.items(),
                                    key=lambda item: -item[1]):
            attributed += seconds
            share = seconds / total if total > 0 else 0.0
            rows.append([row.scenario if first else "", name,
                         f"{seconds:.4f}s", f"{share:>5.1%}"])
            first = False
        other = max(0.0, total - attributed)
        share = other / total if total > 0 else 0.0
        rows.append(["", "(other)", f"{other:.4f}s", f"{share:>5.1%}"])
        rows.append(["", "total", f"{total:.4f}s", "100.0%"])
    if not rows:
        return "no rows carry a kernel clock (run the numpy-kernel rows)"
    return format_table(headers, rows,
                        title="Planner kernel profile (numpy arm)")


def write_hotpath_json(result: PlannerHotpathResult, path: str) -> None:
    """Persist a run for the regression gate."""
    payload = {"rows": [row.as_dict() for row in result.rows]}
    with open(path, "w") as handle:
        dump_bench_json(payload, handle)


def read_hotpath_json(path: str) -> PlannerHotpathResult:
    """Load a persisted run."""
    with open(path) as handle:
        payload = json.load(handle)
    return PlannerHotpathResult(
        rows=[HotpathRow(**row) for row in payload["rows"]]
    )


# ----------------------------------------------------------------------
# Regression gate (shared by benchmarks/regression_gate.py and the
# ``python -m repro.experiments.planner_hotpath --gate`` entry point)
# ----------------------------------------------------------------------
#: Absolute wall-clock ceilings (seconds) for rows whose acceptance
#: criterion is a fixed latency target rather than "no regression":
#: the 16384-GPU array-kernel rows must plan cold in under a second and
#: repair a single-GPU rate shift in under 50 ms; the 65536-GPU rows
#: (numpy arm only — the reference arm is capped at 16k by
#: ``--reference-max-gpus``) under 5 s and 150 ms.  Enforced on top of
#: the relative regression check below.
ABSOLUTE_CEILINGS = {
    "16384 GPUs (numpy cold)": 1.0,
    "16384 GPUs (numpy repair)": 0.050,
    "65536 GPUs (numpy cold)": 5.0,
    "65536 GPUs (numpy repair)": 0.150,
}


def gate_against_baseline(fresh_path: str, baseline_path: str,
                          tolerance: float = 0.20,
                          min_delta: float = 0.010,
                          only: Optional[str] = None) -> int:
    """Compare a fresh run against the committed baseline.

    Fails (returns 1) when the optimised planner's time regresses by more
    than ``tolerance`` (plus ``min_delta`` seconds of absolute slack for
    timer jitter on millisecond-scale rows) on any baseline scenario,
    when a row exceeds its :data:`ABSOLUTE_CEILINGS` latency target, or
    when a run reports non-identical plans / out-of-epsilon repairs.
    Timings are machine-local: the gate compares runs on the *same*
    machine, not across hardware.  ``only`` restricts the gate to
    baseline scenarios containing the substring (matching the benchmark's
    own ``only`` filter, so a partial fresh run gates its own rows).
    """
    fresh = read_hotpath_json(fresh_path)
    baseline = read_hotpath_json(baseline_path)

    failures = []
    for base_row in baseline.rows:
        if only is not None and only not in base_row.scenario:
            continue
        try:
            fresh_row = fresh.row(base_row.scenario)
        except KeyError:
            failures.append(f"{base_row.scenario}: missing from fresh run")
            continue
        if not fresh_row.plans_identical:
            failures.append(f"{base_row.scenario}: before/after plans differ")
        limit = max(base_row.after_seconds * (1.0 + tolerance),
                    base_row.after_seconds + min_delta)
        ceiling = ABSOLUTE_CEILINGS.get(base_row.scenario)
        if ceiling is not None:
            limit = min(limit, ceiling)
        status = "ok" if fresh_row.after_seconds <= limit else "REGRESSED"
        print(f"{base_row.scenario:>24}: baseline "
              f"{base_row.after_seconds:.3f}s, fresh "
              f"{fresh_row.after_seconds:.3f}s (limit {limit:.3f}s) "
              f"[{status}]")
        if fresh_row.after_seconds > limit:
            failures.append(
                f"{base_row.scenario}: planning time "
                f"{fresh_row.after_seconds:.3f}s exceeds "
                f"{limit:.3f}s (baseline {base_row.after_seconds:.3f}s "
                f"+ {tolerance:.0%})"
            )

    if failures:
        print("regression_gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("regression_gate: OK")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the hot-path benchmark and optionally gate it.

    ``python -m repro.experiments.planner_hotpath`` runs the experiment and
    writes the fresh JSON; ``--gate`` additionally compares it against the
    committed baseline (one-liner perf gate), and ``--update`` refreshes
    the baseline from the fresh run instead of comparing.
    """
    import argparse
    import os
    import shutil

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--gate", action="store_true",
                        help="compare the fresh run against the baseline")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the fresh run")
    parser.add_argument("--fresh", default="benchmarks/BENCH_planner_hotpath.json",
                        help="where to write the fresh run "
                             "(default: %(default)s)")
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/BENCH_planner_hotpath.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative regression (default: 20%%)")
    parser.add_argument("--min-delta", type=float, default=0.010,
                        help="absolute timer-jitter slack in seconds "
                             "(default: %(default)ss)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of-N timing repeats (default: 2)")
    parser.add_argument("--reference-max-gpus", type=int, default=16384,
                        help="largest scale at which the cold python "
                             "reference arm runs (default: %(default)s); "
                             "rows above it time only the numpy arm")
    parser.add_argument("--profile", action="store_true",
                        help="print the per-kernel wall-time table "
                             "(PlanningTimeBreakdown.kernels) for every "
                             "row that carries a kernel clock")
    parser.add_argument("--only", default=None,
                        help="run/gate only scenarios containing this "
                             "substring (e.g. '16384' for the numpy-kernel "
                             "rows); partial runs write to a side file and "
                             "never refresh the full baseline")
    args = parser.parse_args(argv)

    fresh_path = args.fresh
    if args.only is not None and fresh_path == parser.get_default("fresh"):
        # Keep partial runs from shadowing the full fresh file.
        fresh_path = fresh_path.replace(".json", f".only-{args.only}.json")

    result = run_planner_hotpath(repeats=args.repeats, only=args.only,
                                 reference_max_gpus=args.reference_max_gpus)
    print(format_planner_hotpath(result))
    if args.profile:
        print(format_kernel_profile(result))
    os.makedirs(os.path.dirname(fresh_path) or ".", exist_ok=True)
    write_hotpath_json(result, fresh_path)
    print(f"fresh run written to {fresh_path}")
    if args.update:
        if args.only is not None:
            print("refusing --update with --only: a partial run cannot "
                  "replace the full baseline")
            return 1
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(fresh_path, args.baseline)
        print(f"baseline updated at {args.baseline}")
        return 0
    if args.gate:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; seed it with --update")
            return 1
        return gate_against_baseline(fresh_path, args.baseline,
                                     args.tolerance, args.min_delta,
                                     only=args.only)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via make gate
    import sys

    sys.exit(main())
