"""Planning-algorithm scalability: Table 5 (Appendix A.2).

Table 5 breaks down the planner's wall-clock time into its four phases
(GPU grouping, pipeline division, group ordering, work assignment) for the
64-GPU S3 scenario and for a simulated 1024-GPU cluster (128 nodes) training
the 110B model with a global batch size of 1024 and 32 stragglers (~3% of
the cluster).

``extra_scales`` extends the study past the paper (4096 and 8192 GPUs in
the benchmark), and ``incremental_timings`` additionally measures the
incremental re-planning engine on each large-cluster scenario: after the
full plan, one straggler's rate shifts by 20% (a ``minor_rate_shift``) and
the row records how long ``plan_incremental`` takes to repair the
incumbent versus the full re-plan the runtime would otherwise pay.

Preset sweep (PR 5)
-------------------
:func:`run_preset_scalability` drives the repair engine through *generated*
straggler traces (:mod:`repro.cluster.scenarios` presets) at 512-8192 GPU
scale under several sweep-engine configurations — serial vs process
backend, cold vs warm-start cache — recording per-event winner step times
(fully deterministic: the gate baseline pins them) and cumulative repair
latency.  ``python -m repro.experiments.planning_scalability --gate``
compares a fresh run against the committed baseline
(``benchmarks/baselines/BENCH_preset_scalability.json``): every
configuration must select bit-identical winners, event for event.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.scenarios import generate_trace
from ..cluster.topology import make_cluster
from ..cluster.trace import paper_situation
from ..core.costmodel import MalleusCostModel
from ..core.planner import MalleusPlanner, PlanningTimeBreakdown
from ..core.sweep import SweepConfig
from ..models.presets import paper_task
from ..runtime.replan import ReplanEngine
from ..solvers.minmax import clear_minmax_cache
from .common import dump_bench_json, format_table, paper_workload


@dataclass
class PlanningScalabilityRow:
    """One row of Table 5."""

    scenario: str
    num_gpus: int
    num_stragglers: int
    breakdown: Dict[str, float]
    estimated_step_time: float
    feasible: bool
    #: Incremental-repair timing for a single-GPU rate shift (0 when not
    #: measured): full warm re-plan vs ``plan_incremental``.
    full_replan_seconds: float = 0.0
    incremental_seconds: float = 0.0
    incremental_event: str = ""

    @property
    def total_time(self) -> float:
        """Total planning time."""
        return self.breakdown.get("total", 0.0)

    @property
    def incremental_speedup(self) -> float:
        """Full-replan over incremental-repair latency (0 when unmeasured)."""
        if self.incremental_seconds <= 0:
            return 0.0
        return self.full_replan_seconds / self.incremental_seconds


@dataclass
class PlanningScalabilityResult:
    """Table 5 data."""

    rows: List[PlanningScalabilityRow]

    def row(self, scenario: str) -> PlanningScalabilityRow:
        """Look up a scenario by name."""
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)


def _scaled_straggler_rates(num_gpus: int, num_stragglers: int,
                            gpus_per_node: int, seed: int = 7) -> Dict[int, float]:
    """Straggler placement for the large-cluster scenario.

    Stragglers are spread across distinct nodes (one per node where possible,
    mirroring the paper's per-GPU granularity) with rates drawn from the
    calibrated level-1/2/3 values.
    """
    rng = random.Random(seed)
    rates = {g: 1.0 for g in range(num_gpus)}
    levels = [2.6, 3.8, 5.42]
    num_nodes = num_gpus // gpus_per_node
    for index in range(num_stragglers):
        node = index % num_nodes
        local = (index // num_nodes) % gpus_per_node
        gpu = node * gpus_per_node + local
        rates[gpu] = rng.choice(levels)
    return rates


def _large_scale_row(num_gpus: int, batch_size: int, num_stragglers: int,
                     dp_degree: Optional[int],
                     incremental_timings: bool) -> PlanningScalabilityRow:
    """Plan one simulated large-cluster scenario (TP pinned to 8)."""
    cluster = make_cluster(num_nodes=num_gpus // 8, gpus_per_node=8)
    task = paper_task("110b", global_batch_size=batch_size)
    cost_model = MalleusCostModel(task.model, cluster)
    # At these scales the paper (and practice) trains the 110B model with
    # TP 8; enumerating smaller TP limits only multiplies the planning time
    # without ever winning, so the scalability study pins TP to 8.
    planner = MalleusPlanner(task, cluster, cost_model, tp_candidates=(8,))
    rates = _scaled_straggler_rates(num_gpus, num_stragglers, 8)
    result = planner.plan(rates, dp=dp_degree)
    row = PlanningScalabilityRow(
        scenario=f"{num_gpus} GPUs",
        num_gpus=num_gpus,
        num_stragglers=num_stragglers,
        breakdown=result.breakdown.as_dict(),
        estimated_step_time=result.estimated_step_time,
        feasible=result.feasible,
    )
    if incremental_timings and result.feasible:
        shifted = dict(rates)
        gpu = next(g for g in sorted(shifted) if shifted[g] > 1.0)
        shifted[gpu] = shifted[gpu] * 1.2
        # Clear the process-global min-max memo before each timed run so
        # neither side rides solutions the other just computed.
        clear_minmax_cache()
        start = time.perf_counter()
        planner.plan(shifted, dp=dp_degree)
        row.full_replan_seconds = time.perf_counter() - start
        clear_minmax_cache()
        start = time.perf_counter()
        outcome = planner.plan_incremental(result.context, shifted,
                                           dp=dp_degree)
        row.incremental_seconds = time.perf_counter() - start
        row.incremental_event = f"{outcome.event_kind}/{outcome.repair_tier}"
    return row


def run_planning_scalability(
    large_num_gpus: int = 1024,
    large_batch_size: int = 1024,
    large_num_stragglers: int = 32,
    large_dp_degree: Optional[int] = 8,
    extra_scales: Sequence[int] = (),
    incremental_timings: bool = False,
) -> PlanningScalabilityResult:
    """Run the Table 5 experiment (64-GPU S3 plus the 1024-GPU simulation).

    ``extra_scales`` adds further simulated cluster sizes (e.g. 4096, 8192)
    at the same ~3% straggler ratio; ``incremental_timings`` measures the
    repair engine on every large-cluster row (see the module docstring).
    """
    rows: List[PlanningScalabilityRow] = []

    # ------------------------------------------------------------------
    # 64 GPUs, scenario S3 (the paper's reference point).
    # ------------------------------------------------------------------
    workload = paper_workload("110b")
    planner = MalleusPlanner(workload.task, workload.cluster, workload.cost_model)
    state = paper_situation("S3", workload.cluster).as_state(workload.cluster)
    result = planner.plan(state.rate_map(), dp=2)
    rows.append(
        PlanningScalabilityRow(
            scenario="64 GPUs (S3)",
            num_gpus=workload.num_gpus,
            num_stragglers=2,
            breakdown=result.breakdown.as_dict(),
            estimated_step_time=result.estimated_step_time,
            feasible=result.feasible,
        )
    )

    # ------------------------------------------------------------------
    # 1024 GPUs (Table 5's largest point) and any extra scales beyond the
    # paper, all with ~3% stragglers and global batch 1024.
    # ------------------------------------------------------------------
    rows.append(_large_scale_row(large_num_gpus, large_batch_size,
                                 large_num_stragglers, large_dp_degree,
                                 incremental_timings))
    for num_gpus in extra_scales:
        rows.append(_large_scale_row(num_gpus, large_batch_size,
                                     max(1, num_gpus // 32), large_dp_degree,
                                     incremental_timings))
    return PlanningScalabilityResult(rows=rows)


# ----------------------------------------------------------------------
# Generated-trace preset sweep across sweep-engine configurations (PR 5)
# ----------------------------------------------------------------------
#: Sweep-engine arms every preset/scale pair is driven through.
PRESET_SWEEP_CONFIGS: Tuple[Tuple[str, SweepConfig], ...] = (
    ("serial-cold", SweepConfig()),
    ("serial-warm", SweepConfig(backend="serial", warm_cache=True)),
    ("process-warm", SweepConfig(backend="process", workers=2,
                                 warm_cache=True)),
)


@dataclass
class PresetSweepRow:
    """One (preset, scale, sweep-config) arm of the generated-trace study."""

    preset: str
    num_gpus: int
    config: str
    events: int
    #: Deterministic winner step time per repaired event (the gate pins
    #: these; identical across configs by the sweep's determinism
    #: contract, up to the warm cache's epsilon-bounded drift — measured
    #: zero on the gated presets).
    event_steps: List[float] = field(default_factory=list)
    #: Event kind/tier labels, parallel to ``event_steps``.
    event_kinds: List[str] = field(default_factory=list)
    initial_plan_seconds: float = 0.0
    repair_seconds: float = 0.0
    warm_hits: int = 0
    warm_misses: int = 0
    evaluated: int = 0

    def as_dict(self) -> Dict:
        return asdict(self)


@dataclass
class PresetScalabilityResult:
    """All arms of the preset sweep."""

    rows: List[PresetSweepRow]

    def row(self, preset: str, num_gpus: int, config: str) -> PresetSweepRow:
        for row in self.rows:
            if (row.preset, row.num_gpus, row.config) == \
                    (preset, num_gpus, config):
                return row
        raise KeyError((preset, num_gpus, config))

    def arms(self) -> List[Tuple[str, int]]:
        seen = []
        for row in self.rows:
            key = (row.preset, row.num_gpus)
            if key not in seen:
                seen.append(key)
        return seen

    def winners_identical(self, preset: str, num_gpus: int,
                          rel_tol: float = 1e-9) -> bool:
        """Whether every config arm picked the same winner on every event."""
        rows = [row for row in self.rows
                if (row.preset, row.num_gpus) == (preset, num_gpus)]
        if not rows:
            return False
        reference = rows[0].event_steps
        for row in rows[1:]:
            if len(row.event_steps) != len(reference):
                return False
            for a, b in zip(reference, row.event_steps):
                if not math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12):
                    return False
        return True


def run_preset_scalability(
    presets: Sequence[str] = ("frequent-small-events",),
    scales: Sequence[int] = (512,),
    num_events: int = 8,
    seed: int = 1,
    batch_size: int = 1024,
    configs: Sequence[Tuple[str, SweepConfig]] = PRESET_SWEEP_CONFIGS,
) -> PresetScalabilityResult:
    """Drive generated straggler traces through the sweep-engine arms.

    Every (preset, scale) pair generates one seeded trace (110B task, TP
    pinned to 8 as in the Table-5 large-cluster rows, DP re-enumerated so
    the sweep has real candidates) and replays it through each
    configuration with a fresh planner; rows record per-event winner step
    times, repair latency and warm-cache activity.
    """
    rows: List[PresetSweepRow] = []
    for preset in presets:
        for num_gpus in scales:
            cluster = make_cluster(num_nodes=num_gpus // 8, gpus_per_node=8)
            task = paper_task("110b", global_batch_size=batch_size)
            trace = generate_trace(cluster, preset, seed=seed,
                                   num_situations=num_events)
            rates_seq = [s.rate_map(cluster) for s in trace.situations]
            for name, sweep_config in configs:
                clear_minmax_cache()
                planner = MalleusPlanner(
                    task, cluster, MalleusCostModel(task.model, cluster),
                    tp_candidates=(8,), sweep_config=sweep_config,
                )
                engine = ReplanEngine(planner)
                row = PresetSweepRow(
                    preset=preset, num_gpus=num_gpus, config=name,
                    events=len(rates_seq) - 1,
                )
                start = time.perf_counter()
                context = planner.plan(rates_seq[0]).context
                row.initial_plan_seconds = time.perf_counter() - start
                for rates in rates_seq[1:]:
                    start = time.perf_counter()
                    outcome = engine.repair(context, rates)
                    row.repair_seconds += time.perf_counter() - start
                    row.event_kinds.append(
                        f"{outcome.event_kind}/{outcome.repair_tier}")
                    if outcome.result is None:
                        row.event_steps.append(
                            context.estimated_step_time if context else 0.0)
                        continue
                    context = outcome.result.context
                    row.event_steps.append(
                        outcome.result.estimated_step_time)
                    stats = outcome.result.sweep_stats or {}
                    row.warm_hits += stats.get("warm_hits", 0)
                    row.warm_misses += stats.get("warm_misses", 0)
                    row.evaluated += stats.get("evaluated", 0)
                planner.close()
                rows.append(row)
    return PresetScalabilityResult(rows=rows)


def format_preset_scalability(result: PresetScalabilityResult) -> str:
    """Render the preset-sweep arms."""
    headers = ["Preset", "GPUs", "Sweep config", "Events", "Initial",
               "Repairs", "Warm hits", "Identical winners"]
    rows = []
    for preset, num_gpus in result.arms():
        identical = "yes" if result.winners_identical(preset, num_gpus) \
            else "NO"
        for row in result.rows:
            if (row.preset, row.num_gpus) != (preset, num_gpus):
                continue
            rows.append([
                row.preset, str(row.num_gpus), row.config, str(row.events),
                f"{row.initial_plan_seconds:.2f}s",
                f"{row.repair_seconds:.2f}s",
                f"{row.warm_hits}/{row.warm_hits + row.warm_misses}",
                identical,
            ])
    return format_table(
        headers, rows,
        title="Generated-trace planning scalability (sweep-engine arms)")


def write_preset_json(result: PresetScalabilityResult, path: str) -> None:
    """Persist a run for the deterministic gate."""
    payload = {"rows": [row.as_dict() for row in result.rows]}
    with open(path, "w") as handle:
        dump_bench_json(payload, handle)


def read_preset_json(path: str) -> PresetScalabilityResult:
    """Load a persisted run."""
    with open(path) as handle:
        payload = json.load(handle)
    return PresetScalabilityResult(
        rows=[PresetSweepRow(**row) for row in payload["rows"]]
    )


def gate_preset_against_baseline(fresh_path: str, baseline_path: str,
                                 rel_tol: float = 1e-9) -> int:
    """Deterministic gate: per-event winners must match the baseline.

    Timings are reported but never gated (machine-local); the winner step
    times and the cross-config identity flags are deterministic.
    """
    fresh = read_preset_json(fresh_path)
    baseline = read_preset_json(baseline_path)
    failures = []
    for base_row in baseline.rows:
        try:
            fresh_row = fresh.row(base_row.preset, base_row.num_gpus,
                                  base_row.config)
        except KeyError:
            failures.append(f"{base_row.preset}/{base_row.num_gpus}/"
                            f"{base_row.config}: missing from fresh run")
            continue
        label = f"{base_row.preset}/{base_row.num_gpus}/{base_row.config}"
        same = len(fresh_row.event_steps) == len(base_row.event_steps) and \
            all(math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12)
                for a, b in zip(fresh_row.event_steps, base_row.event_steps))
        print(f"{label:>52}: {len(base_row.event_steps)} events "
              f"[{'ok' if same else 'CHANGED'}]")
        if not same:
            failures.append(f"{label}: winner step times changed")
    for preset, num_gpus in fresh.arms():
        if not fresh.winners_identical(preset, num_gpus):
            failures.append(
                f"{preset}/{num_gpus}: configs picked different winners")
    if failures:
        print("preset gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("preset gate: OK")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the generated-trace preset sweep and optionally gate it.

    ``python -m repro.experiments.planning_scalability --preset
    frequent-small-events --scales 512`` runs the sweep and writes the
    fresh JSON; ``--gate`` compares it against the committed baseline,
    ``--update`` refreshes the baseline instead.
    """
    import argparse
    import os
    import shutil

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--preset", action="append", default=None,
                        help="scenario preset(s) to sweep "
                             "(default: frequent-small-events)")
    parser.add_argument("--scales", type=int, nargs="+", default=[512],
                        help="cluster sizes in GPUs (default: 512)")
    parser.add_argument("--events", type=int, default=8,
                        help="situations per generated trace (default: 8)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace seed (default: 1)")
    parser.add_argument("--gate", action="store_true",
                        help="compare the fresh run against the baseline")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the fresh run")
    parser.add_argument("--fresh",
                        default="benchmarks/BENCH_preset_scalability.json",
                        help="where to write the fresh run "
                             "(default: %(default)s)")
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/"
                                "BENCH_preset_scalability.json",
                        help="committed baseline (default: %(default)s)")
    args = parser.parse_args(argv)

    presets = args.preset or ["frequent-small-events"]
    result = run_preset_scalability(presets=presets, scales=args.scales,
                                    num_events=args.events, seed=args.seed)
    print(format_preset_scalability(result))
    os.makedirs(os.path.dirname(args.fresh) or ".", exist_ok=True)
    write_preset_json(result, args.fresh)
    print(f"fresh run written to {args.fresh}")
    if args.update:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated at {args.baseline}")
        return 0
    if args.gate:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; seed it with --update")
            return 1
        return gate_preset_against_baseline(args.fresh, args.baseline)
    return 0


def format_planning_scalability(result: PlanningScalabilityResult) -> str:
    """Render the Table 5 rows."""
    with_incremental = any(row.incremental_seconds > 0 for row in result.rows)
    headers = ["Scenario", "GPU Grouping", "Pipeline Division",
               "Group Ordering", "Work Assignment", "Total"]
    if with_incremental:
        headers += ["Incremental repair", "Repair speedup"]
    rows = []
    for row in result.rows:
        cells = [
            row.scenario,
            f"{row.breakdown['grouping']:.2f}s",
            f"{row.breakdown['division']:.2f}s",
            f"{row.breakdown['ordering']:.2f}s",
            f"{row.breakdown['assignment']:.2f}s",
            f"{row.breakdown['total']:.2f}s",
        ]
        if with_incremental:
            if row.incremental_seconds > 0:
                cells += [f"{row.incremental_seconds:.3f}s",
                          f"{row.incremental_speedup:.1f}x"]
            else:
                cells += ["-", "-"]
        rows.append(cells)
    return format_table(headers, rows,
                        title="Table 5: planning-time breakdown")


if __name__ == "__main__":  # pragma: no cover - exercised via make gate-presets
    import sys

    sys.exit(main())
