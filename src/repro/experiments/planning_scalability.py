"""Planning-algorithm scalability: Table 5 (Appendix A.2).

Table 5 breaks down the planner's wall-clock time into its four phases
(GPU grouping, pipeline division, group ordering, work assignment) for the
64-GPU S3 scenario and for a simulated 1024-GPU cluster (128 nodes) training
the 110B model with a global batch size of 1024 and 32 stragglers (~3% of
the cluster).

``extra_scales`` extends the study past the paper (4096 and 8192 GPUs in
the benchmark), and ``incremental_timings`` additionally measures the
incremental re-planning engine on each large-cluster scenario: after the
full plan, one straggler's rate shifts by 20% (a ``minor_rate_shift``) and
the row records how long ``plan_incremental`` takes to repair the
incumbent versus the full re-plan the runtime would otherwise pay.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster.topology import make_cluster
from ..cluster.trace import paper_situation
from ..core.costmodel import MalleusCostModel
from ..core.planner import MalleusPlanner, PlanningTimeBreakdown
from ..models.presets import paper_task
from ..solvers.minmax import clear_minmax_cache
from .common import format_table, paper_workload


@dataclass
class PlanningScalabilityRow:
    """One row of Table 5."""

    scenario: str
    num_gpus: int
    num_stragglers: int
    breakdown: Dict[str, float]
    estimated_step_time: float
    feasible: bool
    #: Incremental-repair timing for a single-GPU rate shift (0 when not
    #: measured): full warm re-plan vs ``plan_incremental``.
    full_replan_seconds: float = 0.0
    incremental_seconds: float = 0.0
    incremental_event: str = ""

    @property
    def total_time(self) -> float:
        """Total planning time."""
        return self.breakdown.get("total", 0.0)

    @property
    def incremental_speedup(self) -> float:
        """Full-replan over incremental-repair latency (0 when unmeasured)."""
        if self.incremental_seconds <= 0:
            return 0.0
        return self.full_replan_seconds / self.incremental_seconds


@dataclass
class PlanningScalabilityResult:
    """Table 5 data."""

    rows: List[PlanningScalabilityRow]

    def row(self, scenario: str) -> PlanningScalabilityRow:
        """Look up a scenario by name."""
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)


def _scaled_straggler_rates(num_gpus: int, num_stragglers: int,
                            gpus_per_node: int, seed: int = 7) -> Dict[int, float]:
    """Straggler placement for the large-cluster scenario.

    Stragglers are spread across distinct nodes (one per node where possible,
    mirroring the paper's per-GPU granularity) with rates drawn from the
    calibrated level-1/2/3 values.
    """
    rng = random.Random(seed)
    rates = {g: 1.0 for g in range(num_gpus)}
    levels = [2.6, 3.8, 5.42]
    num_nodes = num_gpus // gpus_per_node
    for index in range(num_stragglers):
        node = index % num_nodes
        local = (index // num_nodes) % gpus_per_node
        gpu = node * gpus_per_node + local
        rates[gpu] = rng.choice(levels)
    return rates


def _large_scale_row(num_gpus: int, batch_size: int, num_stragglers: int,
                     dp_degree: Optional[int],
                     incremental_timings: bool) -> PlanningScalabilityRow:
    """Plan one simulated large-cluster scenario (TP pinned to 8)."""
    cluster = make_cluster(num_nodes=num_gpus // 8, gpus_per_node=8)
    task = paper_task("110b", global_batch_size=batch_size)
    cost_model = MalleusCostModel(task.model, cluster)
    # At these scales the paper (and practice) trains the 110B model with
    # TP 8; enumerating smaller TP limits only multiplies the planning time
    # without ever winning, so the scalability study pins TP to 8.
    planner = MalleusPlanner(task, cluster, cost_model, tp_candidates=(8,))
    rates = _scaled_straggler_rates(num_gpus, num_stragglers, 8)
    result = planner.plan(rates, dp=dp_degree)
    row = PlanningScalabilityRow(
        scenario=f"{num_gpus} GPUs",
        num_gpus=num_gpus,
        num_stragglers=num_stragglers,
        breakdown=result.breakdown.as_dict(),
        estimated_step_time=result.estimated_step_time,
        feasible=result.feasible,
    )
    if incremental_timings and result.feasible:
        shifted = dict(rates)
        gpu = next(g for g in sorted(shifted) if shifted[g] > 1.0)
        shifted[gpu] = shifted[gpu] * 1.2
        # Clear the process-global min-max memo before each timed run so
        # neither side rides solutions the other just computed.
        clear_minmax_cache()
        start = time.perf_counter()
        planner.plan(shifted, dp=dp_degree)
        row.full_replan_seconds = time.perf_counter() - start
        clear_minmax_cache()
        start = time.perf_counter()
        outcome = planner.plan_incremental(result.context, shifted,
                                           dp=dp_degree)
        row.incremental_seconds = time.perf_counter() - start
        row.incremental_event = f"{outcome.event_kind}/{outcome.repair_tier}"
    return row


def run_planning_scalability(
    large_num_gpus: int = 1024,
    large_batch_size: int = 1024,
    large_num_stragglers: int = 32,
    large_dp_degree: Optional[int] = 8,
    extra_scales: Sequence[int] = (),
    incremental_timings: bool = False,
) -> PlanningScalabilityResult:
    """Run the Table 5 experiment (64-GPU S3 plus the 1024-GPU simulation).

    ``extra_scales`` adds further simulated cluster sizes (e.g. 4096, 8192)
    at the same ~3% straggler ratio; ``incremental_timings`` measures the
    repair engine on every large-cluster row (see the module docstring).
    """
    rows: List[PlanningScalabilityRow] = []

    # ------------------------------------------------------------------
    # 64 GPUs, scenario S3 (the paper's reference point).
    # ------------------------------------------------------------------
    workload = paper_workload("110b")
    planner = MalleusPlanner(workload.task, workload.cluster, workload.cost_model)
    state = paper_situation("S3", workload.cluster).as_state(workload.cluster)
    result = planner.plan(state.rate_map(), dp=2)
    rows.append(
        PlanningScalabilityRow(
            scenario="64 GPUs (S3)",
            num_gpus=workload.num_gpus,
            num_stragglers=2,
            breakdown=result.breakdown.as_dict(),
            estimated_step_time=result.estimated_step_time,
            feasible=result.feasible,
        )
    )

    # ------------------------------------------------------------------
    # 1024 GPUs (Table 5's largest point) and any extra scales beyond the
    # paper, all with ~3% stragglers and global batch 1024.
    # ------------------------------------------------------------------
    rows.append(_large_scale_row(large_num_gpus, large_batch_size,
                                 large_num_stragglers, large_dp_degree,
                                 incremental_timings))
    for num_gpus in extra_scales:
        rows.append(_large_scale_row(num_gpus, large_batch_size,
                                     max(1, num_gpus // 32), large_dp_degree,
                                     incremental_timings))
    return PlanningScalabilityResult(rows=rows)


def format_planning_scalability(result: PlanningScalabilityResult) -> str:
    """Render the Table 5 rows."""
    with_incremental = any(row.incremental_seconds > 0 for row in result.rows)
    headers = ["Scenario", "GPU Grouping", "Pipeline Division",
               "Group Ordering", "Work Assignment", "Total"]
    if with_incremental:
        headers += ["Incremental repair", "Repair speedup"]
    rows = []
    for row in result.rows:
        cells = [
            row.scenario,
            f"{row.breakdown['grouping']:.2f}s",
            f"{row.breakdown['division']:.2f}s",
            f"{row.breakdown['ordering']:.2f}s",
            f"{row.breakdown['assignment']:.2f}s",
            f"{row.breakdown['total']:.2f}s",
        ]
        if with_incremental:
            if row.incremental_seconds > 0:
                cells += [f"{row.incremental_seconds:.3f}s",
                          f"{row.incremental_speedup:.1f}x"]
            else:
                cells += ["-", "-"]
        rows.append(cells)
    return format_table(headers, rows,
                        title="Table 5: planning-time breakdown")
