"""Planning-algorithm scalability: Table 5 (Appendix A.2).

Table 5 breaks down the planner's wall-clock time into its four phases
(GPU grouping, pipeline division, group ordering, work assignment) for the
64-GPU S3 scenario and for a simulated 1024-GPU cluster (128 nodes) training
the 110B model with a global batch size of 1024 and 32 stragglers (~3% of
the cluster).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster.topology import make_cluster
from ..cluster.trace import paper_situation
from ..core.costmodel import MalleusCostModel
from ..core.planner import MalleusPlanner, PlanningTimeBreakdown
from ..models.presets import paper_task
from .common import format_table, paper_workload


@dataclass
class PlanningScalabilityRow:
    """One row of Table 5."""

    scenario: str
    num_gpus: int
    num_stragglers: int
    breakdown: Dict[str, float]
    estimated_step_time: float
    feasible: bool

    @property
    def total_time(self) -> float:
        """Total planning time."""
        return self.breakdown.get("total", 0.0)


@dataclass
class PlanningScalabilityResult:
    """Table 5 data."""

    rows: List[PlanningScalabilityRow]

    def row(self, scenario: str) -> PlanningScalabilityRow:
        """Look up a scenario by name."""
        for row in self.rows:
            if row.scenario == scenario:
                return row
        raise KeyError(scenario)


def _scaled_straggler_rates(num_gpus: int, num_stragglers: int,
                            gpus_per_node: int, seed: int = 7) -> Dict[int, float]:
    """Straggler placement for the large-cluster scenario.

    Stragglers are spread across distinct nodes (one per node where possible,
    mirroring the paper's per-GPU granularity) with rates drawn from the
    calibrated level-1/2/3 values.
    """
    rng = random.Random(seed)
    rates = {g: 1.0 for g in range(num_gpus)}
    levels = [2.6, 3.8, 5.42]
    num_nodes = num_gpus // gpus_per_node
    for index in range(num_stragglers):
        node = index % num_nodes
        local = (index // num_nodes) % gpus_per_node
        gpu = node * gpus_per_node + local
        rates[gpu] = rng.choice(levels)
    return rates


def run_planning_scalability(
    large_num_gpus: int = 1024,
    large_batch_size: int = 1024,
    large_num_stragglers: int = 32,
    large_dp_degree: Optional[int] = 8,
) -> PlanningScalabilityResult:
    """Run the Table 5 experiment (64-GPU S3 plus the 1024-GPU simulation)."""
    rows: List[PlanningScalabilityRow] = []

    # ------------------------------------------------------------------
    # 64 GPUs, scenario S3 (the paper's reference point).
    # ------------------------------------------------------------------
    workload = paper_workload("110b")
    planner = MalleusPlanner(workload.task, workload.cluster, workload.cost_model)
    state = paper_situation("S3", workload.cluster).as_state(workload.cluster)
    result = planner.plan(state.rate_map(), dp=2)
    rows.append(
        PlanningScalabilityRow(
            scenario="64 GPUs (S3)",
            num_gpus=workload.num_gpus,
            num_stragglers=2,
            breakdown=result.breakdown.as_dict(),
            estimated_step_time=result.estimated_step_time,
            feasible=result.feasible,
        )
    )

    # ------------------------------------------------------------------
    # 1024 GPUs, 32 stragglers, global batch 1024.
    # ------------------------------------------------------------------
    large_cluster = make_cluster(num_nodes=large_num_gpus // 8, gpus_per_node=8)
    large_task = paper_task("110b", global_batch_size=large_batch_size)
    cost_model = MalleusCostModel(large_task.model, large_cluster)
    # At the 1024-GPU scale the paper (and practice) trains the 110B model
    # with TP 8; enumerating smaller TP limits only multiplies the planning
    # time without ever winning, so the scalability study pins TP to 8.
    large_planner = MalleusPlanner(large_task, large_cluster, cost_model,
                                   tp_candidates=(8,))
    rates = _scaled_straggler_rates(large_num_gpus, large_num_stragglers, 8)
    large_result = large_planner.plan(rates, dp=large_dp_degree)
    rows.append(
        PlanningScalabilityRow(
            scenario=f"{large_num_gpus} GPUs",
            num_gpus=large_num_gpus,
            num_stragglers=large_num_stragglers,
            breakdown=large_result.breakdown.as_dict(),
            estimated_step_time=large_result.estimated_step_time,
            feasible=large_result.feasible,
        )
    )
    return PlanningScalabilityResult(rows=rows)


def format_planning_scalability(result: PlanningScalabilityResult) -> str:
    """Render the Table 5 rows."""
    headers = ["Scenario", "GPU Grouping", "Pipeline Division",
               "Group Ordering", "Work Assignment", "Total"]
    rows = []
    for row in result.rows:
        rows.append([
            row.scenario,
            f"{row.breakdown['grouping']:.2f}s",
            f"{row.breakdown['division']:.2f}s",
            f"{row.breakdown['ordering']:.2f}s",
            f"{row.breakdown['assignment']:.2f}s",
            f"{row.breakdown['total']:.2f}s",
        ])
    return format_table(headers, rows,
                        title="Table 5: planning-time breakdown")
