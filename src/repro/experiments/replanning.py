"""Re-planning overhead ablation (§5.3) and incremental-repair comparison.

The paper's asynchronous re-planning mechanism overlaps the 10-30 s of
planning with training so that only the 1-5 s model migration stalls the
job.  This experiment quantifies that design choice: it runs Malleus through
the straggler trace twice — once with asynchronous re-planning (the default)
and once with synchronous re-planning (training halts while the planner
runs) — and compares the accumulated adjustment downtime, alongside the
restart-based alternative.

:func:`run_incremental_comparison` additionally contrasts the incremental
re-planning engine (``repro.runtime.replan``) with full re-planning on the
same trace: per situation it records the event classification, the repair
tier, the planning latency of both modes and the relative step-time gap of
the repaired plan (the engine's quality bar is ``epsilon``, 1% by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..baselines.megatron import MegatronRestartBaseline
from ..cluster.trace import paper_trace
from ..runtime.malleus import MalleusSystem
from ..simulator.session import run_trace
from .common import format_table, paper_workload


@dataclass
class ReplanningVariant:
    """Downtime accounting of one adaptation strategy."""

    name: str
    total_downtime: float
    per_situation_downtime: Dict[str, float]
    total_planning_time: float


@dataclass
class ReplanningResult:
    """Comparison of asynchronous vs synchronous re-planning vs restarting."""

    model: str
    variants: List[ReplanningVariant]

    def variant(self, name: str) -> ReplanningVariant:
        """Look up one variant."""
        for variant in self.variants:
            if variant.name == name:
                return variant
        raise KeyError(name)


def run_replanning_ablation(model_name: str = "32b",
                            steps_per_situation: int = 100) -> ReplanningResult:
    """Run the re-planning overhead ablation."""
    variants: List[ReplanningVariant] = []
    for name, kwargs in [
        ("async re-planning", {"async_replanning": True}),
        ("sync re-planning", {"async_replanning": False}),
    ]:
        workload = paper_workload(model_name)
        system = MalleusSystem(workload.task, workload.cluster,
                               workload.cost_model, **kwargs)
        trace = paper_trace(workload.cluster, duration_steps=steps_per_situation)
        run = run_trace(system, trace)
        variants.append(
            ReplanningVariant(
                name=name,
                total_downtime=sum(
                    s.adjustment.downtime for s in run.situations
                ),
                per_situation_downtime={
                    s.situation: s.adjustment.downtime for s in run.situations
                },
                total_planning_time=sum(
                    s.adjustment.planning_time for s in run.situations
                ),
            )
        )

    workload = paper_workload(model_name)
    restart = MegatronRestartBaseline(workload.task, workload.cluster,
                                      workload.cost_model)
    trace = paper_trace(workload.cluster, duration_steps=steps_per_situation)
    run = run_trace(restart, trace)
    variants.append(
        ReplanningVariant(
            name="restart-based (Megatron w/ Restart)",
            total_downtime=sum(s.adjustment.downtime for s in run.situations),
            per_situation_downtime={
                s.situation: s.adjustment.downtime for s in run.situations
            },
            total_planning_time=0.0,
        )
    )
    return ReplanningResult(model=model_name, variants=variants)


@dataclass
class IncrementalComparisonRow:
    """Full vs incremental re-planning for one trace situation."""

    situation: str
    event_kind: str
    repair_tier: str
    incremental_planning_time: float
    full_planning_time: float
    incremental_estimate: float
    full_estimate: float

    @property
    def quality_gap(self) -> float:
        """Relative step-time gap of the repaired plan (positive = worse)."""
        if self.full_estimate <= 0:
            return 0.0
        return self.incremental_estimate / self.full_estimate - 1.0

    @property
    def latency_speedup(self) -> float:
        """Full-planning over incremental-planning latency."""
        if self.incremental_planning_time <= 0:
            return float("inf")
        return self.full_planning_time / self.incremental_planning_time


@dataclass
class IncrementalComparisonResult:
    """Trace-wide comparison of incremental vs full re-planning."""

    model: str
    rows: List[IncrementalComparisonRow] = field(default_factory=list)

    @property
    def max_quality_gap(self) -> float:
        """Worst (most positive) relative step-time gap across the trace."""
        return max((row.quality_gap for row in self.rows), default=0.0)

    @property
    def total_incremental_time(self) -> float:
        """Accumulated incremental planning latency."""
        return sum(row.incremental_planning_time for row in self.rows)

    @property
    def total_full_time(self) -> float:
        """Accumulated full planning latency."""
        return sum(row.full_planning_time for row in self.rows)

    def repaired_rows(self) -> List[IncrementalComparisonRow]:
        """Rows the engine actually repaired (tier other than ``full``)."""
        return [row for row in self.rows
                if row.repair_tier not in ("", "full")]


def run_incremental_comparison(model_name: str = "32b",
                               ) -> IncrementalComparisonResult:
    """Drive the paper trace with and without the incremental engine.

    Both systems see the identical trace; per situation the row captures
    the incremental system's event classification/repair tier and both
    systems' planning latency and resulting step-time estimate.
    """
    inc_workload = paper_workload(model_name)
    incremental = MalleusSystem(inc_workload.task, inc_workload.cluster,
                                inc_workload.cost_model, incremental=True)
    full_workload = paper_workload(model_name)
    full = MalleusSystem(full_workload.task, full_workload.cluster,
                         full_workload.cost_model, incremental=False)
    trace = paper_trace(inc_workload.cluster)

    result = IncrementalComparisonResult(model=model_name)
    for index, situation in enumerate(trace.situations):
        state = situation.as_state(inc_workload.cluster)
        if index == 0:
            incremental.setup(state)
            full.setup(state)
            continue
        inc_adj = incremental.on_situation_change(state)
        full_adj = full.on_situation_change(state)
        if inc_adj.kind == "none" or full_adj.kind == "none":
            # Rows only make sense when both systems re-planned for these
            # rates; a one-sided "none" (e.g. a TIER_NONE repair) would
            # compare estimates solved under different inputs.
            continue
        result.rows.append(IncrementalComparisonRow(
            situation=situation.name,
            event_kind=inc_adj.event_kind,
            repair_tier=inc_adj.repair_tier,
            incremental_planning_time=inc_adj.planning_time,
            full_planning_time=full_adj.planning_time,
            incremental_estimate=incremental.plan_context.estimated_step_time
            if incremental.plan_context else float("inf"),
            full_estimate=full.plan_context.estimated_step_time
            if full.plan_context else float("inf"),
        ))
    return result


def format_incremental_comparison(result: IncrementalComparisonResult) -> str:
    """Render the incremental-vs-full comparison rows."""
    headers = ["Situation", "Event", "Repair tier", "Incremental",
               "Full", "Speedup", "Quality gap"]
    rows = []
    for row in result.rows:
        rows.append([
            row.situation,
            row.event_kind,
            row.repair_tier,
            f"{row.incremental_planning_time * 1000:.0f}ms",
            f"{row.full_planning_time * 1000:.0f}ms",
            f"{row.latency_speedup:.1f}x",
            f"{row.quality_gap:+.3%}",
        ])
    return format_table(
        headers, rows,
        title=f"Incremental vs full re-planning ({result.model})",
    )


def format_replanning(result: ReplanningResult) -> str:
    """Render the re-planning ablation."""
    headers = ["Strategy", "Total downtime (s)", "Total planning time (s)"]
    rows = [
        [v.name, f"{v.total_downtime:.1f}", f"{v.total_planning_time:.1f}"]
        for v in result.variants
    ]
    return format_table(headers, rows,
                        title=f"Re-planning overhead ({result.model})")
