"""Re-planning overhead ablation (§5.3).

The paper's asynchronous re-planning mechanism overlaps the 10-30 s of
planning with training so that only the 1-5 s model migration stalls the
job.  This experiment quantifies that design choice: it runs Malleus through
the straggler trace twice — once with asynchronous re-planning (the default)
and once with synchronous re-planning (training halts while the planner
runs) — and compares the accumulated adjustment downtime, alongside the
restart-based alternative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..baselines.megatron import MegatronRestartBaseline
from ..cluster.trace import paper_trace
from ..runtime.malleus import MalleusSystem
from ..simulator.session import run_trace
from .common import format_table, paper_workload


@dataclass
class ReplanningVariant:
    """Downtime accounting of one adaptation strategy."""

    name: str
    total_downtime: float
    per_situation_downtime: Dict[str, float]
    total_planning_time: float


@dataclass
class ReplanningResult:
    """Comparison of asynchronous vs synchronous re-planning vs restarting."""

    model: str
    variants: List[ReplanningVariant]

    def variant(self, name: str) -> ReplanningVariant:
        """Look up one variant."""
        for variant in self.variants:
            if variant.name == name:
                return variant
        raise KeyError(name)


def run_replanning_ablation(model_name: str = "32b",
                            steps_per_situation: int = 100) -> ReplanningResult:
    """Run the re-planning overhead ablation."""
    variants: List[ReplanningVariant] = []
    for name, kwargs in [
        ("async re-planning", {"async_replanning": True}),
        ("sync re-planning", {"async_replanning": False}),
    ]:
        workload = paper_workload(model_name)
        system = MalleusSystem(workload.task, workload.cluster,
                               workload.cost_model, **kwargs)
        trace = paper_trace(workload.cluster, duration_steps=steps_per_situation)
        run = run_trace(system, trace)
        variants.append(
            ReplanningVariant(
                name=name,
                total_downtime=sum(
                    s.adjustment.downtime for s in run.situations
                ),
                per_situation_downtime={
                    s.situation: s.adjustment.downtime for s in run.situations
                },
                total_planning_time=sum(
                    s.adjustment.planning_time for s in run.situations
                ),
            )
        )

    workload = paper_workload(model_name)
    restart = MegatronRestartBaseline(workload.task, workload.cluster,
                                      workload.cost_model)
    trace = paper_trace(workload.cluster, duration_steps=steps_per_situation)
    run = run_trace(restart, trace)
    variants.append(
        ReplanningVariant(
            name="restart-based (Megatron w/ Restart)",
            total_downtime=sum(s.adjustment.downtime for s in run.situations),
            per_situation_downtime={
                s.situation: s.adjustment.downtime for s in run.situations
            },
            total_planning_time=0.0,
        )
    )
    return ReplanningResult(model=model_name, variants=variants)


def format_replanning(result: ReplanningResult) -> str:
    """Render the re-planning ablation."""
    headers = ["Strategy", "Total downtime (s)", "Total planning time (s)"]
    rows = [
        [v.name, f"{v.total_downtime:.1f}", f"{v.total_planning_time:.1f}"]
        for v in result.variants
    ]
    return format_table(headers, rows,
                        title=f"Re-planning overhead ({result.model})")
