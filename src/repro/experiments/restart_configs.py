"""Manually tuned restart configurations: Tables 6 and 7 (Appendix A.3).

When the restart-based baselines exclude straggling nodes they must re-tune
the parallel configuration for the surviving GPU count.  Tables 6 and 7 list
the configurations the paper's authors found by hand for Megatron-LM and
DeepSpeed; this module regenerates them with the automated configuration
search, for every node-removal scenario of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines.config_search import (
    DeepSpeedConfig,
    MegatronConfig,
    search_deepspeed_config,
    search_megatron_config,
)
from .common import format_table, paper_workload

#: Scenario name -> number of whole nodes removed (the paper's grouping of
#: situations by how many nodes contain stragglers).
NODE_REMOVAL_SCENARIOS = {
    "Normal": 0,
    "S1/S2/S6 (remove 1 node)": 1,
    "S3/S5 (remove 2 nodes)": 2,
    "S4 (remove 3 nodes)": 3,
}


@dataclass
class RestartConfigRow:
    """Best configurations for one model under one node-removal scenario."""

    model: str
    scenario: str
    surviving_gpus: int
    megatron: Optional[MegatronConfig]
    deepspeed: Optional[DeepSpeedConfig]


@dataclass
class RestartConfigResult:
    """Tables 6 and 7 data for one model."""

    model: str
    rows: List[RestartConfigRow]

    def megatron_labels(self) -> Dict[str, str]:
        """Scenario -> Megatron configuration label (Table 6)."""
        return {
            row.scenario: row.megatron.label() if row.megatron else "infeasible"
            for row in self.rows
        }

    def deepspeed_labels(self) -> Dict[str, str]:
        """Scenario -> DeepSpeed configuration label (Table 7)."""
        return {
            row.scenario: row.deepspeed.label() if row.deepspeed else "infeasible"
            for row in self.rows
        }


def run_restart_configs(model_name: str = "32b") -> RestartConfigResult:
    """Run the Tables 6/7 configuration search for one model."""
    workload = paper_workload(model_name)
    cluster = workload.cluster
    rows: List[RestartConfigRow] = []
    for scenario, removed_nodes in NODE_REMOVAL_SCENARIOS.items():
        keep = [
            gpu.gpu_id for gpu in cluster.iter_gpus()
            if gpu.node_id >= removed_nodes
        ]
        if not keep:
            continue
        sub_cluster = cluster.subset(keep, name=f"{cluster.name}-minus-{removed_nodes}")
        megatron = search_megatron_config(workload.task, sub_cluster)
        deepspeed = search_deepspeed_config(workload.task, sub_cluster)
        rows.append(
            RestartConfigRow(
                model=model_name,
                scenario=scenario,
                surviving_gpus=len(keep),
                megatron=megatron,
                deepspeed=deepspeed,
            )
        )
    return RestartConfigResult(model=model_name, rows=rows)


def format_restart_configs(result: RestartConfigResult) -> str:
    """Render the Tables 6/7 rows for one model."""
    headers = ["Scenario", "GPUs", "Megatron-LM w/ Restart", "DeepSpeed w/ Restart"]
    rows = []
    for row in result.rows:
        rows.append([
            row.scenario,
            row.surviving_gpus,
            row.megatron.label() if row.megatron else "infeasible",
            row.deepspeed.label() if row.deepspeed else "infeasible",
        ])
    return format_table(
        headers, rows,
        title=f"Tables 6/7 ({result.model}): tuned restart configurations",
    )
