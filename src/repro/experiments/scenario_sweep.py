"""Generated-trace sweep: baseline vs transition-aware vs overlapped.

The transition study (:mod:`repro.experiments.transition_study`) compares
planning objectives on the paper's single hand-built trace.  This sweep
drives the same :class:`~repro.runtime.malleus.MalleusSystem` through
*generated* straggler regimes (:mod:`repro.cluster.scenarios`) in three
configurations:

``baseline``
    Pure step-time planning, stop-the-world migration (the default).
``aware``
    Transition-aware planning (:class:`~repro.core.planner.TransitionConfig`
    ``enabled=True``), stop-the-world migration.
``overlap``
    Transition-aware planning **plus overlapped migration**: state streams
    while the job keeps training at the old plan, so only the exposed tail
    of every drain is charged as downtime.

The contract asserted by ``benchmarks/test_bench_scenario_sweep.py`` and
the ``--gate`` entry point:

* overlapped migration's cumulative downtime is **strictly lower** than
  the baseline's on the ``frequent-small-events`` and ``node-correlated``
  presets (the regimes where adjustment overhead, not steady-state step
  time, dominates) and never higher on any preset;
* neither objective regresses any situation's executed step time beyond
  the configured ``epsilon``.

Every quantity is produced by the analytic simulator on seeded generated
traces, so runs are fully deterministic and the regression gate compares
fresh runs against the committed baseline exactly (float tolerance), like
the transition gate.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.scenarios import generate_trace
from ..core.planner import MalleusPlanner, TransitionConfig
from ..runtime.malleus import MalleusSystem
from ..simulator.session import Adjustment
from .common import dump_bench_json, format_table, paper_workload

#: Presets the sweep runs by default; the first two carry the strict
#: downtime-reduction requirement of the gate.
DEFAULT_PRESETS = (
    "frequent-small-events",
    "node-correlated",
    "persistent-degraders",
    "flapping",
)

#: Presets on which overlapped migration must *strictly* reduce downtime.
STRICT_PRESETS = ("frequent-small-events", "node-correlated")

ARMS = ("baseline", "aware", "overlap")


@dataclass
class ScenarioArm:
    """One system configuration's outcome on one generated trace."""

    name: str
    downtime: float = 0.0
    hidden_seconds: float = 0.0
    migration_gb: float = 0.0
    plan_changes: int = 0
    total_time: float = 0.0
    #: Simulated (executed) per-situation step times — reported for
    #: visibility; two plans whose planning objectives tie within epsilon
    #: can still simulate differently, so these are gated only through the
    #: exact-match comparison against the committed baseline.
    step_times: List[float] = field(default_factory=list)
    #: Planner-objective estimate of the plan chosen at each situation
    #: (None when the situation triggered no re-plan); this is the
    #: quantity the epsilon step-time guard provably bounds.
    plan_estimates: List[Optional[float]] = field(default_factory=list)

    def as_dict(self) -> Dict:
        """JSON-serialisable view."""
        return asdict(self)


@dataclass
class ScenarioSweepRow:
    """Per-preset comparison of the three arms."""

    preset: str
    seed: int
    num_situations: int
    arms: Dict[str, ScenarioArm] = field(default_factory=dict)
    #: Cold full-planner objective per situation (the epsilon reference).
    cold_estimates: List[Optional[float]] = field(default_factory=list)

    def arm(self, name: str) -> ScenarioArm:
        """One arm's outcome."""
        return self.arms[name]

    @property
    def max_step_regression(self) -> float:
        """Worst planning-objective regression of any arm vs a cold plan.

        Compares the planner's estimated step time of every arm's chosen
        plan against a cold full plan for the identical rates — the
        quantity the epsilon guard provably bounds.  Arms are *not*
        compared against each other: a warm-repaired division can beat
        the cold division heuristic, so trajectories legitimately diverge
        in both directions.
        """
        worst = 0.0
        for arm in self.arms.values():
            for cold, est in zip(self.cold_estimates, arm.plan_estimates):
                if cold and est and cold > 0:
                    worst = max(worst, est / cold - 1.0)
        return worst

    def as_dict(self) -> Dict:
        """JSON-serialisable view."""
        return {
            "preset": self.preset,
            "seed": self.seed,
            "num_situations": self.num_situations,
            "arms": {name: arm.as_dict() for name, arm in self.arms.items()},
            "cold_estimates": list(self.cold_estimates),
        }


@dataclass
class ScenarioSweepResult:
    """Sweep-wide outcome."""

    model: str
    epsilon: float
    horizon_steps: float
    overlap_steps: float
    rows: List[ScenarioSweepRow] = field(default_factory=list)

    def row(self, preset: str) -> ScenarioSweepRow:
        """Look up one preset's row."""
        for row in self.rows:
            if row.preset == preset:
                return row
        raise KeyError(f"preset '{preset}' not in sweep")

    def total_downtime(self, arm: str) -> float:
        """Cumulative adjustment downtime of one arm across all presets."""
        return sum(row.arms[arm].downtime for row in self.rows)

    @property
    def max_step_regression(self) -> float:
        """Worst step regression across presets and both non-baseline arms."""
        return max((row.max_step_regression for row in self.rows),
                   default=0.0)

    def as_dict(self) -> Dict:
        """JSON-serialisable view (includes the derived aggregates)."""
        return {
            "model": self.model,
            "epsilon": self.epsilon,
            "horizon_steps": self.horizon_steps,
            "overlap_steps": self.overlap_steps,
            "rows": [row.as_dict() for row in self.rows],
            "total_downtime": {
                arm: self.total_downtime(arm) for arm in ARMS
            },
            "max_step_regression": self.max_step_regression,
        }


def _arm_config(arm: str, epsilon: float, horizon_steps: float,
                overlap_steps: float) -> Optional[TransitionConfig]:
    """TransitionConfig of one arm (None = the all-defaults baseline)."""
    if arm == "baseline":
        return None
    return TransitionConfig(
        enabled=True, epsilon=epsilon, horizon_steps=horizon_steps,
        overlap=(arm == "overlap"), overlap_steps=overlap_steps,
    )


def run_scenario_sweep(model_name: str = "32b",
                       presets: Sequence[str] = DEFAULT_PRESETS,
                       seed: int = 1,
                       epsilon: float = 0.01,
                       horizon_steps: float = 20.0,
                       overlap_steps: float = 1.0) -> ScenarioSweepResult:
    """Drive every preset through the three arms.

    Each (preset, arm) pair gets a fresh system but the *identical*
    generated trace (same seed), so the arms differ only in planning
    objective and migration-downtime accounting.
    """
    result = ScenarioSweepResult(
        model=model_name, epsilon=epsilon, horizon_steps=horizon_steps,
        overlap_steps=overlap_steps,
    )
    for preset in presets:
        row: Optional[ScenarioSweepRow] = None
        for arm in ARMS:
            workload = paper_workload(model_name)
            trace = generate_trace(workload.cluster, preset, seed=seed)
            if row is None:
                row = ScenarioSweepRow(preset=preset, seed=seed,
                                       num_situations=len(trace))
                cold_planner = MalleusPlanner(workload.task, workload.cluster,
                                              workload.cost_model)
                for situation in trace.situations:
                    cold = cold_planner.plan(
                        situation.rate_map(workload.cluster))
                    row.cold_estimates.append(
                        cold.estimated_step_time if cold.feasible else None
                    )
            system = MalleusSystem(
                workload.task, workload.cluster, workload.cost_model,
                transition_config=_arm_config(arm, epsilon, horizon_steps,
                                              overlap_steps),
            )
            outcome = ScenarioArm(name=arm)
            for index, situation in enumerate(trace.situations):
                state = situation.as_state(workload.cluster)
                events_before = len(system.replan_events)
                if index == 0:
                    system.setup(state)
                    adjustment = Adjustment(kind="setup")
                else:
                    adjustment = system.on_situation_change(state)
                outcome.downtime += adjustment.downtime
                outcome.hidden_seconds += adjustment.hidden_migration_time
                outcome.migration_gb += adjustment.migration_bytes / 1e9
                if adjustment.kind in ("migrate", "restart"):
                    outcome.plan_changes += 1
                step_time = system.step_time(state)
                outcome.step_times.append(step_time)
                outcome.total_time += \
                    step_time * situation.duration_steps + adjustment.downtime
                if len(system.replan_events) > events_before:
                    outcome.plan_estimates.append(
                        system.replan_events[-1].estimated_step_time
                    )
                else:
                    outcome.plan_estimates.append(None)
            row.arms[arm] = outcome
        result.rows.append(row)
    return result


def format_scenario_sweep(result: ScenarioSweepResult) -> str:
    """Render the per-preset comparison plus aggregates."""
    headers = ["Preset", "Events", "Downtime (base)", "Downtime (aware)",
               "Downtime (overlap)", "Hidden", "Moved (overlap)"]
    rows = []
    for row in result.rows:
        overlap = row.arms["overlap"]
        rows.append([
            row.preset,
            f"{row.num_situations - 1}",
            f"{row.arms['baseline'].downtime:.3f}s",
            f"{row.arms['aware'].downtime:.3f}s",
            f"{overlap.downtime:.3f}s",
            f"{overlap.hidden_seconds:.3f}s",
            f"{overlap.migration_gb:.0f}GB",
        ])
    table = format_table(
        headers, rows,
        title=f"Scenario sweep: baseline vs aware vs overlapped migration "
              f"({result.model}, eps={result.epsilon:.1%}, "
              f"horizon={result.horizon_steps:g}, "
              f"overlap_steps={result.overlap_steps:g})",
    )
    summary = (
        f"\ncumulative downtime: baseline "
        f"{result.total_downtime('baseline'):.4f}s, aware "
        f"{result.total_downtime('aware'):.4f}s, overlap "
        f"{result.total_downtime('overlap'):.4f}s; "
        f"max step regression {result.max_step_regression:+.3%}"
    )
    return table + summary


# ----------------------------------------------------------------------
# Persistence + regression gate
# ----------------------------------------------------------------------
def write_sweep_json(result: ScenarioSweepResult, path: str) -> None:
    """Persist a run for the regression gate."""
    with open(path, "w") as handle:
        dump_bench_json(result.as_dict(), handle)


def read_sweep_json(path: str) -> ScenarioSweepResult:
    """Load a persisted run."""
    with open(path) as handle:
        payload = json.load(handle)
    result = ScenarioSweepResult(
        model=payload["model"], epsilon=payload["epsilon"],
        horizon_steps=payload["horizon_steps"],
        overlap_steps=payload["overlap_steps"],
    )
    for entry in payload["rows"]:
        row = ScenarioSweepRow(
            preset=entry["preset"], seed=entry["seed"],
            num_situations=entry["num_situations"],
            arms={name: ScenarioArm(**arm)
                  for name, arm in entry["arms"].items()},
            cold_estimates=entry.get("cold_estimates", []),
        )
        result.rows.append(row)
    return result


def check_sweep_invariants(result: ScenarioSweepResult) -> List[str]:
    """The sweep's acceptance contract; returns failure messages."""
    failures = []
    for row in result.rows:
        base = row.arms["baseline"].downtime
        overlap = row.arms["overlap"].downtime
        if overlap > base + 1e-9:
            failures.append(
                f"{row.preset}: overlapped downtime {overlap:.4f}s exceeds "
                f"baseline {base:.4f}s"
            )
        if row.preset in STRICT_PRESETS and not overlap < base - 1e-9:
            failures.append(
                f"{row.preset}: overlapped downtime {overlap:.4f}s not "
                f"strictly below baseline {base:.4f}s"
            )
    if result.max_step_regression > result.epsilon + 1e-9:
        failures.append(
            f"step-time regression {result.max_step_regression:.4%} exceeds "
            f"epsilon {result.epsilon:.2%}"
        )
    return failures


def gate_against_baseline(fresh_path: str, baseline_path: str,
                          tolerance: float = 1e-6) -> int:
    """Compare a fresh sweep against the committed baseline.

    The sweep is fully deterministic (seeded generation + analytic
    simulation), so the gate checks the invariants *and* exact agreement
    of the aggregate numbers — any drift means the generator, the planner
    or the charge model changed and needs a deliberate ``--update``.
    """
    fresh = read_sweep_json(fresh_path)
    baseline = read_sweep_json(baseline_path)
    failures = check_sweep_invariants(fresh)

    def close(a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)

    pairs = [
        (f"{arm} downtime", fresh.total_downtime(arm),
         baseline.total_downtime(arm))
        for arm in ARMS
    ]
    pairs.append(("max step regression", fresh.max_step_regression,
                  baseline.max_step_regression))
    for label, fresh_value, base_value in pairs:
        status = "ok" if close(fresh_value, base_value) else "CHANGED"
        print(f"{label:>24}: baseline {base_value:.6f}, "
              f"fresh {fresh_value:.6f} [{status}]")
        if not close(fresh_value, base_value):
            failures.append(
                f"{label} drifted: {fresh_value:.6f} vs committed "
                f"{base_value:.6f}"
            )
    if failures:
        print("scenario gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("scenario gate: OK")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the scenario sweep and optionally gate or re-baseline it.

    ``python -m repro.experiments.scenario_sweep`` runs the sweep and
    writes the fresh JSON; ``--gate`` compares it against the committed
    baseline, ``--update`` refreshes the baseline instead (see also
    ``make gate-scenarios``).
    """
    import argparse
    import os
    import shutil

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--gate", action="store_true",
                        help="compare the fresh run against the baseline")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the fresh run")
    parser.add_argument("--fresh",
                        default="benchmarks/BENCH_scenario_sweep.json",
                        help="where to write the fresh run "
                             "(default: %(default)s)")
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/"
                                "BENCH_scenario_sweep.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--model", default="32b",
                        help="paper workload (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace-generation seed (default: %(default)s)")
    args = parser.parse_args(argv)

    result = run_scenario_sweep(model_name=args.model, seed=args.seed)
    print(format_scenario_sweep(result))
    os.makedirs(os.path.dirname(args.fresh) or ".", exist_ok=True)
    write_sweep_json(result, args.fresh)
    print(f"fresh run written to {args.fresh}")
    if args.update:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated at {args.baseline}")
        return 0
    if args.gate:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; seed it with --update")
            return 1
        return gate_against_baseline(args.fresh, args.baseline)
    invariants = check_sweep_invariants(result)
    for failure in invariants:
        print(f"invariant FAILED: {failure}")
    return 1 if invariants else 0


if __name__ == "__main__":  # pragma: no cover - exercised via make
    import sys

    sys.exit(main())
