"""Event-to-new-plan latency of the planning service on storm presets.

The planning service's headline claim (PR 6): on event-storm regimes the
admission controller coalesces bursts to a fraction of the raw repair
count *without changing the plans* — the service's final plan equals
what direct processing of the coalesced deltas produces — while keeping
event-to-new-plan latency bounded and every event accounted for.

For each storm preset (``flapping``, ``frequent-small-events``) three
arms run over the *identical* seeded trace:

``raw``
    Every generated situation drives
    :meth:`~repro.runtime.malleus.MalleusSystem.on_situation_change`
    directly — the PR-5 behaviour, one planning episode per event.
``service``
    The same situations are submitted to a coalescing
    :class:`~repro.runtime.service.PlanningService` (debounce window in
    sim time, one ``pump`` per event, final ``drain``); every planning
    episode's state is captured.
``replay``
    The captured episode states are replayed through a fresh system
    directly.  Its final plan must equal the service's — the queueing
    machinery must be invisible apart from *which* states get planned.
``speculative`` (PR 8)
    The same trace through a service with ``ServiceConfig(speculate=
    True)`` and a :class:`~repro.runtime.speculate.SpeculationPolicy`
    seeded from the preset's scenario priors.  The service is driven as
    an always-on loop (idle pumps between and after the storm, so idle
    steps can pre-solve), and the arm reports how many repairs were
    served from the speculation cache, the hit rate, and the served
    p50/p99 — the microsecond-response headline.  Its final plan must be
    bit-identical to the plain service arm's.

Determinism: everything except wall-clock latency (event counts, repair
counts, coalesce ratios, plan equality, sim-time queue waits, the
service's counters, speculation hit counts) is seeded and analytic, so
the gate compares those against the committed baseline exactly.
Wall-clock p50/p99 episode latency is machine-dependent and is gated
like the hot-path benchmark — a relative regression tolerance plus
absolute slack.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.scenarios import scenario_preset
from ..cluster.stragglers import ClusterState
from ..runtime.malleus import MalleusSystem
from ..runtime.service import PlanningService, ServiceConfig, percentile
from ..runtime.speculate import SpeculationPolicy
from ..testing.faults import storm_states
from .common import dump_bench_json, format_table, paper_workload

#: Storm presets the service must tame (the acceptance criteria's pair).
DEFAULT_PRESETS = ("flapping", "frequent-small-events")

#: Adjustment kinds that count as a repair episode.
REPAIR_KINDS = ("migrate", "replan", "restart")

#: The acceptance bound: service repairs <= RATIO_BOUND * raw repairs.
RATIO_BOUND = 0.5

#: Speculation acceptance: at least this share of coalesced repairs must
#: be served from the speculation cache on every preset...
SPEC_HIT_BOUND = 0.5
#: ...and the speculative arm's p50 event-to-new-plan latency must be at
#: least this many times lower than the plain service arm's.
SPEC_SPEEDUP_BOUND = 10.0

#: Idle pumps granted after the storm before the queue is force-drained
#: (the always-on loop; debounced tails settle within a few ticks).
SPEC_TAIL_TICKS = 64


@dataclass
class ServiceLatencyRow:
    """One preset's three-arm outcome."""

    preset: str
    seed: int
    #: Events submitted (generated situations after the setup one).
    num_events: int
    #: Planning episodes that changed/kept the plan when every event is
    #: processed directly (the PR-5 cost of the storm).
    raw_repairs: int
    #: Service planning episodes and how many of them repaired.
    episodes: int
    service_repairs: int
    #: service_repairs / raw_repairs (the coalescing win; gate: <= 0.5).
    coalesce_ratio: float
    #: Final service plan == final plan of directly replaying the
    #: service's episode states (the equivalence half of the contract).
    plans_match: bool
    #: Sim-time queue waits over settled episodes (deterministic).
    queue_wait_p50: float
    queue_wait_p99: float
    #: Wall-clock episode latency (machine-dependent; tolerance-gated).
    latency_p50: float
    latency_p99: float
    #: The service's lifetime counters (all deterministic).
    stats: Dict[str, int] = field(default_factory=dict)
    #: Speculative arm (PR 8; defaults keep pre-PR-8 baselines loadable):
    #: repairs it performed, how many were served from the speculation
    #: cache, the hit rate, whether its final plan is bit-identical to
    #: the plain service arm's, its wall-clock episode latency, and the
    #: speculative service's lifetime counters.
    spec_repairs: int = 0
    spec_served: int = 0
    spec_hit_rate: float = 0.0
    spec_plans_match: bool = True
    spec_latency_p50: float = 0.0
    spec_latency_p99: float = 0.0
    spec_stats: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "num_events": self.num_events,
            "raw_repairs": self.raw_repairs,
            "episodes": self.episodes,
            "service_repairs": self.service_repairs,
            "coalesce_ratio": self.coalesce_ratio,
            "plans_match": self.plans_match,
            "queue_wait_p50": self.queue_wait_p50,
            "queue_wait_p99": self.queue_wait_p99,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "stats": dict(self.stats),
            "spec_repairs": self.spec_repairs,
            "spec_served": self.spec_served,
            "spec_hit_rate": self.spec_hit_rate,
            "spec_plans_match": self.spec_plans_match,
            "spec_latency_p50": self.spec_latency_p50,
            "spec_latency_p99": self.spec_latency_p99,
            "spec_stats": dict(self.spec_stats),
        }


@dataclass
class ServiceLatencyResult:
    """Benchmark-wide outcome."""

    model: str
    debounce_window: float
    debounce_limit: float
    rows: List[ServiceLatencyRow] = field(default_factory=list)

    def row(self, preset: str) -> ServiceLatencyRow:
        for row in self.rows:
            if row.preset == preset:
                return row
        raise KeyError(f"preset '{preset}' not in benchmark")

    @property
    def worst_ratio(self) -> float:
        return max((row.coalesce_ratio for row in self.rows), default=0.0)

    @property
    def all_plans_match(self) -> bool:
        return all(row.plans_match for row in self.rows)

    def as_dict(self) -> Dict:
        return {
            "model": self.model,
            "debounce_window": self.debounce_window,
            "debounce_limit": self.debounce_limit,
            "rows": [row.as_dict() for row in self.rows],
            "worst_ratio": self.worst_ratio,
            "all_plans_match": self.all_plans_match,
        }


def _plan_signature(system: MalleusSystem):
    """The comparable identity of a system's current plan."""
    plan = system.plan
    if plan is None:
        return None
    return (plan.stage_shape(), plan.micro_batches(),
            tuple(sorted(plan.active_gpus)))


def _drive_storm(service: PlanningService,
                 events: Sequence[ClusterState]) -> None:
    """Drive a service through a storm as an always-on loop.

    One submission + pump per sim tick during the storm, then idle pumps
    until the debounced tail settles on its own schedule (idle steps are
    where the speculative arm pre-solves), and a terminal drain as a
    backstop.  Both service arms use the *same* loop so their episode
    sequences are identical and the speculative arm's final plan can be
    compared bit-for-bit against the plain arm's.
    """
    for index, state in enumerate(events):
        now = float(index)
        service.submit(state, now=now)
        service.pump(now=now)
    tick = len(events)
    while service.pending and tick < len(events) + SPEC_TAIL_TICKS:
        service.pump(now=float(tick))
        tick += 1
    service.drain(now=float(tick))


def run_service_latency(model_name: str = "32b",
                        presets: Sequence[str] = DEFAULT_PRESETS,
                        seed: int = 1,
                        debounce_window: float = 2.0,
                        debounce_limit: float = 6.0) -> ServiceLatencyResult:
    """Run the four arms over every storm preset.

    The sim clock ticks one second per generated event, so a debounce
    window of 2.0 means "the GPU went two events without moving again".
    """
    result = ServiceLatencyResult(
        model=model_name, debounce_window=debounce_window,
        debounce_limit=debounce_limit,
    )
    for preset in presets:
        workload = paper_workload(model_name)
        states = storm_states(workload.cluster, preset, seed=seed)
        events = states[1:]

        # -- raw arm: one direct episode per event ---------------------
        raw = MalleusSystem(workload.task, workload.cluster,
                            workload.cost_model)
        raw.setup(states[0])
        raw_repairs = 0
        for state in events:
            if raw.on_situation_change(state).kind in REPAIR_KINDS:
                raw_repairs += 1

        # -- service arm: coalesced admission --------------------------
        system = MalleusSystem(workload.task, workload.cluster,
                               workload.cost_model)
        service = PlanningService(system, ServiceConfig(
            coalesce=True, debounce_window=debounce_window,
            debounce_limit=debounce_limit,
        ))
        service.setup(states[0])
        episode_states: List[ClusterState] = []
        inner = system.on_situation_change

        def capture(state, rebalance_only=False, force=False,
                    _inner=inner, _log=episode_states):
            _log.append(state)
            return _inner(state, rebalance_only=rebalance_only, force=force)

        system.on_situation_change = capture
        _drive_storm(service, events)
        system.on_situation_change = inner

        # -- replay arm: the coalesced deltas, processed directly ------
        replay = MalleusSystem(workload.task, workload.cluster,
                               workload.cost_model)
        replay.setup(states[0])
        for state in episode_states:
            replay.on_situation_change(state)

        # -- speculative arm: idle-step pre-solving (PR 8) -------------
        spec_system = MalleusSystem(workload.task, workload.cluster,
                                    workload.cost_model)
        spec_service = PlanningService(
            spec_system,
            ServiceConfig(coalesce=True, debounce_window=debounce_window,
                          debounce_limit=debounce_limit, speculate=True),
            speculation_policy=SpeculationPolicy.from_scenario(
                scenario_preset(preset, seed=seed)),
        )
        spec_service.setup(states[0])
        _drive_storm(spec_service, events)
        spec_repair_records = [
            record for record in spec_service.records
            if record.adjustment.kind in REPAIR_KINDS
        ]
        spec_served = sum(
            1 for record in spec_repair_records if record.adjustment.speculative
        )
        spec_latencies = spec_service.latency_percentiles()

        latencies = service.latency_percentiles()
        waits = service.queue_wait_percentiles()
        result.rows.append(ServiceLatencyRow(
            preset=preset,
            seed=seed,
            num_events=len(events),
            raw_repairs=raw_repairs,
            episodes=service.stats.episodes,
            service_repairs=service.stats.repairs,
            coalesce_ratio=(service.stats.repairs / raw_repairs
                            if raw_repairs else 0.0),
            plans_match=(_plan_signature(system) == _plan_signature(replay)
                         and _plan_signature(system) is not None),
            queue_wait_p50=waits["p50"],
            queue_wait_p99=waits["p99"],
            latency_p50=latencies["p50"],
            latency_p99=latencies["p99"],
            stats=service.stats.as_dict(),
            spec_repairs=len(spec_repair_records),
            spec_served=spec_served,
            spec_hit_rate=(spec_served / len(spec_repair_records)
                           if spec_repair_records else 0.0),
            spec_plans_match=(spec_system.plan == system.plan
                              and spec_system.plan is not None),
            spec_latency_p50=spec_latencies["p50"],
            spec_latency_p99=spec_latencies["p99"],
            spec_stats=spec_service.stats.as_dict(),
        ))
    return result


def format_service_latency(result: ServiceLatencyResult) -> str:
    """Render the per-preset comparison plus aggregates."""
    headers = ["Preset", "Events", "Raw repairs", "Episodes",
               "Svc repairs", "Ratio", "Plans", "Wait p99",
               "Latency p50", "Latency p99", "Spec hits", "Spec p50"]
    rows = []
    for row in result.rows:
        rows.append([
            row.preset,
            f"{row.num_events}",
            f"{row.raw_repairs}",
            f"{row.episodes}",
            f"{row.service_repairs}",
            f"{row.coalesce_ratio:.2f}",
            "match" if row.plans_match and row.spec_plans_match
            else "DIVERGED",
            f"{row.queue_wait_p99:.1f}s",
            f"{row.latency_p50 * 1e3:.1f}ms",
            f"{row.latency_p99 * 1e3:.1f}ms",
            f"{row.spec_served}/{row.spec_repairs}",
            f"{row.spec_latency_p50 * 1e3:.2f}ms",
        ])
    table = format_table(
        headers, rows,
        title=f"Planning-service latency: raw vs coalesced storms "
              f"({result.model}, debounce={result.debounce_window:g}s, "
              f"limit={result.debounce_limit:g}s)",
    )
    summary = (
        f"\nworst coalesce ratio {result.worst_ratio:.2f} "
        f"(bound {RATIO_BOUND:.2f}); plans "
        f"{'all match' if result.all_plans_match else 'DIVERGED'}"
    )
    return table + summary


# ----------------------------------------------------------------------
# Persistence + regression gate
# ----------------------------------------------------------------------
def write_service_json(result: ServiceLatencyResult, path: str) -> None:
    """Persist a run for the regression gate."""
    with open(path, "w") as handle:
        dump_bench_json(result.as_dict(), handle)


#: Percentile fields that are ``null`` on disk when the sample was empty
#: (``percentile([])`` is ``math.nan``; the writer sanitizes it).
PERCENTILE_FIELDS = ("queue_wait_p50", "queue_wait_p99",
                     "latency_p50", "latency_p99",
                     "spec_latency_p50", "spec_latency_p99")


def read_service_json(path: str) -> ServiceLatencyResult:
    """Load a persisted run (``null`` percentiles come back as NaN)."""
    with open(path) as handle:
        payload = json.load(handle)
    result = ServiceLatencyResult(
        model=payload["model"],
        debounce_window=payload["debounce_window"],
        debounce_limit=payload["debounce_limit"],
    )
    for entry in payload["rows"]:
        entry = dict(entry)
        for name in PERCENTILE_FIELDS:
            if entry.get(name) is None:
                entry[name] = math.nan
        result.rows.append(ServiceLatencyRow(**entry))
    return result


def check_service_invariants(result: ServiceLatencyResult) -> List[str]:
    """The benchmark's acceptance contract; returns failure messages."""
    failures = []
    for row in result.rows:
        if row.raw_repairs and \
                row.service_repairs > RATIO_BOUND * row.raw_repairs + 1e-9:
            failures.append(
                f"{row.preset}: {row.service_repairs} service repairs "
                f"exceed {RATIO_BOUND:.0%} of {row.raw_repairs} raw repairs"
            )
        if not row.plans_match:
            failures.append(
                f"{row.preset}: service final plan diverged from directly "
                f"processing the coalesced deltas"
            )
        stats = row.stats
        if stats.get("faults", 0):
            failures.append(f"{row.preset}: {stats['faults']} planning "
                            f"episodes raised")
        settled = stats.get("repairs", 0) + stats.get("no_ops", 0)
        if stats.get("episodes", 0) < settled:
            failures.append(f"{row.preset}: settled episodes exceed total")
        if not math.isfinite(row.queue_wait_p99) or row.queue_wait_p99 < 0:
            failures.append(f"{row.preset}: bad queue-wait p99 "
                            f"{row.queue_wait_p99!r}")
        for label, value in (("latency_p50", row.latency_p50),
                             ("latency_p99", row.latency_p99),
                             ("spec_latency_p50", row.spec_latency_p50),
                             ("spec_latency_p99", row.spec_latency_p99)):
            if not math.isfinite(value) or value < 0:
                failures.append(f"{row.preset}: bad {label} {value!r}")
        # Speculation acceptance (PR 8), only once the speculative arm
        # has run (pre-PR-8 baselines carry empty spec_stats).
        if row.spec_stats:
            if row.spec_hit_rate < SPEC_HIT_BOUND - 1e-9:
                failures.append(
                    f"{row.preset}: speculation hit rate "
                    f"{row.spec_hit_rate:.2f} below {SPEC_HIT_BOUND:.0%} "
                    f"({row.spec_served}/{row.spec_repairs} repairs served)"
                )
            if not row.spec_plans_match:
                failures.append(
                    f"{row.preset}: speculative arm's final plan diverged "
                    f"from the plain service arm's"
                )
            if row.spec_latency_p50 * SPEC_SPEEDUP_BOUND > row.latency_p50:
                failures.append(
                    f"{row.preset}: speculative p50 "
                    f"{row.spec_latency_p50 * 1e3:.2f}ms not "
                    f"{SPEC_SPEEDUP_BOUND:.0f}x below the service arm's "
                    f"{row.latency_p50 * 1e3:.2f}ms"
                )
            served_counted = row.spec_stats.get("spec_hits", 0)
            if served_counted != row.spec_served:
                failures.append(
                    f"{row.preset}: spec_hits counter {served_counted} "
                    f"disagrees with served repairs {row.spec_served}"
                )
    return failures


#: Deterministic per-row fields compared exactly against the baseline.
EXACT_FIELDS = ("num_events", "raw_repairs", "episodes", "service_repairs",
                "coalesce_ratio", "plans_match", "queue_wait_p50",
                "queue_wait_p99", "spec_repairs", "spec_served",
                "spec_hit_rate", "spec_plans_match")


#: The speculative arm's slice of the gate (``--speculative``).
SPEC_EXACT_FIELDS = ("spec_repairs", "spec_served", "spec_hit_rate",
                     "spec_plans_match")


def gate_against_baseline(fresh_path: str, baseline_path: str,
                          tolerance: float = 0.5,
                          min_delta: float = 0.05,
                          speculative_only: bool = False) -> int:
    """Compare a fresh run against the committed baseline.

    Deterministic fields (event/repair counts, coalesce ratios, plan
    equality, sim-time queue waits, service counters, speculation hit
    counts) must agree exactly; wall-clock latency percentiles may
    regress by at most ``tolerance`` relative plus ``min_delta`` absolute
    seconds (timer jitter on millisecond rows must not trip the gate).
    ``speculative_only`` narrows the comparison to the speculative arm's
    fields (``make gate-speculative``); the invariants always run.
    """
    exact_fields = SPEC_EXACT_FIELDS if speculative_only else EXACT_FIELDS
    latency_fields = (("spec_latency_p50", "spec_latency_p99")
                      if speculative_only
                      else ("latency_p50", "latency_p99",
                            "spec_latency_p50", "spec_latency_p99"))
    fresh = read_service_json(fresh_path)
    baseline = read_service_json(baseline_path)
    failures = check_service_invariants(fresh)

    for base_row in baseline.rows:
        try:
            fresh_row = fresh.row(base_row.preset)
        except KeyError:
            failures.append(f"{base_row.preset}: missing from fresh run")
            continue
        for name in exact_fields:
            fresh_value = getattr(fresh_row, name)
            base_value = getattr(base_row, name)
            matches = (
                math.isclose(fresh_value, base_value,
                             rel_tol=1e-9, abs_tol=1e-9)
                if isinstance(base_value, float)
                else fresh_value == base_value
            )
            status = "ok" if matches else "CHANGED"
            print(f"{base_row.preset:>22}.{name}: baseline {base_value}, "
                  f"fresh {fresh_value} [{status}]")
            if not matches:
                failures.append(
                    f"{base_row.preset}: {name} drifted "
                    f"({fresh_value} vs committed {base_value})"
                )
        if not speculative_only and fresh_row.stats != base_row.stats:
            failures.append(
                f"{base_row.preset}: service counters drifted "
                f"({fresh_row.stats} vs committed {base_row.stats})"
            )
        if fresh_row.spec_stats != base_row.spec_stats:
            failures.append(
                f"{base_row.preset}: speculation counters drifted "
                f"({fresh_row.spec_stats} vs committed "
                f"{base_row.spec_stats})"
            )
        for name in latency_fields:
            fresh_value = getattr(fresh_row, name)
            base_value = getattr(base_row, name)
            limit = base_value * (1.0 + tolerance) + min_delta
            status = "ok" if fresh_value <= limit else "REGRESSED"
            print(f"{base_row.preset:>22}.{name}: baseline "
                  f"{base_value * 1e3:.1f}ms, fresh "
                  f"{fresh_value * 1e3:.1f}ms, limit {limit * 1e3:.1f}ms "
                  f"[{status}]")
            if fresh_value > limit:
                failures.append(
                    f"{base_row.preset}: {name} regressed "
                    f"({fresh_value * 1e3:.1f}ms > limit "
                    f"{limit * 1e3:.1f}ms)"
                )
    if failures:
        print("service gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("service gate: OK")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the service-latency benchmark, optionally gate/re-baseline.

    ``python -m repro.experiments.service_latency`` runs the benchmark
    and writes the fresh JSON; ``--gate`` compares it against the
    committed baseline, ``--update`` refreshes the baseline instead (see
    also ``make gate-service``).
    """
    import argparse
    import os
    import shutil

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--gate", action="store_true",
                        help="compare the fresh run against the baseline")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the fresh run")
    parser.add_argument("--speculative", action="store_true",
                        help="gate only the speculative arm's fields "
                             "(hit rate, served repairs, spec p50/p99)")
    parser.add_argument("--fresh",
                        default="benchmarks/BENCH_service_latency.json",
                        help="where to write the fresh run "
                             "(default: %(default)s)")
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/"
                                "BENCH_service_latency.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--model", default="32b",
                        help="paper workload (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace-generation seed (default: %(default)s)")
    args = parser.parse_args(argv)

    result = run_service_latency(model_name=args.model, seed=args.seed)
    print(format_service_latency(result))
    os.makedirs(os.path.dirname(args.fresh) or ".", exist_ok=True)
    write_service_json(result, args.fresh)
    print(f"fresh run written to {args.fresh}")
    if args.update:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated at {args.baseline}")
        return 0
    if args.gate:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; seed it with --update")
            return 1
        return gate_against_baseline(args.fresh, args.baseline,
                                     speculative_only=args.speculative)
    invariants = check_service_invariants(result)
    for failure in invariants:
        print(f"invariant FAILED: {failure}")
    return 1 if invariants else 0


if __name__ == "__main__":  # pragma: no cover - exercised via make
    import sys

    sys.exit(main())
