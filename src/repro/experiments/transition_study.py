"""Transition-aware vs step-time-only planning over the paper trace.

The planner's transition-aware objective
(:class:`~repro.core.planner.TransitionConfig`) treats plan migration as a
first-class cost instead of an invoice discovered after committing to a
plan.  This experiment quantifies the trade on the Figure-7 straggler
trace: the same :class:`~repro.runtime.malleus.MalleusSystem` is driven
through the trace twice — once optimizing step time alone (the default)
and once transition-aware — and the per-situation executed step times,
migration downtimes and migrated bytes are compared.

The contract asserted by ``benchmarks/test_bench_transition_study.py`` and
the ``--gate`` entry point:

* cumulative migration downtime is **strictly lower** transition-aware;
* no situation's executed step time regresses by more than the configured
  ``epsilon`` (1% by default — the step-time guard of the objective).

Every quantity here is produced by the analytic simulator, so runs are
deterministic and machine-independent; the regression gate compares fresh
runs against the committed baseline exactly (small float tolerance), not
within a wall-clock band.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.trace import paper_trace
from ..core.planner import TransitionConfig
from ..runtime.malleus import MalleusSystem
from ..simulator.session import run_trace
from .common import dump_bench_json, format_table, paper_workload


@dataclass
class TransitionStudyRow:
    """Per-situation comparison of the two planning objectives."""

    situation: str
    baseline_step_time: float
    aware_step_time: float
    baseline_migration_time: float
    aware_migration_time: float
    baseline_migration_gb: float
    aware_migration_gb: float
    event_kind: str = ""
    repair_tier: str = ""

    @property
    def step_regression(self) -> float:
        """Relative executed step-time regression (positive = aware slower)."""
        if self.baseline_step_time <= 0:
            return 0.0
        return self.aware_step_time / self.baseline_step_time - 1.0

    def as_dict(self) -> Dict:
        """JSON-serialisable view."""
        return asdict(self)


@dataclass
class TransitionStudyResult:
    """Trace-wide outcome of the transition study."""

    model: str
    epsilon: float
    horizon_steps: float
    incremental: bool
    rows: List[TransitionStudyRow] = field(default_factory=list)
    baseline_total_time: float = 0.0
    aware_total_time: float = 0.0

    @property
    def baseline_migration_downtime(self) -> float:
        """Cumulative migration downtime of the step-time-only system."""
        return sum(row.baseline_migration_time for row in self.rows)

    @property
    def aware_migration_downtime(self) -> float:
        """Cumulative migration downtime of the transition-aware system."""
        return sum(row.aware_migration_time for row in self.rows)

    @property
    def downtime_saving(self) -> float:
        """Migration downtime saved by planning transition-aware."""
        return self.baseline_migration_downtime - self.aware_migration_downtime

    @property
    def baseline_migration_gb(self) -> float:
        """Cumulative migrated bytes (GB) of the step-time-only system."""
        return sum(row.baseline_migration_gb for row in self.rows)

    @property
    def aware_migration_gb(self) -> float:
        """Cumulative migrated bytes (GB) of the transition-aware system."""
        return sum(row.aware_migration_gb for row in self.rows)

    @property
    def max_step_regression(self) -> float:
        """Worst per-situation executed step-time regression."""
        return max((row.step_regression for row in self.rows), default=0.0)

    def as_dict(self) -> Dict:
        """JSON-serialisable view (includes the derived aggregates)."""
        return {
            "model": self.model,
            "epsilon": self.epsilon,
            "horizon_steps": self.horizon_steps,
            "incremental": self.incremental,
            "rows": [row.as_dict() for row in self.rows],
            "baseline_total_time": self.baseline_total_time,
            "aware_total_time": self.aware_total_time,
            "baseline_migration_downtime": self.baseline_migration_downtime,
            "aware_migration_downtime": self.aware_migration_downtime,
            "max_step_regression": self.max_step_regression,
        }


def run_transition_study(model_name: str = "32b",
                         epsilon: float = 0.01,
                         horizon_steps: float = 20.0,
                         incremental: bool = True,
                         duration_steps: int = 100) -> TransitionStudyResult:
    """Drive the paper trace step-time-only vs transition-aware.

    Both systems see the identical trace and charge migrations with the
    identical topology-aware model; only the planning objective differs.
    """
    runs = {}
    for key, config in [
        ("baseline", None),
        ("aware", TransitionConfig(enabled=True, epsilon=epsilon,
                                   horizon_steps=horizon_steps)),
    ]:
        workload = paper_workload(model_name)
        system = MalleusSystem(workload.task, workload.cluster,
                               workload.cost_model, incremental=incremental,
                               transition_config=config)
        trace = paper_trace(workload.cluster, duration_steps=duration_steps)
        runs[key] = run_trace(system, trace)

    result = TransitionStudyResult(
        model=model_name, epsilon=epsilon, horizon_steps=horizon_steps,
        incremental=incremental,
        baseline_total_time=runs["baseline"].total_time,
        aware_total_time=runs["aware"].total_time,
    )
    for base, aware in zip(runs["baseline"].situations,
                           runs["aware"].situations):
        result.rows.append(TransitionStudyRow(
            situation=base.situation,
            baseline_step_time=base.avg_step_time,
            aware_step_time=aware.avg_step_time,
            baseline_migration_time=base.adjustment.downtime,
            aware_migration_time=aware.adjustment.downtime,
            baseline_migration_gb=base.adjustment.migration_bytes / 1e9,
            aware_migration_gb=aware.adjustment.migration_bytes / 1e9,
            event_kind=aware.adjustment.event_kind,
            repair_tier=aware.adjustment.repair_tier,
        ))
    return result


def format_transition_study(result: TransitionStudyResult) -> str:
    """Render the per-situation comparison plus the trace aggregates."""
    headers = ["Situation", "Step (base)", "Step (aware)", "Regression",
               "Mig (base)", "Mig (aware)", "Moved (aware)"]
    rows = []
    for row in result.rows:
        rows.append([
            row.situation,
            f"{row.baseline_step_time:.3f}s",
            f"{row.aware_step_time:.3f}s",
            f"{row.step_regression:+.3%}",
            f"{row.baseline_migration_time:.3f}s",
            f"{row.aware_migration_time:.3f}s",
            f"{row.aware_migration_gb:.0f}GB",
        ])
    table = format_table(
        headers, rows,
        title=f"Transition-aware vs step-time-only planning "
              f"({result.model}, eps={result.epsilon:.1%}, "
              f"horizon={result.horizon_steps:g})",
    )
    summary = (
        f"\ncumulative migration downtime: "
        f"{result.baseline_migration_downtime:.4f}s -> "
        f"{result.aware_migration_downtime:.4f}s "
        f"(saved {result.downtime_saving:.4f}s); "
        f"moved {result.baseline_migration_gb:.0f}GB -> "
        f"{result.aware_migration_gb:.0f}GB; "
        f"max step regression {result.max_step_regression:+.3%}; "
        f"trace time {result.baseline_total_time:.1f}s -> "
        f"{result.aware_total_time:.1f}s"
    )
    return table + summary


# ----------------------------------------------------------------------
# Persistence + regression gate
# ----------------------------------------------------------------------
def write_study_json(result: TransitionStudyResult, path: str) -> None:
    """Persist a run for the regression gate."""
    with open(path, "w") as handle:
        dump_bench_json(result.as_dict(), handle)


def read_study_json(path: str) -> TransitionStudyResult:
    """Load a persisted run."""
    with open(path) as handle:
        payload = json.load(handle)
    result = TransitionStudyResult(
        model=payload["model"], epsilon=payload["epsilon"],
        horizon_steps=payload["horizon_steps"],
        incremental=payload["incremental"],
        baseline_total_time=payload["baseline_total_time"],
        aware_total_time=payload["aware_total_time"],
        rows=[TransitionStudyRow(**row) for row in payload["rows"]],
    )
    return result


def check_study_invariants(result: TransitionStudyResult) -> List[str]:
    """The study's acceptance contract; returns failure messages."""
    failures = []
    if not result.aware_migration_downtime \
            < result.baseline_migration_downtime:
        failures.append(
            f"cumulative migration downtime not strictly lower: "
            f"aware {result.aware_migration_downtime:.6f}s vs baseline "
            f"{result.baseline_migration_downtime:.6f}s"
        )
    if result.max_step_regression > result.epsilon + 1e-9:
        failures.append(
            f"step-time regression {result.max_step_regression:.4%} exceeds "
            f"epsilon {result.epsilon:.2%}"
        )
    return failures


def gate_against_baseline(fresh_path: str, baseline_path: str,
                          tolerance: float = 1e-6) -> int:
    """Compare a fresh study run against the committed baseline.

    The study is fully deterministic (analytic simulation, no wall-clock
    input), so the gate checks the invariants *and* that the aggregate
    numbers match the committed baseline within a float tolerance —
    a mismatch means the planning objective or the charge model changed
    and the baseline needs a deliberate ``--update``.
    """
    fresh = read_study_json(fresh_path)
    baseline = read_study_json(baseline_path)
    failures = check_study_invariants(fresh)

    def close(a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)

    pairs = [
        ("baseline migration downtime", fresh.baseline_migration_downtime,
         baseline.baseline_migration_downtime),
        ("aware migration downtime", fresh.aware_migration_downtime,
         baseline.aware_migration_downtime),
        ("max step regression", fresh.max_step_regression,
         baseline.max_step_regression),
    ]
    for label, fresh_value, base_value in pairs:
        status = "ok" if close(fresh_value, base_value) else "CHANGED"
        print(f"{label:>32}: baseline {base_value:.6f}, "
              f"fresh {fresh_value:.6f} [{status}]")
        if not close(fresh_value, base_value):
            failures.append(
                f"{label} drifted: {fresh_value:.6f} vs committed "
                f"{base_value:.6f}"
            )
    if failures:
        print("transition gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("transition gate: OK")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run the transition study and optionally gate or re-baseline it.

    ``python -m repro.experiments.transition_study`` runs the study and
    writes the fresh JSON; ``--gate`` compares it against the committed
    baseline, ``--update`` refreshes the baseline instead (see also
    ``make gate-transition``).
    """
    import argparse
    import os
    import shutil

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--gate", action="store_true",
                        help="compare the fresh run against the baseline")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the fresh run")
    parser.add_argument("--fresh",
                        default="benchmarks/BENCH_transition_study.json",
                        help="where to write the fresh run "
                             "(default: %(default)s)")
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/"
                                "BENCH_transition_study.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--model", default="32b",
                        help="paper workload (default: %(default)s)")
    args = parser.parse_args(argv)

    result = run_transition_study(model_name=args.model)
    print(format_transition_study(result))
    os.makedirs(os.path.dirname(args.fresh) or ".", exist_ok=True)
    write_study_json(result, args.fresh)
    print(f"fresh run written to {args.fresh}")
    if args.update:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated at {args.baseline}")
        return 0
    if args.gate:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; seed it with --update")
            return 1
        return gate_against_baseline(args.fresh, args.baseline)
    invariants = check_study_invariants(result)
    for failure in invariants:
        print(f"invariant FAILED: {failure}")
    return 1 if invariants else 0


if __name__ == "__main__":  # pragma: no cover - exercised via make
    import sys

    sys.exit(main())
