"""What-if replay benchmark + operator CLI.

Two entry points share this module:

* The **deterministic benchmark/gate** (no ``--trace``): record one
  session per scenario preset, verify the no-edit replay is bit-identical
  to the live run, run leave-one-out attribution, and compare the top-k
  culprit/event rankings (GPU ids exactly, lost-seconds to 1e-6) against
  the committed baseline — ``python -m repro.experiments.whatif --gate``
  (see ``make gate-whatif``).

* The **operator CLI** (with ``--trace``): load a recorded session
  (``--record PRESET --out FILE`` writes one), optionally apply edits
  (``--edit heal:14 --edit remove-node:0 ...``) and/or print the
  attribution report (``--report``), with ``--json`` for machine-readable
  output::

      python -m repro.experiments.whatif --record flapping --out run.jsonl
      python -m repro.experiments.whatif --trace run.jsonl --edit heal:14
      python -m repro.experiments.whatif --trace run.jsonl --report
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.scenarios import generate_trace
from ..runtime.malleus import MalleusSystem
from ..whatif import (
    FreezePlan,
    ScaleGpuRate,
    SessionTrace,
    SuppressEvent,
    RemoveNode,
    WhatIfEngine,
    attribute,
    heal,
    record_session,
)
from .common import dump_bench_json, format_table, paper_workload

#: Presets the benchmark records and attributes (the gate's coverage).
DEFAULT_PRESETS = ("persistent-degraders", "flapping")

#: Leave-one-out candidates per preset (caps replay count, not ranking
#: quality for the top-k — the prior only prunes the long tail).
MAX_CANDIDATES = 10

DEFAULT_TOP_K = 5


@dataclass
class WhatIfRow:
    """One preset's recorded-replay-attribute outcome."""

    preset: str
    seed: int
    num_events: int
    #: The no-edit replay reproduced the live run bit-identically.
    replay_matches: bool
    baseline_total: float
    #: Top-k culprit GPUs (leave-one-out heal), worst first.
    culprits: List[Dict[str, object]] = field(default_factory=list)
    #: Top-k events (suppress-one-event), worst first.
    events: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "preset": self.preset,
            "seed": self.seed,
            "num_events": self.num_events,
            "replay_matches": self.replay_matches,
            "baseline_total": self.baseline_total,
            "culprits": [dict(c) for c in self.culprits],
            "events": [dict(e) for e in self.events],
        }


@dataclass
class WhatIfResult:
    """Benchmark-wide outcome."""

    model: str
    top_k: int
    rows: List[WhatIfRow] = field(default_factory=list)

    def row(self, preset: str) -> WhatIfRow:
        for row in self.rows:
            if row.preset == preset:
                return row
        raise KeyError(f"preset '{preset}' not in benchmark")

    @property
    def all_replays_match(self) -> bool:
        return all(row.replay_matches for row in self.rows)

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "top_k": self.top_k,
            "rows": [row.as_dict() for row in self.rows],
            "all_replays_match": self.all_replays_match,
        }


def run_whatif_report(model_name: str = "32b",
                      presets: Sequence[str] = DEFAULT_PRESETS,
                      seed: int = 1,
                      top_k: int = DEFAULT_TOP_K,
                      max_candidates: int = MAX_CANDIDATES) -> WhatIfResult:
    """Record, replay and attribute one session per preset."""
    workload = paper_workload(model_name)
    result = WhatIfResult(model=model_name, top_k=top_k)
    for preset in presets:
        trace = generate_trace(workload.cluster, preset, seed=seed)
        system = MalleusSystem(workload.task, workload.cluster,
                               workload.cost_model)
        _, session = record_session(
            system, trace, metadata={"preset": preset, "seed": seed})
        report = attribute(session, top_k=top_k,
                           max_candidates=max_candidates)
        result.rows.append(WhatIfRow(
            preset=preset,
            seed=seed,
            num_events=session.num_events,
            replay_matches=report.baseline_matches_recording,
            baseline_total=report.baseline_total,
            culprits=[c.as_dict() for c in report.top_culprits()],
            events=[e.as_dict() for e in report.top_events()],
        ))
    return result


def format_whatif(result: WhatIfResult) -> str:
    """Render the benchmark rows."""
    rows = []
    for row in result.rows:
        top_culprit = row.culprits[0] if row.culprits else None
        rows.append((
            row.preset,
            row.num_events,
            "yes" if row.replay_matches else "NO",
            f"{row.baseline_total:.2f}",
            f"x{top_culprit['gpu']}" if top_culprit else "-",
            f"{top_culprit['lost_seconds']:+.2f}" if top_culprit else "-",
        ))
    return format_table(
        ["preset", "events", "replay ==", "total (s)",
         "top culprit", "lost (s)"],
        rows,
        title=f"What-if replay + attribution ({result.model}, "
              f"top-{result.top_k})")


# ----------------------------------------------------------------------
# Persistence + regression gate
# ----------------------------------------------------------------------
def write_whatif_json(result: WhatIfResult, path: str) -> None:
    """Persist a run for the deterministic gate."""
    with open(path, "w") as handle:
        dump_bench_json(result.as_dict(), handle)


def read_whatif_json(path: str) -> WhatIfResult:
    """Load a persisted run."""
    with open(path) as handle:
        payload = json.load(handle)
    result = WhatIfResult(model=payload["model"], top_k=payload["top_k"])
    for entry in payload["rows"]:
        result.rows.append(WhatIfRow(
            preset=entry["preset"], seed=entry["seed"],
            num_events=entry["num_events"],
            replay_matches=entry["replay_matches"],
            baseline_total=entry["baseline_total"],
            culprits=entry.get("culprits", []),
            events=entry.get("events", []),
        ))
    return result


def check_whatif_invariants(result: WhatIfResult) -> List[str]:
    """The what-if acceptance contract; returns failure messages."""
    failures = []
    for row in result.rows:
        if not row.replay_matches:
            failures.append(
                f"{row.preset}: no-edit replay diverged from the recording")
        losses = [c["lost_seconds"] for c in row.culprits]
        if losses != sorted(losses, reverse=True):
            failures.append(f"{row.preset}: culprits not ranked by loss")
        event_losses = [e["lost_seconds"] for e in row.events]
        if event_losses != sorted(event_losses, reverse=True):
            failures.append(f"{row.preset}: events not ranked by loss")
    for row in result.rows:
        if not row.preset.startswith("persistent"):
            continue
        # The seeded persistent degrader must surface as the top culprit:
        # a GPU degraded across multiple episodes with a strictly
        # positive leave-one-out cost.
        if not row.culprits:
            failures.append(f"{row.preset}: no culprits attributed")
            continue
        top = row.culprits[0]
        if top["lost_seconds"] <= 0.0:
            failures.append(
                f"{row.preset}: top culprit x{top['gpu']} has non-positive "
                f"loss {top['lost_seconds']:.4f}s")
        if top["degraded_events"] < 2:
            failures.append(
                f"{row.preset}: top culprit x{top['gpu']} degraded in only "
                f"{top['degraded_events']} episode(s) — not the persistent "
                "degrader")
    return failures


def gate_against_baseline(fresh_path: str, baseline_path: str,
                          tolerance: float = 1e-6) -> int:
    """Compare a fresh run against the committed baseline.

    The whole pipeline is deterministic (seeded generation, analytic
    simulation, seeded profiler), so culprit/event *identities* must
    match exactly and every lost-seconds figure to ``tolerance`` — any
    drift means recording, replay or attribution changed behaviour and
    needs a deliberate ``--update``.
    """
    fresh = read_whatif_json(fresh_path)
    baseline = read_whatif_json(baseline_path)
    failures = check_whatif_invariants(fresh)

    def close(a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)

    for base_row in baseline.rows:
        try:
            fresh_row = fresh.row(base_row.preset)
        except KeyError:
            failures.append(f"{base_row.preset}: missing from the fresh run")
            continue
        checks = [
            ("num_events", fresh_row.num_events, base_row.num_events),
            ("replay_matches", fresh_row.replay_matches,
             base_row.replay_matches),
            ("culprit gpus", [c["gpu"] for c in fresh_row.culprits],
             [c["gpu"] for c in base_row.culprits]),
            ("event indices", [e["index"] for e in fresh_row.events],
             [e["index"] for e in base_row.events]),
        ]
        for label, fresh_value, base_value in checks:
            status = "ok" if fresh_value == base_value else "CHANGED"
            print(f"{base_row.preset:>22} {label:>14}: {status}")
            if fresh_value != base_value:
                failures.append(
                    f"{base_row.preset}: {label} drifted: {fresh_value!r} "
                    f"vs committed {base_value!r}")
        numeric = [("baseline_total", fresh_row.baseline_total,
                    base_row.baseline_total)]
        numeric += [
            (f"culprit x{bc['gpu']} loss", fc["lost_seconds"],
             bc["lost_seconds"])
            for fc, bc in zip(fresh_row.culprits, base_row.culprits)
            if fc["gpu"] == bc["gpu"]
        ]
        numeric += [
            (f"event {be['index']} loss", fe["lost_seconds"],
             be["lost_seconds"])
            for fe, be in zip(fresh_row.events, base_row.events)
            if fe["index"] == be["index"]
        ]
        for label, fresh_value, base_value in numeric:
            if not close(fresh_value, base_value):
                failures.append(
                    f"{base_row.preset}: {label} drifted: {fresh_value:.6f} "
                    f"vs committed {base_value:.6f}")
    if failures:
        print("whatif gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("whatif gate: OK")
    return 0


# ----------------------------------------------------------------------
# Operator CLI helpers
# ----------------------------------------------------------------------
def parse_edit(spec: str):
    """Parse one ``--edit`` spec into a what-if edit.

    Formats: ``heal:GPU``, ``scale:GPU:FACTOR``, ``remove-node:NODE``,
    ``freeze:AFTER_EVENT``, ``suppress:EVENT``.
    """
    parts = spec.split(":")
    kind, args = parts[0], parts[1:]
    try:
        if kind == "heal" and len(args) == 1:
            return heal(int(args[0]))
        if kind == "scale" and len(args) == 2:
            return ScaleGpuRate(gpu=int(args[0]), factor=float(args[1]))
        if kind == "remove-node" and len(args) == 1:
            return RemoveNode(node=int(args[0]))
        if kind == "freeze" and len(args) == 1:
            return FreezePlan(after_event=int(args[0]))
        if kind == "suppress" and len(args) == 1:
            return SuppressEvent(index=int(args[0]))
    except ValueError as exc:
        raise ValueError(f"bad --edit {spec!r}: {exc}") from None
    raise ValueError(
        f"bad --edit {spec!r}; expected heal:GPU, scale:GPU:FACTOR, "
        "remove-node:NODE, freeze:AFTER_EVENT or suppress:EVENT")


def record_preset_session(preset: str, out_path: str,
                          model_name: str = "32b", seed: int = 1) -> None:
    """Record one preset session and save it as a session trace."""
    workload = paper_workload(model_name)
    trace = generate_trace(workload.cluster, preset, seed=seed)
    system = MalleusSystem(workload.task, workload.cluster,
                           workload.cost_model)
    _, session = record_session(
        system, trace, metadata={"preset": preset, "seed": seed})
    session.save(out_path)
    print(f"recorded {session.num_events} episodes of '{preset}' "
          f"(seed {seed}, {model_name}) to {out_path}")


def _run_trace_cli(args) -> int:
    """The ``--trace`` path: replay with edits and/or attribute."""
    session = SessionTrace.load(args.trace)
    engine = WhatIfEngine()
    payload: Dict[str, object] = {"trace": args.trace}
    status = 0
    if args.edit:
        edits = [parse_edit(spec) for spec in args.edit]
        baseline = engine.replay(session)
        edited = engine.replay(session, edits)
        delta = edited.total_time - baseline.total_time
        print(f"baseline total: {baseline.total_time:.2f} s")
        print(f"edited total:   {edited.total_time:.2f} s "
              f"({delta:+.2f} s under {', '.join(args.edit)})")
        rows = [
            (event.index, event.situation or "-",
             f"{recorded.step_time:.4f}", f"{event.step_time:.4f}",
             f"{event.adjustment.downtime:.2f}",
             event.adjustment.kind)
            for recorded, event in zip(session.events, edited.events)
        ]
        print(format_table(
            ["event", "situation", "recorded step", "edited step",
             "downtime", "kind"], rows, title="Edited replay"))
        payload["edits"] = list(args.edit)
        payload["baseline_total"] = baseline.total_time
        payload["edited_total"] = edited.total_time
    else:
        replay = engine.replay(session)
        mismatches = replay.mismatches()
        print(f"replay of {args.trace}: {len(replay.events)} episodes, "
              f"total {replay.total_time:.2f} s, "
              f"{'bit-identical to the recording' if not mismatches else 'DIVERGED'}")
        for line in mismatches[:10]:
            print(f"  - {line}")
        payload["total"] = replay.total_time
        payload["matches_recording"] = not mismatches
        status = 1 if mismatches else 0
    if args.report:
        report = attribute(session, top_k=args.top_k,
                           max_candidates=args.max_candidates)
        print()
        print(report.format())
        payload["report"] = report.as_dict()
    if args.json:
        with open(args.json, "w") as handle:
            dump_bench_json(payload, handle)
        print(f"json report written to {args.json}")
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: what-if replay over recorded sessions.

    Without ``--trace``/``--record``: run the deterministic two-preset
    benchmark and optionally gate (``--gate``) or re-baseline
    (``--update``) it — see ``make gate-whatif``.  With ``--record``:
    record a preset session to ``--out``.  With ``--trace``: replay a
    recorded session under ``--edit`` specs and/or print the
    leave-one-out attribution report (``--report``).
    """
    import argparse
    import os
    import shutil

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--trace", help="recorded session trace to analyse")
    parser.add_argument("--edit", action="append", default=[],
                        help="what-if edit (repeatable): heal:GPU, "
                             "scale:GPU:FACTOR, remove-node:NODE, "
                             "freeze:AFTER_EVENT, suppress:EVENT")
    parser.add_argument("--report", action="store_true",
                        help="print the leave-one-out attribution report")
    parser.add_argument("--json", help="write machine-readable output here")
    parser.add_argument("--record", metavar="PRESET",
                        help="record a scenario-preset session instead")
    parser.add_argument("--out", default="session.jsonl",
                        help="output path for --record "
                             "(default: %(default)s)")
    parser.add_argument("--top-k", type=int, default=DEFAULT_TOP_K,
                        help="attribution depth (default: %(default)s)")
    parser.add_argument("--max-candidates", type=int, default=MAX_CANDIDATES,
                        help="leave-one-out candidate cap "
                             "(default: %(default)s)")
    parser.add_argument("--gate", action="store_true",
                        help="compare the fresh run against the baseline")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baseline from the fresh run")
    parser.add_argument("--fresh",
                        default="benchmarks/BENCH_whatif.json",
                        help="where to write the fresh run "
                             "(default: %(default)s)")
    parser.add_argument("--baseline",
                        default="benchmarks/baselines/BENCH_whatif.json",
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--model", default="32b",
                        help="paper workload (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace-generation seed (default: %(default)s)")
    args = parser.parse_args(argv)

    if args.record:
        record_preset_session(args.record, args.out,
                              model_name=args.model, seed=args.seed)
        return 0
    if args.trace:
        return _run_trace_cli(args)

    result = run_whatif_report(model_name=args.model, seed=args.seed,
                               top_k=args.top_k,
                               max_candidates=args.max_candidates)
    print(format_whatif(result))
    os.makedirs(os.path.dirname(args.fresh) or ".", exist_ok=True)
    write_whatif_json(result, args.fresh)
    print(f"fresh run written to {args.fresh}")
    if args.update:
        os.makedirs(os.path.dirname(args.baseline) or ".", exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"baseline updated at {args.baseline}")
        return 0
    if args.gate:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; seed it with --update")
            return 1
        return gate_against_baseline(args.fresh, args.baseline)
    invariants = check_whatif_invariants(result)
    for failure in invariants:
        print(f"invariant FAILED: {failure}")
    return 1 if invariants else 0


if __name__ == "__main__":  # pragma: no cover - exercised via make
    import sys

    sys.exit(main())
