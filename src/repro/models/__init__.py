"""Model specifications (architecture shapes, FLOPs and memory estimates)."""

from .presets import (
    DEFAULT_SEQ_LENGTH,
    DEFAULT_VOCAB_SIZE,
    get_model,
    llama2_32b,
    llama2_70b,
    llama2_110b,
    paper_task,
)
from .spec import TrainingTask, TransformerModelSpec

__all__ = [
    "DEFAULT_SEQ_LENGTH",
    "DEFAULT_VOCAB_SIZE",
    "TransformerModelSpec",
    "TrainingTask",
    "get_model",
    "llama2_32b",
    "llama2_70b",
    "llama2_110b",
    "paper_task",
]
