"""Preset model configurations matching the paper's evaluation workloads.

The paper trains three LLaMA-2-architecture models with 32B, 70B and 110B
parameters, context length 4K and a global batch size of 64 sequences
(256K tokens per step).  The 32B model has 60 transformer layers (Appendix
A.1 enumerates layer splits out of 60) and the 70B/110B models have 80
layers (Appendix A.3 mentions partitioning "the 80 total layers").
"""

from __future__ import annotations

from .spec import TrainingTask, TransformerModelSpec

DEFAULT_SEQ_LENGTH = 4096
DEFAULT_VOCAB_SIZE = 32000


def llama2_32b(seq_length: int = DEFAULT_SEQ_LENGTH) -> TransformerModelSpec:
    """The 32B-parameter model trained on 32 GPUs in the paper."""
    return TransformerModelSpec(
        name="llama2-32b",
        num_layers=60,
        hidden_size=6656,
        ffn_hidden_size=17920,
        num_attention_heads=52,
        num_kv_heads=52,
        vocab_size=DEFAULT_VOCAB_SIZE,
        seq_length=seq_length,
    )


def llama2_70b(seq_length: int = DEFAULT_SEQ_LENGTH) -> TransformerModelSpec:
    """The 70B-parameter model (LLaMA-2 70B shape) trained on 64 GPUs."""
    return TransformerModelSpec(
        name="llama2-70b",
        num_layers=80,
        hidden_size=8192,
        ffn_hidden_size=28672,
        num_attention_heads=64,
        num_kv_heads=8,
        vocab_size=DEFAULT_VOCAB_SIZE,
        seq_length=seq_length,
    )


def llama2_110b(seq_length: int = DEFAULT_SEQ_LENGTH) -> TransformerModelSpec:
    """The 110B-parameter model trained on 64 GPUs in the paper."""
    return TransformerModelSpec(
        name="llama2-110b",
        num_layers=80,
        hidden_size=10240,
        ffn_hidden_size=35840,
        num_attention_heads=80,
        num_kv_heads=8,
        vocab_size=DEFAULT_VOCAB_SIZE,
        seq_length=seq_length,
    )


_PRESETS = {
    "32b": llama2_32b,
    "70b": llama2_70b,
    "110b": llama2_110b,
    "llama2-32b": llama2_32b,
    "llama2-70b": llama2_70b,
    "llama2-110b": llama2_110b,
}


def get_model(name: str, seq_length: int = DEFAULT_SEQ_LENGTH) -> TransformerModelSpec:
    """Look up a preset model by name (e.g. ``"32b"`` or ``"llama2-70b"``)."""
    key = name.lower()
    if key not in _PRESETS:
        raise KeyError(
            f"unknown model preset '{name}'; available: {sorted(set(_PRESETS))}"
        )
    return _PRESETS[key](seq_length=seq_length)


def paper_task(name: str, global_batch_size: int = 64,
               seq_length: int = DEFAULT_SEQ_LENGTH) -> TrainingTask:
    """Build the training task used in the paper's evaluation for ``name``."""
    return TrainingTask(
        model=get_model(name, seq_length=seq_length),
        global_batch_size=global_batch_size,
        micro_batch_size=1,
    )
