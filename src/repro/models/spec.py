"""Transformer model specifications used throughout the reproduction.

The paper evaluates three LLaMA-2-architecture models (32B, 70B and 110B
parameters).  The planner and the execution simulator never touch real
weights; they only need the *shape* of the model: the number of identical
transformer layers, the hidden sizes that determine per-layer FLOPs and
memory, and the embedding/LM-head sizes that make the first and last
pipeline stages slightly non-uniform (Appendix B.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TransformerModelSpec:
    """Architecture description of a decoder-only transformer.

    Attributes mirror the quantities the Malleus cost model needs: the
    number of identical layers ``num_layers`` (``L`` in the paper), the
    hidden dimension, the feed-forward dimension (SwiGLU uses three
    projection matrices), attention head counts (grouped-query attention
    is supported through ``num_kv_heads``), vocabulary size and the
    training sequence length.
    """

    name: str
    num_layers: int
    hidden_size: int
    ffn_hidden_size: int
    num_attention_heads: int
    num_kv_heads: int
    vocab_size: int
    seq_length: int
    tie_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if self.hidden_size <= 0 or self.ffn_hidden_size <= 0:
            raise ValueError("hidden sizes must be positive")
        if self.num_attention_heads <= 0 or self.num_kv_heads <= 0:
            raise ValueError("head counts must be positive")
        if self.num_attention_heads % self.num_kv_heads != 0:
            raise ValueError(
                "num_attention_heads must be a multiple of num_kv_heads"
            )
        if self.hidden_size % self.num_attention_heads != 0:
            raise ValueError("hidden_size must be divisible by num_attention_heads")
        if self.seq_length <= 0:
            raise ValueError("seq_length must be positive")

    # ------------------------------------------------------------------
    # Parameter counts
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Dimension of one attention head."""
        return self.hidden_size // self.num_attention_heads

    @property
    def kv_hidden_size(self) -> int:
        """Total width of the key/value projections (GQA-aware)."""
        return self.num_kv_heads * self.head_dim

    def attention_params_per_layer(self) -> int:
        """Parameters of one attention block (Q, K, V and output proj)."""
        h = self.hidden_size
        kv = self.kv_hidden_size
        return h * h + 2 * h * kv + h * h

    def ffn_params_per_layer(self) -> int:
        """Parameters of one SwiGLU feed-forward block (gate, up, down)."""
        return 3 * self.hidden_size * self.ffn_hidden_size

    def norm_params_per_layer(self) -> int:
        """Parameters of the two RMSNorm blocks of a layer."""
        return 2 * self.hidden_size

    def params_per_layer(self) -> int:
        """Parameters of one identical transformer layer."""
        return (
            self.attention_params_per_layer()
            + self.ffn_params_per_layer()
            + self.norm_params_per_layer()
        )

    def embedding_params(self) -> int:
        """Parameters of the input embedding table."""
        return self.vocab_size * self.hidden_size

    def lm_head_params(self) -> int:
        """Parameters of the output projection (0 if tied to embeddings)."""
        if self.tie_embeddings:
            return 0
        return self.vocab_size * self.hidden_size

    def total_params(self) -> int:
        """Total parameter count of the full model."""
        return (
            self.num_layers * self.params_per_layer()
            + self.embedding_params()
            + self.lm_head_params()
            + self.hidden_size  # final norm
        )

    # ------------------------------------------------------------------
    # FLOPs
    # ------------------------------------------------------------------
    def flops_per_token_per_layer(self) -> float:
        """Forward-pass FLOPs of one layer for one token.

        Uses the standard 2 FLOPs per multiply-accumulate convention and
        includes the quadratic attention term so that the Model FLOPs
        Utilization reported by the benchmark harness matches the way the
        paper computes MFU.
        """
        h = self.hidden_size
        kv = self.kv_hidden_size
        s = self.seq_length
        matmul = 2 * (h * h + 2 * h * kv + h * h)  # q, k, v, out projections
        matmul += 2 * 3 * h * self.ffn_hidden_size  # SwiGLU
        attention = 2 * 2 * s * h  # QK^T and attn*V, averaged per token
        return float(matmul + attention)

    def flops_per_token(self) -> float:
        """Forward-pass FLOPs of the whole model for one token."""
        layer = self.flops_per_token_per_layer() * self.num_layers
        head = 2 * self.hidden_size * self.vocab_size
        return layer + head

    def training_flops_per_token(self) -> float:
        """Forward + backward FLOPs per token (backward costs 2x forward)."""
        return 3.0 * self.flops_per_token()

    def training_flops_per_layer(self, num_tokens: int) -> float:
        """Forward + backward FLOPs of a single layer for ``num_tokens``."""
        return 3.0 * self.flops_per_token_per_layer() * num_tokens

    # ------------------------------------------------------------------
    # Memory (bytes), before any parallel sharding
    # ------------------------------------------------------------------
    def layer_param_bytes(self, bytes_per_param: int = 2) -> float:
        """Bytes of the parameters of one layer (default bf16)."""
        return float(self.params_per_layer() * bytes_per_param)

    def layer_activation_bytes(self, micro_batch_size: int) -> float:
        """Activation bytes stored for the backward pass of one layer.

        A widely used estimate for a transformer layer with selective
        recomputation disabled is roughly ``34 * s * b * h`` bytes in bf16
        (attention scores excluded thanks to FlashAttention).
        """
        return 34.0 * self.seq_length * micro_batch_size * self.hidden_size

    def embedding_activation_bytes(self, micro_batch_size: int) -> float:
        """Activation bytes of the embedding lookup for one micro-batch."""
        return 2.0 * self.seq_length * micro_batch_size * self.hidden_size

    def lm_head_activation_bytes(self, micro_batch_size: int) -> float:
        """Activation bytes of the LM head (logits) for one micro-batch."""
        # Logits in fp32 dominate: s * b * vocab * 4 bytes.
        return 4.0 * self.seq_length * micro_batch_size * self.vocab_size

    def describe(self) -> str:
        """Human-readable one-line description."""
        billions = self.total_params() / 1e9
        return (
            f"{self.name}: {billions:.1f}B params, {self.num_layers} layers, "
            f"hidden {self.hidden_size}, seq {self.seq_length}"
        )


@dataclass
class TrainingTask:
    """A training workload: a model plus batching hyper-parameters.

    ``global_batch_size`` is ``B`` in the paper (number of sequences per
    step) and stays fixed regardless of the straggler situation; Malleus is
    lossless by construction.  ``micro_batch_size`` is the default ``b``
    used when the planner does not enumerate it.
    """

    model: TransformerModelSpec
    global_batch_size: int = 64
    micro_batch_size: int = 1
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.global_batch_size <= 0:
            raise ValueError("global_batch_size must be positive")
        if self.micro_batch_size <= 0:
            raise ValueError("micro_batch_size must be positive")
        if self.global_batch_size % self.micro_batch_size != 0:
            raise ValueError(
                "global_batch_size must be divisible by micro_batch_size"
            )

    @property
    def num_micro_batches(self) -> int:
        """Total number of micro-batches per training step."""
        return self.global_batch_size // self.micro_batch_size

    @property
    def tokens_per_step(self) -> int:
        """Number of tokens consumed per training step."""
        return self.global_batch_size * self.model.seq_length
