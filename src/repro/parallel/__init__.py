"""Parallelization plan structures, ZeRO-1 sharding and model migration."""

from .migration import (
    BATCH_LATENCY,
    DEFAULT_LAYER_PACK,
    MigrationPlan,
    Transfer,
    estimate_migration_time,
    plan_migration,
)
from .plan import (
    ParallelizationPlan,
    PipelinePlan,
    PipelineStage,
    TPGroup,
    uniform_megatron_plan,
)
from .sharding import (
    ShardSlice,
    communication_call_order,
    gpu_slice_counts,
    gradient_sync_groups,
    optimizer_ownership,
    parameter_ownership,
    validate_sharding,
)

__all__ = [
    "BATCH_LATENCY",
    "DEFAULT_LAYER_PACK",
    "MigrationPlan",
    "ParallelizationPlan",
    "PipelinePlan",
    "PipelineStage",
    "ShardSlice",
    "TPGroup",
    "Transfer",
    "communication_call_order",
    "estimate_migration_time",
    "gpu_slice_counts",
    "gradient_sync_groups",
    "optimizer_ownership",
    "parameter_ownership",
    "plan_migration",
    "uniform_megatron_plan",
    "validate_sharding",
]
