"""Parallelization plan structures, ZeRO-1 sharding and model migration."""

from .migration import (
    BATCH_LATENCY,
    DEFAULT_LAYER_PACK,
    MigrationPlan,
    Transfer,
    TransitionEstimate,
    estimate_migration_time,
    estimate_transition_cost,
    layout_from_candidate,
    layout_from_plan,
    link_times,
    plan_migration,
    transition_time_lower_bound,
)
from .plan import (
    ParallelizationPlan,
    PipelinePlan,
    PipelineStage,
    TPGroup,
    uniform_megatron_plan,
)
from .sharding import (
    ShardSlice,
    communication_call_order,
    gpu_slice_counts,
    gradient_sync_groups,
    optimizer_ownership,
    parameter_ownership,
    validate_sharding,
)

__all__ = [
    "BATCH_LATENCY",
    "DEFAULT_LAYER_PACK",
    "MigrationPlan",
    "ParallelizationPlan",
    "PipelinePlan",
    "PipelineStage",
    "ShardSlice",
    "TPGroup",
    "Transfer",
    "TransitionEstimate",
    "communication_call_order",
    "estimate_migration_time",
    "estimate_transition_cost",
    "gpu_slice_counts",
    "gradient_sync_groups",
    "layout_from_candidate",
    "layout_from_plan",
    "link_times",
    "optimizer_ownership",
    "parameter_ownership",
    "plan_migration",
    "transition_time_lower_bound",
    "uniform_megatron_plan",
    "validate_sharding",
]
