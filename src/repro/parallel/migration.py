"""On-the-fly model-state migration between parallelization plans (§5.1).

When the planner produces a new plan, every GPU may need different layer
parameters and optimizer-state slices than it currently holds.  Malleus
locates, for every slice required by the new plan, a source GPU that holds
it under the old plan, fuses the transfers into batched send/recv calls and
packs several layers (4 by default) per batch to saturate the network.

This module computes the migration plan (who sends what to whom) and an
analytic estimate of the migration time from the cluster's bandwidths.  The
simulator charges this time once per plan adjustment, which reproduces the
~1-5 s migration overhead the paper reports.

Transition-aware planning
-------------------------
Re-planning makes migration a *recurring* cost, so the planner scores it at
planning time instead of discovering it on the invoice (see
:class:`repro.core.planner.TransitionConfig`).  Three pieces support that:

* **topology-aware timing** — :func:`estimate_migration_time` charges every
  fused (src, dst) batch on its actual link (intra-node vs inter-node
  bandwidth from the :class:`~repro.cluster.topology.Cluster`) and
  serialises the batches sharing a GPU's ingress/egress link; the previous
  flat ``inter_node_bandwidth`` + global batch-count formula is kept under
  ``legacy=True`` (the paper-magnitude reproduction tests pin it);
* **load-balanced sources** — replica pulls spread over the old holders by
  current outgoing load instead of funnelling through the lowest GPU id;
* **plan-free cost estimation** — :func:`estimate_transition_cost` prices
  the migrated bytes and the migration time of a *candidate* (an
  unmaterialized :class:`~repro.core.assignment.PlanCandidate` or a built
  plan) directly from the stage layouts, composing with the planner's
  deferred materialization: candidates can be scored transition-aware
  without ever building them.  The estimate replays the migration
  planner's own per-transfer load-balanced source selection on the
  layouts, so whenever the old layout fully covers the model state the
  per-pair traffic — and therefore :func:`estimate_migration_time` —
  is reproduced *exactly*, not approximately.

Overlapped migration
--------------------
Stop-the-world migration is pessimistic: elastic systems keep training at
the **old** plan while the state streams in the background and only stall
for the *exposed tail* — whatever the bottleneck link could not drain
inside the overlap window.  The charge model supports this via a uniform
``hideable_seconds`` window (the wall-clock training time the migration
may hide under, typically ``overlap_steps x old-plan step time``):
:meth:`TransitionEstimate.exposed_seconds` and
:meth:`~repro.simulator.executor.ExecutionSimulator.migration_downtime`
charge ``max(0, drain_time - hideable_seconds)``.  A zero window (the
default everywhere) is bit-identical to the non-overlapped charge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster
from .plan import ParallelizationPlan
from .sharding import optimizer_ownership, parameter_ownership

Interval = Tuple[float, float]

#: Number of layers fused into one batched send/recv (paper default).
DEFAULT_LAYER_PACK = 4

#: Per-batched-send-recv launch latency (seconds).
BATCH_LATENCY = 0.005

#: One pipeline's stage layout: ``(gpu_ids, num_layers)`` per kept stage.
StageLayout = Tuple[Tuple[int, ...], int]

#: A plan's full layout: kept stages of every surviving pipeline, in
#: pipeline order.  This is the exact information migration cost depends
#: on — micro-batch counts only matter through pipeline survival.
PlanLayout = List[List[StageLayout]]


@dataclass
class Transfer:
    """A single point-to-point transfer of part of a layer's state."""

    layer_index: int
    src_gpu: int
    dst_gpu: int
    num_bytes: float
    kind: str  # "param" or "optimizer"


@dataclass
class MigrationPlan:
    """All transfers needed to move from one plan to another."""

    transfers: List[Transfer] = field(default_factory=list)
    layer_pack: int = DEFAULT_LAYER_PACK

    @property
    def total_bytes(self) -> float:
        """Total migrated volume in bytes."""
        return sum(t.num_bytes for t in self.transfers)

    @property
    def num_transfers(self) -> int:
        """Number of individual transfers before fusing."""
        return len(self.transfers)

    def bytes_by_pair(self) -> Dict[Tuple[int, int], float]:
        """Aggregate volume per (src, dst) GPU pair (the fused batches)."""
        pairs: Dict[Tuple[int, int], float] = {}
        for transfer in self.transfers:
            key = (transfer.src_gpu, transfer.dst_gpu)
            pairs[key] = pairs.get(key, 0.0) + transfer.num_bytes
        return pairs

    def pair_traffic(self) -> Dict[Tuple[int, int], Tuple[float, int]]:
        """Per (src, dst) pair: (total bytes, distinct layers touched).

        A pair's transfers are fused into ``ceil(layers / layer_pack)``
        batched send/recv calls, which is what the topology-aware timing
        charges per link.
        """
        volumes: Dict[Tuple[int, int], float] = {}
        layers: Dict[Tuple[int, int], set] = {}
        for transfer in self.transfers:
            key = (transfer.src_gpu, transfer.dst_gpu)
            volumes[key] = volumes.get(key, 0.0) + transfer.num_bytes
            layers.setdefault(key, set()).add(transfer.layer_index)
        return {
            key: (volumes[key], len(layers[key])) for key in volumes
        }

    def bytes_sent_per_gpu(self) -> Dict[int, float]:
        """Outgoing volume per GPU."""
        out: Dict[int, float] = {}
        for transfer in self.transfers:
            out[transfer.src_gpu] = out.get(transfer.src_gpu, 0.0) + transfer.num_bytes
        return out

    def bytes_received_per_gpu(self) -> Dict[int, float]:
        """Incoming volume per GPU."""
        incoming: Dict[int, float] = {}
        for transfer in self.transfers:
            incoming[transfer.dst_gpu] = (
                incoming.get(transfer.dst_gpu, 0.0) + transfer.num_bytes
            )
        return incoming


# ----------------------------------------------------------------------
# Interval helpers
# ----------------------------------------------------------------------
def _overlap(a: Interval, b: Interval) -> float:
    """Length of the overlap between two [start, end) intervals."""
    return max(0.0, min(a[1], b[1]) - max(a[0], b[0]))


def _interval_minus(needed: Interval, held: Sequence[Interval]) -> List[Interval]:
    """Portions of ``needed`` not covered by any interval in ``held``."""
    segments = [needed]
    for h in sorted(held):
        next_segments: List[Interval] = []
        for seg in segments:
            overlap = _overlap(seg, h)
            if overlap <= 1e-12:
                next_segments.append(seg)
                continue
            if seg[0] < h[0]:
                next_segments.append((seg[0], min(seg[1], h[0])))
            if seg[1] > h[1]:
                next_segments.append((max(seg[0], h[1]), seg[1]))
        segments = [s for s in next_segments if s[1] - s[0] > 1e-12]
    return segments


# ----------------------------------------------------------------------
# Migration planning
# ----------------------------------------------------------------------
def _pick_source(cluster: Cluster, dst_gpu: int, candidates: Sequence[int],
                 outgoing_load: Optional[Dict[int, float]] = None) -> int:
    """Pick the source GPU for a replica pull.

    Same-node holders are preferred (the pull then rides the intra-node
    link); ties break by the holders' *current outgoing load* so concurrent
    pulls of the same layer spread across the replicas instead of
    serialising on the lowest-id holder's egress link, then by GPU id for
    determinism.
    """
    same_node = [
        g for g in candidates
        if cluster.gpu(g).node_id == cluster.gpu(dst_gpu).node_id
    ]
    pool = same_node or list(candidates)
    if outgoing_load is None:
        return min(pool)
    return min(pool, key=lambda g: (outgoing_load.get(g, 0.0), g))


def plan_migration(
    old_plan: ParallelizationPlan,
    new_plan: ParallelizationPlan,
    cluster: Cluster,
    layer_param_bytes: float,
    layer_optimizer_bytes: float,
    layer_pack: int = DEFAULT_LAYER_PACK,
) -> MigrationPlan:
    """Compute the transfers needed to realise ``new_plan`` from ``old_plan``.

    Parameters
    ----------
    layer_param_bytes:
        Bytes of the bf16 parameters (+gradients are re-computed, not moved)
        of one full layer.
    layer_optimizer_bytes:
        Bytes of the fp32 optimizer states of one full layer.
    """
    if old_plan.num_layers != new_plan.num_layers:
        raise ValueError("plans describe different models")
    plan = MigrationPlan(layer_pack=layer_pack)
    num_layers = new_plan.num_layers
    outgoing_load: Dict[int, float] = {}

    for layer in range(num_layers):
        old_params = parameter_ownership(old_plan, layer)
        new_params = parameter_ownership(new_plan, layer)
        # Parameter replicas: any old holder of the needed interval can serve.
        for dst_gpu, needed_intervals in new_params.items():
            held = old_params.get(dst_gpu, [])
            for needed in needed_intervals:
                for missing in _interval_minus(needed, held):
                    length = missing[1] - missing[0]
                    candidates = [
                        g for g, intervals in old_params.items()
                        if any(_overlap(missing, i) > 1e-12 for i in intervals)
                    ]
                    if not candidates:
                        continue  # freshly materialised (e.g. from checkpoint)
                    num_bytes = length * layer_param_bytes
                    src = _pick_source(cluster, dst_gpu, candidates,
                                       outgoing_load)
                    outgoing_load[src] = outgoing_load.get(src, 0.0) + num_bytes
                    plan.transfers.append(
                        Transfer(
                            layer_index=layer,
                            src_gpu=src,
                            dst_gpu=dst_gpu,
                            num_bytes=num_bytes,
                            kind="param",
                        )
                    )

        # Optimizer slices: unique old owner -> unique new owner.
        old_slices = optimizer_ownership(old_plan, layer)
        new_slices = optimizer_ownership(new_plan, layer)
        for new_slice in new_slices:
            needed = new_slice.fraction
            for old_slice in old_slices:
                overlap = _overlap(needed, old_slice.fraction)
                if overlap <= 1e-12:
                    continue
                if old_slice.owner_gpu == new_slice.owner_gpu:
                    continue
                num_bytes = overlap * layer_optimizer_bytes
                outgoing_load[old_slice.owner_gpu] = \
                    outgoing_load.get(old_slice.owner_gpu, 0.0) + num_bytes
                plan.transfers.append(
                    Transfer(
                        layer_index=layer,
                        src_gpu=old_slice.owner_gpu,
                        dst_gpu=new_slice.owner_gpu,
                        num_bytes=num_bytes,
                        kind="optimizer",
                    )
                )
    return plan


def link_times(plan: MigrationPlan, cluster: Cluster) -> Dict[int, float]:
    """Per-GPU migration busy time under the topology-aware charge model.

    Each (src, dst) pair's transfers are fused into ``ceil(layers /
    layer_pack)`` batched send/recv calls on the pair's actual link
    (intra-node bandwidth when src and dst share a node, inter-node
    otherwise), each batch paying :data:`BATCH_LATENCY`.  Distinct pairs
    proceed in parallel, but batches sharing a GPU's ingress or egress
    link serialise on it; a GPU's busy time is the larger of the two.
    """
    egress: Dict[int, float] = {}
    ingress: Dict[int, float] = {}
    pack = max(1, plan.layer_pack)
    for (src, dst), (volume, layers) in plan.pair_traffic().items():
        bandwidth = cluster.bandwidth_between(src, dst)
        batches = math.ceil(max(1, layers) / pack)
        seconds = volume / bandwidth + batches * BATCH_LATENCY
        egress[src] = egress.get(src, 0.0) + seconds
        ingress[dst] = ingress.get(dst, 0.0) + seconds
    return {
        gpu_id: max(egress.get(gpu_id, 0.0), ingress.get(gpu_id, 0.0))
        for gpu_id in set(egress) | set(ingress)
    }


def estimate_migration_time(plan: MigrationPlan, cluster: Cluster,
                            num_layers: Optional[int] = None,
                            legacy: bool = False) -> float:
    """Analytic migration time of a computed migration plan.

    The default model charges fused per-pair batches on the critical link
    (see :func:`link_times`): every (src, dst) pair's batches ride that
    pair's actual bandwidth, pairs proceed in parallel, and the migration
    completes when the most loaded ingress/egress link drains.

    ``legacy=True`` restores the original formula — the most loaded GPU's
    volume over the flat ``inter_node_bandwidth`` plus one global
    ``ceil(num_layers / layer_pack)`` batch-latency term even when pairs
    proceed in parallel — which the paper-magnitude reproduction tests pin
    (``num_layers`` is only consulted by this path).
    """
    if not plan.transfers:
        return 0.0
    if legacy:
        sent = plan.bytes_sent_per_gpu()
        received = plan.bytes_received_per_gpu()
        worst_time = 0.0
        for gpu_id in set(sent) | set(received):
            volume = max(sent.get(gpu_id, 0.0), received.get(gpu_id, 0.0))
            # Conservatively assume cross-node bandwidth for the bottleneck.
            bandwidth = cluster.inter_node_bandwidth
            worst_time = max(worst_time, volume / bandwidth)
        layers_touched = num_layers
        if layers_touched is None:
            layers_touched = len({t.layer_index for t in plan.transfers})
        num_batches = math.ceil(max(1, layers_touched) / max(1, plan.layer_pack))
        return worst_time + num_batches * BATCH_LATENCY
    times = link_times(plan, cluster)
    return max(times.values()) if times else 0.0


# ----------------------------------------------------------------------
# Plan-free transition cost estimation
# ----------------------------------------------------------------------
@dataclass
class TransitionEstimate:
    """Analytic cost of transitioning between two layouts.

    ``param_bytes`` / ``optimizer_bytes`` are the volumes the new layout's
    GPUs must *receive* (exact for fully-covered state, see
    :func:`estimate_transition_cost`); ``seconds`` is the resulting
    migration-time estimate (the non-overlapped, stop-the-world drain
    time); ``layers_touched`` counts layers with any transfer (for
    batching diagnostics).
    """

    param_bytes: float = 0.0
    optimizer_bytes: float = 0.0
    seconds: float = 0.0
    layers_touched: int = 0
    max_received_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Total migrated volume in bytes."""
        return self.param_bytes + self.optimizer_bytes

    def exposed_seconds(self, hideable_seconds: float = 0.0) -> float:
        """Stall time after hiding the drain under concurrent training.

        With overlapped migration the job keeps training at the old plan
        for ``hideable_seconds`` of wall-clock time while the transfers
        stream in the background; only the tail the bottleneck link could
        not drain inside that window stalls training.  A zero window
        recovers :attr:`seconds` exactly.
        """
        return max(0.0, self.seconds - max(0.0, hideable_seconds))


def layout_from_plan(plan: ParallelizationPlan) -> PlanLayout:
    """Extract the migration-relevant layout of a materialized plan."""
    return [
        [(stage.gpu_ids, stage.num_layers) for stage in pipeline.stages]
        for pipeline in plan.pipelines
    ]


def layout_from_candidate(candidate) -> PlanLayout:
    """Extract the layout of an *unmaterialized* lower-level candidate.

    ``candidate`` is duck-typed as a
    :class:`~repro.core.assignment.PlanCandidate` (``pipelines_groups``,
    ``layer_results``, ``micro_batches``) so this module stays importable
    from the core layer without a cycle.  Mirrors
    :func:`~repro.core.assignment.build_plan`: zero-micro-batch pipelines
    and zero-layer stages are dropped — the layout is exactly what the
    built plan's ownership maps would describe, at none of the
    materialization cost.
    """
    layout: PlanLayout = []
    for groups, layer_result, m_i in zip(candidate.pipelines_groups,
                                         candidate.layer_results,
                                         candidate.micro_batches):
        if m_i <= 0:
            continue
        stages = [
            (group.gpu_ids, layers)
            for group, layers in zip(groups, layer_result.layers)
            if layers > 0
        ]
        if stages:
            layout.append(stages)
    return layout


#: Per-GPU holdings: sorted list of ``(layer_start, layer_end, lo, hi)``
#: half-open layer ranges, each held as the fractional interval [lo, hi).
_Holdings = Dict[int, List[Tuple[int, int, float, float]]]


def _param_holdings(layout: PlanLayout) -> _Holdings:
    """Fractional parameter intervals per GPU (one replica per pipeline)."""
    holdings: _Holdings = {}
    for pipeline in layout:
        cursor = 0
        for gpu_ids, layers in pipeline:
            k = len(gpu_ids)
            for rank, gpu_id in enumerate(gpu_ids):
                holdings.setdefault(gpu_id, []).append(
                    (cursor, cursor + layers, rank / k, (rank + 1) / k)
                )
            cursor += layers
    return holdings


def _segment_boundaries(*layouts: PlanLayout) -> List[int]:
    """Sorted union of every stage boundary across the given layouts."""
    cuts = set()
    for layout in layouts:
        for pipeline in layout:
            cursor = 0
            cuts.add(0)
            for _, layers in pipeline:
                cursor += layers
                cuts.add(cursor)
    return sorted(cuts)


def _optimizer_partition(layout: PlanLayout, start: int,
                         end: int) -> List[Tuple[float, float, int]]:
    """The ZeRO-1 owner partition of [0, 1) over one layer segment.

    ``[start, end)`` must not straddle a stage boundary of ``layout``; the
    returned ``(lo, hi, gpu)`` pieces are sorted by ``lo`` and cover [0, 1)
    exactly once (per layer) because pipelines' bands are disjoint and each
    stage's ranks tile its band.
    """
    pieces: List[Tuple[float, float, int]] = []
    dp = len(layout)
    for i, pipeline in enumerate(layout):
        cursor = 0
        for gpu_ids, layers in pipeline:
            if cursor <= start and end <= cursor + layers:
                k = len(gpu_ids)
                for rank, gpu_id in enumerate(gpu_ids):
                    pieces.append(((i + rank / k) / dp,
                                   (i + (rank + 1) / k) / dp, gpu_id))
                break
            cursor += layers
    pieces.sort()
    return pieces


def _optimizer_segment_transfers(
    old_layout: PlanLayout,
    new_layout: PlanLayout,
    start: int,
    end: int,
    layer_optimizer_bytes: float,
) -> List[Tuple[int, int, float]]:
    """Per-layer optimizer transfers ``(src, dst, bytes)`` over one segment.

    ZeRO-1 slices have a *unique* old owner and a unique new owner, so the
    transfers — every overlap between an old piece and a new piece with
    different owners — are fully determined by the layouts and are
    identical for every layer of the segment.
    """
    transfers: List[Tuple[int, int, float]] = []
    old_pieces = _optimizer_partition(old_layout, start, end)
    new_pieces = _optimizer_partition(new_layout, start, end)
    i = j = 0
    while i < len(old_pieces) and j < len(new_pieces):
        o_lo, o_hi, src = old_pieces[i]
        n_lo, n_hi, dst = new_pieces[j]
        lo, hi = max(o_lo, n_lo), min(o_hi, n_hi)
        if hi - lo > 1e-12 and src != dst:
            transfers.append((src, dst, (hi - lo) * layer_optimizer_bytes))
        if o_hi <= n_hi:
            i += 1
        if n_hi <= o_hi:
            j += 1
    return transfers


def _param_pieces(layout: PlanLayout, start: int,
                  end: int) -> List[Tuple[float, float, int]]:
    """Per-pipeline parameter shards ``(lo, hi, gpu)`` over one segment.

    Unlike the optimizer partition, parameters are *replicated*: every
    pipeline contributes one full cover of [0, 1), so the returned pieces
    overlap across pipelines — exactly the replica pool a migration can
    source a pull from.
    """
    pieces: List[Tuple[float, float, int]] = []
    for pipeline in layout:
        cursor = 0
        for gpu_ids, layers in pipeline:
            if cursor <= start and end <= cursor + layers:
                k = len(gpu_ids)
                for rank, gpu_id in enumerate(gpu_ids):
                    pieces.append((rank / k, (rank + 1) / k, gpu_id))
                break
            cursor += layers
    return pieces


def transition_pair_traffic(
    old_layout: PlanLayout,
    new_layout: PlanLayout,
    cluster: Cluster,
    layer_param_bytes: float,
    layer_optimizer_bytes: float,
) -> Tuple[Dict[Tuple[int, int], Tuple[float, int]], TransitionEstimate]:
    """Exact (src, dst) migration traffic between two layouts.

    Replays :func:`plan_migration`'s decision process directly on the
    layouts: per layer, parameter pulls pick their source from the
    same-node replica pool first, then by accumulated outgoing load, then
    by GPU id — with optimizer transfers feeding the same load account —
    so the per-pair volumes *and* fused batch counts (distinct layers per
    pair) coincide with the materialized migration plan whenever the old
    layout fully covers the model state.  Both owner partitions are
    constant between stage boundaries, so the pools and per-layer
    templates are computed once per segment; only the O(transfers)
    load-balancing replay runs per layer.

    Returns the per-pair ``(bytes, distinct_layers)`` traffic plus a
    partially-filled :class:`TransitionEstimate` (byte totals, received
    volumes and ``layers_touched``; ``seconds`` is left at zero for the
    caller to price).
    """
    pairs: Dict[Tuple[int, int], List[float]] = {}
    pair_last_layer: Dict[Tuple[int, int], int] = {}
    outgoing_load: Dict[int, float] = {}
    received: Dict[int, float] = {}
    param_bytes = 0.0
    optimizer_bytes = 0.0
    layers_touched = 0

    def add(src: int, dst: int, volume: float, layer: int) -> None:
        key = (src, dst)
        entry = pairs.setdefault(key, [0.0, 0])
        entry[0] += volume
        if pair_last_layer.get(key) != layer:
            pair_last_layer[key] = layer
            entry[1] += 1

    cuts = _segment_boundaries(old_layout, new_layout)
    for start, end in zip(cuts, cuts[1:]):
        if end <= start:
            continue
        old_pieces = _param_pieces(old_layout, start, end)
        held: Dict[int, List[Interval]] = {}
        for lo, hi, gpu_id in old_pieces:
            held.setdefault(gpu_id, []).append((lo, hi))
        # Per-layer parameter-pull templates: (dst, bytes, source pool),
        # in the migration planner's destination order.
        pulls: List[Tuple[int, float, Optional[List[int]]]] = []
        fresh_per_layer: Dict[int, float] = {}
        for lo, hi, dst in _param_pieces(new_layout, start, end):
            for missing in _interval_minus((lo, hi), held.get(dst, ())):
                volume = (missing[1] - missing[0]) * layer_param_bytes
                pool = [
                    g for p_lo, p_hi, g in old_pieces
                    if _overlap(missing, (p_lo, p_hi)) > 1e-12
                ]
                if not pool:
                    # Freshly materialised (no surviving holder): counted
                    # as migrated volume — an upper bound — but there is
                    # no transfer to charge a link for.
                    fresh_per_layer[dst] = fresh_per_layer.get(dst, 0.0) \
                        + volume
                    continue
                dst_node = cluster.gpu(dst).node_id
                same = [g for g in pool
                        if cluster.gpu(g).node_id == dst_node]
                pulls.append((dst, volume, same or pool))
        optimizer = _optimizer_segment_transfers(
            old_layout, new_layout, start, end, layer_optimizer_bytes)

        segment_touched = bool(pulls or optimizer or fresh_per_layer)
        for layer in range(start, end):
            if segment_touched:
                layers_touched += 1
            for dst, volume, pool in pulls:
                src = min(pool, key=lambda g: (outgoing_load.get(g, 0.0), g))
                outgoing_load[src] = outgoing_load.get(src, 0.0) + volume
                param_bytes += volume
                received[dst] = received.get(dst, 0.0) + volume
                add(src, dst, volume, layer)
            for dst, volume in fresh_per_layer.items():
                param_bytes += volume
                received[dst] = received.get(dst, 0.0) + volume
            for src, dst, volume in optimizer:
                outgoing_load[src] = outgoing_load.get(src, 0.0) + volume
                optimizer_bytes += volume
                received[dst] = received.get(dst, 0.0) + volume
                add(src, dst, volume, layer)

    estimate = TransitionEstimate(
        param_bytes=param_bytes,
        optimizer_bytes=optimizer_bytes,
        layers_touched=layers_touched,
        max_received_bytes=max(received.values()) if received else 0.0,
    )
    traffic = {key: (volume, int(layers))
               for key, (volume, layers) in pairs.items()}
    return traffic, estimate


def estimate_transition_cost(
    old_layout: PlanLayout,
    new_layout: PlanLayout,
    cluster: Cluster,
    layer_param_bytes: float,
    layer_optimizer_bytes: float,
    layer_pack: int = DEFAULT_LAYER_PACK,
) -> TransitionEstimate:
    """Price the migration cost of moving between two plan layouts.

    Works entirely on :data:`PlanLayout` values (see
    :func:`layout_from_plan` / :func:`layout_from_candidate`), so planner
    candidates can be scored without materializing them.  Both byte totals
    are exact against the corresponding :func:`plan_migration` whenever
    the old layout fully covers the model state (always true for a
    previously-built plan); parameter state with no surviving holder (a
    membership change) is counted as migrated too, making the byte total
    an upper bound there.

    The time estimate replays the migration planner's per-transfer
    load-balanced source selection (:func:`transition_pair_traffic`) and
    charges the resulting fused per-pair batches exactly like
    :func:`link_times`, so on fully-covered state it *equals*
    ``estimate_migration_time(plan_migration(old, new, ...), cluster)``
    (asserted by ``tests/test_migration_properties.py``).
    """
    pack = max(1, layer_pack)
    traffic, estimate = transition_pair_traffic(
        old_layout, new_layout, cluster, layer_param_bytes,
        layer_optimizer_bytes,
    )
    egress: Dict[int, float] = {}
    ingress: Dict[int, float] = {}
    for (src, dst), (volume, layers) in traffic.items():
        bandwidth = cluster.bandwidth_between(src, dst)
        batches = math.ceil(max(1, layers) / pack)
        seconds = volume / bandwidth + batches * BATCH_LATENCY
        egress[src] = egress.get(src, 0.0) + seconds
        ingress[dst] = ingress.get(dst, 0.0) + seconds
    if egress or ingress:
        estimate.seconds = max(
            max(egress.get(g, 0.0), ingress.get(g, 0.0))
            for g in set(egress) | set(ingress)
        )
    return estimate


def transition_time_lower_bound(
    old_layout: PlanLayout,
    available_gpus: Sequence[int],
    cluster: Cluster,
    layer_param_bytes: float,
    num_layers: int,
) -> float:
    """Provable lower bound on any candidate plan's migration time.

    Every materialized plan keeps at least one pipeline, and every
    surviving pipeline holds a full parameter replica; whatever portion of
    one replica the candidate's available GPUs do not already hold must be
    received over the network, taking at least ``deficit / (num_gpus *
    max_bandwidth)`` seconds no matter how the transfers are arranged.

    The bound is deliberately conservative — a candidate may park any GPU,
    so nothing beyond one replica can be forced — and is therefore usually
    zero (the term only bites after holders disappear, e.g. around
    membership changes).  Its value is its soundness: added to the
    planner's step-time lower bound it never prunes a candidate the
    transition-aware objective could still pick, and it is exactly zero
    when transition-aware planning is disabled.
    """
    available = set(available_gpus)
    held = 0.0
    for gpu_id, entries in _param_holdings(old_layout).items():
        if gpu_id not in available:
            continue
        for (ls, le, lo, hi) in entries:
            held += (le - ls) * (hi - lo)
    deficit = num_layers - held
    if deficit <= 1e-9 or not available:
        return 0.0
    max_bandwidth = max(
        [cluster.inter_node_bandwidth]
        + [node.intra_node_bandwidth for node in cluster.nodes]
    )
    return deficit * layer_param_bytes / (len(available) * max_bandwidth)
