"""On-the-fly model-state migration between parallelization plans (§5.1).

When the planner produces a new plan, every GPU may need different layer
parameters and optimizer-state slices than it currently holds.  Malleus
locates, for every slice required by the new plan, a source GPU that holds
it under the old plan, fuses the transfers into batched send/recv calls and
packs several layers (4 by default) per batch to saturate the network.

This module computes the migration plan (who sends what to whom) and an
analytic estimate of the migration time from the cluster's bandwidths.  The
simulator charges this time once per plan adjustment, which reproduces the
~1-5 s migration overhead the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster
from .plan import ParallelizationPlan
from .sharding import optimizer_ownership, parameter_ownership

Interval = Tuple[float, float]

#: Number of layers fused into one batched send/recv (paper default).
DEFAULT_LAYER_PACK = 4

#: Per-batched-send-recv launch latency (seconds).
BATCH_LATENCY = 0.005


@dataclass
class Transfer:
    """A single point-to-point transfer of part of a layer's state."""

    layer_index: int
    src_gpu: int
    dst_gpu: int
    num_bytes: float
    kind: str  # "param" or "optimizer"


@dataclass
class MigrationPlan:
    """All transfers needed to move from one plan to another."""

    transfers: List[Transfer] = field(default_factory=list)
    layer_pack: int = DEFAULT_LAYER_PACK

    @property
    def total_bytes(self) -> float:
        """Total migrated volume in bytes."""
        return sum(t.num_bytes for t in self.transfers)

    @property
    def num_transfers(self) -> int:
        """Number of individual transfers before fusing."""
        return len(self.transfers)

    def bytes_by_pair(self) -> Dict[Tuple[int, int], float]:
        """Aggregate volume per (src, dst) GPU pair (the fused batches)."""
        pairs: Dict[Tuple[int, int], float] = {}
        for transfer in self.transfers:
            key = (transfer.src_gpu, transfer.dst_gpu)
            pairs[key] = pairs.get(key, 0.0) + transfer.num_bytes
        return pairs

    def bytes_sent_per_gpu(self) -> Dict[int, float]:
        """Outgoing volume per GPU."""
        out: Dict[int, float] = {}
        for transfer in self.transfers:
            out[transfer.src_gpu] = out.get(transfer.src_gpu, 0.0) + transfer.num_bytes
        return out

    def bytes_received_per_gpu(self) -> Dict[int, float]:
        """Incoming volume per GPU."""
        incoming: Dict[int, float] = {}
        for transfer in self.transfers:
            incoming[transfer.dst_gpu] = (
                incoming.get(transfer.dst_gpu, 0.0) + transfer.num_bytes
            )
        return incoming


# ----------------------------------------------------------------------
# Interval helpers
# ----------------------------------------------------------------------
def _overlap(a: Interval, b: Interval) -> float:
    """Length of the overlap between two [start, end) intervals."""
    return max(0.0, min(a[1], b[1]) - max(a[0], b[0]))


def _interval_minus(needed: Interval, held: Sequence[Interval]) -> List[Interval]:
    """Portions of ``needed`` not covered by any interval in ``held``."""
    segments = [needed]
    for h in sorted(held):
        next_segments: List[Interval] = []
        for seg in segments:
            overlap = _overlap(seg, h)
            if overlap <= 1e-12:
                next_segments.append(seg)
                continue
            if seg[0] < h[0]:
                next_segments.append((seg[0], min(seg[1], h[0])))
            if seg[1] > h[1]:
                next_segments.append((max(seg[0], h[1]), seg[1]))
        segments = [s for s in next_segments if s[1] - s[0] > 1e-12]
    return segments


# ----------------------------------------------------------------------
# Migration planning
# ----------------------------------------------------------------------
def _pick_source(cluster: Cluster, dst_gpu: int, candidates: Sequence[int]) -> int:
    """Prefer a source on the same node as the destination."""
    same_node = [
        g for g in candidates
        if cluster.gpu(g).node_id == cluster.gpu(dst_gpu).node_id
    ]
    pool = same_node or list(candidates)
    return min(pool)


def plan_migration(
    old_plan: ParallelizationPlan,
    new_plan: ParallelizationPlan,
    cluster: Cluster,
    layer_param_bytes: float,
    layer_optimizer_bytes: float,
    layer_pack: int = DEFAULT_LAYER_PACK,
) -> MigrationPlan:
    """Compute the transfers needed to realise ``new_plan`` from ``old_plan``.

    Parameters
    ----------
    layer_param_bytes:
        Bytes of the bf16 parameters (+gradients are re-computed, not moved)
        of one full layer.
    layer_optimizer_bytes:
        Bytes of the fp32 optimizer states of one full layer.
    """
    if old_plan.num_layers != new_plan.num_layers:
        raise ValueError("plans describe different models")
    plan = MigrationPlan(layer_pack=layer_pack)
    num_layers = new_plan.num_layers

    for layer in range(num_layers):
        old_params = parameter_ownership(old_plan, layer)
        new_params = parameter_ownership(new_plan, layer)
        # Parameter replicas: any old holder of the needed interval can serve.
        for dst_gpu, needed_intervals in new_params.items():
            held = old_params.get(dst_gpu, [])
            for needed in needed_intervals:
                for missing in _interval_minus(needed, held):
                    length = missing[1] - missing[0]
                    candidates = [
                        g for g, intervals in old_params.items()
                        if any(_overlap(missing, i) > 1e-12 for i in intervals)
                    ]
                    if not candidates:
                        continue  # freshly materialised (e.g. from checkpoint)
                    src = _pick_source(cluster, dst_gpu, candidates)
                    plan.transfers.append(
                        Transfer(
                            layer_index=layer,
                            src_gpu=src,
                            dst_gpu=dst_gpu,
                            num_bytes=length * layer_param_bytes,
                            kind="param",
                        )
                    )

        # Optimizer slices: unique old owner -> unique new owner.
        old_slices = optimizer_ownership(old_plan, layer)
        new_slices = optimizer_ownership(new_plan, layer)
        for new_slice in new_slices:
            needed = new_slice.fraction
            for old_slice in old_slices:
                overlap = _overlap(needed, old_slice.fraction)
                if overlap <= 1e-12:
                    continue
                if old_slice.owner_gpu == new_slice.owner_gpu:
                    continue
                plan.transfers.append(
                    Transfer(
                        layer_index=layer,
                        src_gpu=old_slice.owner_gpu,
                        dst_gpu=new_slice.owner_gpu,
                        num_bytes=overlap * layer_optimizer_bytes,
                        kind="optimizer",
                    )
                )
    return plan


def estimate_migration_time(plan: MigrationPlan, cluster: Cluster,
                            num_layers: Optional[int] = None) -> float:
    """Analytic migration time of a computed migration plan.

    Transfers between a (src, dst) pair are fused into batched send/recv
    calls packing ``layer_pack`` layers each; all pairs proceed in parallel,
    so the migration time is bounded by the most loaded GPU link plus the
    per-batch launch latency.
    """
    if not plan.transfers:
        return 0.0
    sent = plan.bytes_sent_per_gpu()
    received = plan.bytes_received_per_gpu()
    worst_time = 0.0
    for gpu_id in set(sent) | set(received):
        volume = max(sent.get(gpu_id, 0.0), received.get(gpu_id, 0.0))
        # Conservatively assume cross-node bandwidth for the bottleneck link.
        bandwidth = cluster.inter_node_bandwidth
        worst_time = max(worst_time, volume / bandwidth)
    layers_touched = num_layers
    if layers_touched is None:
        layers_touched = len({t.layer_index for t in plan.transfers})
    num_batches = math.ceil(max(1, layers_touched) / max(1, plan.layer_pack))
    return worst_time + num_batches * BATCH_LATENCY
