"""Parallelization plan data structures (§3.1 and §4.1).

A plan fully describes how a training step is executed:

* **GPU grouping** — which GPUs form which tensor-parallel (TP) groups;
* **pipeline orchestration** — which TP groups form which pipeline and in
  which order (each group is one pipeline stage);
* **layer assignment** — how many of the ``L`` model layers every stage
  hosts (non-uniform, possibly zero which removes the group from training);
* **data assignment** — how many micro-batches every pipeline processes.

All four partitionings are allowed to be non-uniform, which is the central
idea of Malleus (Figure 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TPGroup:
    """A tensor-parallel group: an ordered tuple of GPU ids on one node."""

    gpu_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.gpu_ids:
            raise ValueError("a TP group needs at least one GPU")
        if len(set(self.gpu_ids)) != len(self.gpu_ids):
            raise ValueError("duplicate GPU ids within a TP group")

    @property
    def size(self) -> int:
        """TP degree of the group."""
        return len(self.gpu_ids)

    @cached_property
    def sorted_ids(self) -> Tuple[int, ...]:
        """Sorted GPU ids, cached: fingerprints recompute this per call
        otherwise and groups are immutable."""
        return tuple(sorted(self.gpu_ids))

    @cached_property
    def id_set(self) -> frozenset:
        """Frozenset of GPU ids, cached for membership tests."""
        return frozenset(self.gpu_ids)

    def max_rate(self, rates: Dict[int, float]) -> float:
        """Worst straggling rate inside the group (TP is synchronous)."""
        return max(rates[g] for g in self.gpu_ids)

    def __iter__(self):
        return iter(self.gpu_ids)


@dataclass
class PipelineStage:
    """One pipeline stage: a TP group plus its layer assignment."""

    group: TPGroup
    num_layers: int
    stage_index: int
    group_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.num_layers < 0:
            raise ValueError("num_layers must be non-negative")
        if self.stage_index < 1:
            raise ValueError("stage_index is 1-based")

    @property
    def tp_degree(self) -> int:
        """TP degree of this stage."""
        return self.group.size

    @property
    def gpu_ids(self) -> Tuple[int, ...]:
        """GPU ids serving this stage."""
        return self.group.gpu_ids


@dataclass
class PipelinePlan:
    """One training pipeline: an ordered list of stages plus its data share."""

    stages: List[PipelineStage]
    num_micro_batches: int
    pipeline_index: int = 0

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")
        if self.num_micro_batches < 0:
            raise ValueError("num_micro_batches must be non-negative")

    @property
    def pp_degree(self) -> int:
        """Number of stages in the pipeline."""
        return len(self.stages)

    @property
    def total_layers(self) -> int:
        """Layers hosted by this pipeline (must equal the model's L)."""
        return sum(stage.num_layers for stage in self.stages)

    @property
    def gpu_ids(self) -> List[int]:
        """All GPU ids participating in this pipeline."""
        ids: List[int] = []
        for stage in self.stages:
            ids.extend(stage.gpu_ids)
        return ids

    def layer_ranges(self) -> List[Tuple[int, int]]:
        """Half-open global layer index ranges per stage."""
        ranges = []
        start = 0
        for stage in self.stages:
            ranges.append((start, start + stage.num_layers))
            start += stage.num_layers
        return ranges

    def stage_of_layer(self, layer_index: int) -> PipelineStage:
        """Return the stage hosting a global layer index."""
        for stage, (start, end) in zip(self.stages, self.layer_ranges()):
            if start <= layer_index < end:
                return stage
        raise KeyError(f"layer {layer_index} not hosted by pipeline "
                       f"{self.pipeline_index}")

    def tp_degree_of_layer(self, layer_index: int) -> int:
        """TP degree used for a given layer in this pipeline."""
        return self.stage_of_layer(layer_index).tp_degree

    def layer_assignment(self) -> List[int]:
        """Per-stage layer counts ``l_{i,j}``."""
        return [stage.num_layers for stage in self.stages]


@dataclass
class ParallelizationPlan:
    """A complete Malleus parallelization plan.

    ``removed_gpus`` are devices intentionally left out of training (heavy
    stragglers isolated with zero layers, §4.2/§5.2); they stay on standby
    and are periodically re-benchmarked.
    """

    pipelines: List[PipelinePlan]
    micro_batch_size: int
    num_layers: int
    global_batch_size: int
    removed_gpus: List[int] = field(default_factory=list)
    estimated_step_time: float = math.nan
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def dp_degree(self) -> int:
        """Number of pipelines (the data-parallel degree)."""
        return len(self.pipelines)

    @property
    def active_gpus(self) -> List[int]:
        """GPU ids that actually participate in training."""
        ids: List[int] = []
        for pipeline in self.pipelines:
            ids.extend(pipeline.gpu_ids)
        return sorted(ids)

    @property
    def num_active_gpus(self) -> int:
        """Number of GPUs participating in training."""
        return len(self.active_gpus)

    def micro_batches(self) -> List[int]:
        """Per-pipeline micro-batch counts ``m_i``."""
        return [p.num_micro_batches for p in self.pipelines]

    def max_tp_degree_of_layer(self, layer_index: int) -> int:
        """``TP_max`` across pipelines for one layer (used by ZeRO-1 sharding)."""
        return max(p.tp_degree_of_layer(layer_index) for p in self.pipelines)

    def stage_shape(self) -> List[List[Tuple[int, int]]]:
        """Per-pipeline list of (tp_degree, num_layers) tuples."""
        return [
            [(stage.tp_degree, stage.num_layers) for stage in pipeline.stages]
            for pipeline in self.pipelines
        ]

    def describe(self) -> str:
        """Compact human-readable description of the plan."""
        lines = [
            f"plan: dp={self.dp_degree}, b={self.micro_batch_size}, "
            f"B={self.global_batch_size}, removed={self.removed_gpus}"
        ]
        for pipeline in self.pipelines:
            stages = ", ".join(
                f"tp{stage.tp_degree}xl{stage.num_layers}"
                for stage in pipeline.stages
            )
            lines.append(
                f"  pipeline {pipeline.pipeline_index}: m={pipeline.num_micro_batches} "
                f"[{stages}]"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` if the plan violates a structural invariant."""
        if not self.pipelines:
            raise ValueError("a plan needs at least one pipeline")
        seen: set = set()
        for pipeline in self.pipelines:
            if pipeline.total_layers != self.num_layers:
                raise ValueError(
                    f"pipeline {pipeline.pipeline_index} hosts "
                    f"{pipeline.total_layers} layers, expected {self.num_layers}"
                )
            for gpu_id in pipeline.gpu_ids:
                if gpu_id in seen:
                    raise ValueError(f"gpu {gpu_id} appears in two pipelines")
                seen.add(gpu_id)
        for gpu_id in self.removed_gpus:
            if gpu_id in seen:
                raise ValueError(f"gpu {gpu_id} is both active and removed")
        total_data = sum(p.num_micro_batches for p in self.pipelines)
        expected = self.global_batch_size // self.micro_batch_size
        if self.global_batch_size % self.micro_batch_size != 0:
            raise ValueError("global batch size not divisible by micro-batch size")
        if total_data != expected:
            raise ValueError(
                f"micro-batches sum to {total_data}, expected {expected}"
            )

    def is_valid(self) -> bool:
        """Boolean validation wrapper."""
        try:
            self.validate()
        except ValueError:
            return False
        return True


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def uniform_megatron_plan(
    gpu_ids: Sequence[int],
    dp: int,
    tp: int,
    pp: int,
    num_layers: int,
    global_batch_size: int,
    micro_batch_size: int = 1,
    first_stage_layers: Optional[int] = None,
) -> ParallelizationPlan:
    """Build a uniform Megatron-LM-style 3D-parallel plan.

    GPUs are assigned TP-major, then PP, then DP, matching Megatron's rank
    ordering.  ``first_stage_layers`` supports the manual adjustment the
    paper mentions (Appendix A.3) when ``num_layers`` is not divisible by
    ``pp``; the remaining layers are distributed evenly over the other
    stages (which then must divide evenly).
    """
    ids = list(gpu_ids)
    if dp * tp * pp != len(ids):
        raise ValueError(
            f"dp*tp*pp = {dp * tp * pp} does not match {len(ids)} GPUs"
        )
    if global_batch_size % (dp * micro_batch_size) != 0:
        raise ValueError("global batch size must divide evenly across pipelines")

    if first_stage_layers is None:
        if num_layers % pp != 0:
            raise ValueError(
                "num_layers not divisible by pp; pass first_stage_layers"
            )
        layer_split = [num_layers // pp] * pp
    else:
        remaining = num_layers - first_stage_layers
        if pp == 1:
            layer_split = [num_layers]
        else:
            if remaining % (pp - 1) != 0:
                raise ValueError("remaining layers must divide across later stages")
            layer_split = [first_stage_layers] + [remaining // (pp - 1)] * (pp - 1)

    micro_batches_per_pipeline = global_batch_size // (dp * micro_batch_size)
    pipelines: List[PipelinePlan] = []
    cursor = 0
    for pipeline_index in range(dp):
        stages: List[PipelineStage] = []
        for stage_index in range(pp):
            group = TPGroup(gpu_ids=tuple(ids[cursor:cursor + tp]))
            cursor += tp
            stages.append(
                PipelineStage(
                    group=group,
                    num_layers=layer_split[stage_index],
                    stage_index=stage_index + 1,
                )
            )
        pipelines.append(
            PipelinePlan(
                stages=stages,
                num_micro_batches=micro_batches_per_pipeline,
                pipeline_index=pipeline_index,
            )
        )
    plan = ParallelizationPlan(
        pipelines=pipelines,
        micro_batch_size=micro_batch_size,
        num_layers=num_layers,
        global_batch_size=global_batch_size,
        metadata={"style": "megatron", "dp": dp, "tp": tp, "pp": pp},
    )
    plan.validate()
    return plan
