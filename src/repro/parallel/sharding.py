"""Non-uniform ZeRO-1 model-state sharding (§5.1, Figure 6).

Hybrid parallel training with the ZeRO-1 optimizer shards the optimizer
states of every layer across ``DP x TP`` GPUs.  Malleus generalises this to
pipelines whose TP degrees differ: for a layer whose TP degree in pipeline
``i`` is ``TP_i`` and ``TP_max = max_i TP_i``, the optimizer states are cut
into ``DP x TP_max`` slices and each GPU of pipeline ``i`` owns
``TP_max / TP_i`` of them.  GPUs owning several slices participate in
several reduce-scatter / all-gather calls, whose ordering must be globally
consistent to avoid deadlocks.

Two ownership views are produced:

* :func:`parameter_ownership` — the bf16 parameters (and gradients) of a
  layer, replicated per pipeline and sharded across the stage's TP group;
* :func:`optimizer_ownership` — the fp32 optimizer states, sharded globally
  into ``DP x TP_max`` unique slices.

Both views express ownership as fractional intervals of the layer's state,
which is what the migration planner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .plan import ParallelizationPlan

Interval = Tuple[float, float]


@dataclass(frozen=True)
class ShardSlice:
    """One optimizer-state slice of one layer."""

    layer_index: int
    dp_index: int
    column: int
    owner_gpu: int
    fraction: Interval


def _stage_group_for_layer(plan: ParallelizationPlan, pipeline_index: int,
                           layer_index: int):
    """TP group serving ``layer_index`` in pipeline ``pipeline_index``."""
    pipeline = plan.pipelines[pipeline_index]
    return pipeline.stage_of_layer(layer_index).group


def parameter_ownership(plan: ParallelizationPlan,
                        layer_index: int) -> Dict[int, List[Interval]]:
    """Fractional parameter intervals held by each GPU for one layer.

    Every pipeline holds a full replica of the layer's parameters, sharded
    evenly across the TP group of the stage hosting the layer, so the
    returned intervals cover [0, 1) once *per pipeline*.
    """
    ownership: Dict[int, List[Interval]] = {}
    for pipeline in plan.pipelines:
        group = pipeline.stage_of_layer(layer_index).group
        k = group.size
        for rank, gpu_id in enumerate(group.gpu_ids):
            interval = (rank / k, (rank + 1) / k)
            ownership.setdefault(gpu_id, []).append(interval)
    return ownership


def optimizer_ownership(plan: ParallelizationPlan,
                        layer_index: int) -> List[ShardSlice]:
    """ZeRO-1 slice assignment of one layer's optimizer states.

    The layer is cut into ``DP x TP_max`` equal slices.  Slice ``(i, c)``
    (pipeline ``i``, column ``c`` within ``TP_max``) is owned by the GPU of
    pipeline ``i`` whose TP shard covers column ``c``.
    """
    dp = plan.dp_degree
    tp_max = plan.max_tp_degree_of_layer(layer_index)
    slices: List[ShardSlice] = []
    for dp_index, pipeline in enumerate(plan.pipelines):
        group = pipeline.stage_of_layer(layer_index).group
        tp_i = group.size
        if tp_max % tp_i != 0:
            raise ValueError(
                f"TP_max={tp_max} is not divisible by TP_i={tp_i} "
                f"for layer {layer_index}"
            )
        span = tp_max // tp_i
        for rank, gpu_id in enumerate(group.gpu_ids):
            for offset in range(span):
                column = rank * span + offset
                start = (dp_index * tp_max + column) / (dp * tp_max)
                end = (dp_index * tp_max + column + 1) / (dp * tp_max)
                slices.append(
                    ShardSlice(
                        layer_index=layer_index,
                        dp_index=dp_index,
                        column=column,
                        owner_gpu=gpu_id,
                        fraction=(start, end),
                    )
                )
    return slices


def gradient_sync_groups(plan: ParallelizationPlan,
                         layer_index: int) -> List[List[int]]:
    """Reduce-scatter groups for one layer's gradient synchronisation.

    Column ``c`` of the ``TP_max``-wide sharding is synchronised across the
    GPUs owning that column in every pipeline.  The groups are returned in
    ascending column order, which is the deadlock-free call ordering the
    executor uses (§5.1): every GPU issues its collectives in this global
    order, so GPUs that participate in several groups never wait on each
    other cyclically.
    """
    tp_max = plan.max_tp_degree_of_layer(layer_index)
    groups: List[List[int]] = []
    for column in range(tp_max):
        members: List[int] = []
        for pipeline in plan.pipelines:
            group = pipeline.stage_of_layer(layer_index).group
            span = tp_max // group.size
            rank = column // span
            members.append(group.gpu_ids[rank])
        groups.append(members)
    return groups


def communication_call_order(plan: ParallelizationPlan,
                             layer_indices: Sequence[int]) -> List[Tuple[int, int]]:
    """Global (layer, column) ordering of gradient-sync collectives.

    Calls are ordered layer-major then column-major; because every GPU that
    participates in multiple calls observes the same total order, no cyclic
    wait (deadlock) can occur.
    """
    order: List[Tuple[int, int]] = []
    for layer_index in layer_indices:
        tp_max = plan.max_tp_degree_of_layer(layer_index)
        for column in range(tp_max):
            order.append((layer_index, column))
    return order


def gpu_slice_counts(plan: ParallelizationPlan, layer_index: int) -> Dict[int, int]:
    """Number of optimizer slices each GPU owns for one layer.

    GPUs in pipelines with smaller TP degrees own more than one slice and
    therefore invoke several reduce-scatter / all-gather calls (§5.1).
    """
    counts: Dict[int, int] = {}
    for shard in optimizer_ownership(plan, layer_index):
        counts[shard.owner_gpu] = counts.get(shard.owner_gpu, 0) + 1
    return counts


def validate_sharding(plan: ParallelizationPlan, layer_index: int) -> None:
    """Check that the slice assignment covers the layer exactly once."""
    slices = optimizer_ownership(plan, layer_index)
    dp = plan.dp_degree
    tp_max = plan.max_tp_degree_of_layer(layer_index)
    expected = dp * tp_max
    if len(slices) != expected:
        raise ValueError(
            f"layer {layer_index}: expected {expected} slices, got {len(slices)}"
        )
    covered = sorted(shard.fraction for shard in slices)
    cursor = 0.0
    for start, end in covered:
        if abs(start - cursor) > 1e-9:
            raise ValueError(f"layer {layer_index}: gap or overlap at {start}")
        cursor = end
    if abs(cursor - 1.0) > 1e-9:
        raise ValueError(f"layer {layer_index}: coverage ends at {cursor}, not 1.0")
