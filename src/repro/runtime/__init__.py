"""The Malleus runtime system (profiler + planner + malleable executor)."""

from .malleus import MalleusSystem, ReplanEvent

__all__ = ["MalleusSystem", "ReplanEvent"]
