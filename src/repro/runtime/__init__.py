"""The Malleus runtime system (profiler + planner + malleable executor)."""

from .malleus import MalleusSystem, ReplanEvent
from .replan import (
    EVENT_GROUP_CHANGE,
    EVENT_MEMBERSHIP_CHANGE,
    EVENT_MINOR_RATE_SHIFT,
    EVENT_NO_CHANGE,
    TIER_DEFERRED,
    TIER_FULL,
    TIER_NONE,
    TIER_PARTIAL,
    TIER_REBALANCE,
    RepairOutcome,
    ReplanConfig,
    ReplanEngine,
)
from .service import (
    MODE_FULL,
    MODE_REBALANCE_ONLY,
    MODE_SKIPPED,
    PlanningService,
    ServiceConfig,
    ServiceRecord,
    ServiceStats,
)
from .speculate import (
    RepairHint,
    SpeculationEngine,
    SpeculationPolicy,
    canonical_delta,
)

__all__ = [
    "MalleusSystem",
    "ReplanEvent",
    "ReplanEngine",
    "ReplanConfig",
    "RepairOutcome",
    "PlanningService",
    "ServiceConfig",
    "ServiceRecord",
    "ServiceStats",
    "SpeculationPolicy",
    "SpeculationEngine",
    "RepairHint",
    "canonical_delta",
    "MODE_FULL",
    "MODE_REBALANCE_ONLY",
    "MODE_SKIPPED",
    "EVENT_NO_CHANGE",
    "EVENT_MINOR_RATE_SHIFT",
    "EVENT_GROUP_CHANGE",
    "EVENT_MEMBERSHIP_CHANGE",
    "TIER_NONE",
    "TIER_REBALANCE",
    "TIER_PARTIAL",
    "TIER_FULL",
    "TIER_DEFERRED",
]
