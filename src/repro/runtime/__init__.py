"""The Malleus runtime system (profiler + planner + malleable executor)."""

from .malleus import MalleusSystem, ReplanEvent
from .replan import (
    EVENT_GROUP_CHANGE,
    EVENT_MEMBERSHIP_CHANGE,
    EVENT_MINOR_RATE_SHIFT,
    EVENT_NO_CHANGE,
    TIER_FULL,
    TIER_NONE,
    TIER_PARTIAL,
    TIER_REBALANCE,
    RepairOutcome,
    ReplanConfig,
    ReplanEngine,
)

__all__ = [
    "MalleusSystem",
    "ReplanEvent",
    "ReplanEngine",
    "ReplanConfig",
    "RepairOutcome",
    "EVENT_NO_CHANGE",
    "EVENT_MINOR_RATE_SHIFT",
    "EVENT_GROUP_CHANGE",
    "EVENT_MEMBERSHIP_CHANGE",
    "TIER_NONE",
    "TIER_REBALANCE",
    "TIER_PARTIAL",
    "TIER_FULL",
]
