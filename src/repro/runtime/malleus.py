"""The Malleus runtime: malleable training with asynchronous re-planning.

This ties the pieces together the way §3, §5 and §6 describe:

* the **profiler** observes per-GPU straggling rates and raises a
  notification when any rate shifts by more than 5 %;
* the **planner** deduces a new parallelization plan (keeping the DP degree
  fixed across re-planning); planning runs *asynchronously* on the CPU, so
  as long as it finishes within one training step its latency is completely
  hidden (§5.3);
* the **executor** migrates the model states on the fly to realise the new
  plan (batched send/recv, ~1-5 s) and keeps training; a hard failure
  (infinite straggling rate) falls back to reloading the latest checkpoint.

The class implements the :class:`~repro.simulator.session.TrainingFramework`
protocol so it can be driven through straggler traces next to the baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..cluster.profiler import Profiler, ProfilerConfig
from ..cluster.stragglers import ClusterState
from ..cluster.topology import Cluster
from ..core.costmodel import MalleusCostModel
from ..core.planner import (
    MalleusPlanner,
    PlanContext,
    PlanningResult,
    TransitionConfig,
)
from ..core.sweep import SweepConfig, SweepExecutor
from ..models.spec import TrainingTask
from ..parallel.migration import plan_migration
from ..parallel.plan import ParallelizationPlan
from ..simulator.executor import ExecutionSimulator
from ..simulator.restart import RestartCostConfig, restart_time
from ..simulator.session import Adjustment
from .replan import (
    EVENT_MEMBERSHIP_CHANGE,
    TIER_DEFERRED,
    TIER_FULL,
    TIER_NONE,
    ReplanConfig,
    ReplanEngine,
)
from .speculate import outcomes_equal


@dataclass
class ReplanEvent:
    """Record of one re-planning episode (kept for diagnostics)."""

    trigger_rates: Dict[int, float]
    planning_time: float
    migration_time: float
    overlapped: bool
    plan_changed: bool
    estimated_step_time: float
    #: Classification of the triggering delta (see repro.runtime.replan).
    event_kind: str = ""
    #: Which repair tier handled it ("rebalance", "partial_resolve", "full").
    repair_tier: str = ""
    #: Model-state bytes migrated to realise the new plan.
    migration_bytes: float = 0.0
    #: Migration drain time hidden by overlapping with training at the old
    #: plan (0 without ``TransitionConfig.overlap``).
    hidden_migration_time: float = 0.0
    #: Candidate-sweep engine diagnostics for this event (backend, worker
    #: count, evaluated/pruned candidates, warm-cache hits).
    sweep_stats: Optional[Dict[str, object]] = None
    #: True when the repair was served from the speculation cache (the
    #: solve ran during an idle service step, before the event arrived).
    speculative: bool = False


@dataclass
class MalleusSystem:
    """Straggler-resilient hybrid parallel training (the full system).

    Parameters
    ----------
    task, cluster:
        The workload and the hardware.
    cost_model:
        Shared cost model; a default one is constructed when omitted.
    keep_dp_degree:
        Keep the DP degree of the initial plan across re-planning (the paper's
        default behaviour, footnote 2).  The reproduction defaults to False —
        i.e. the DP degree is re-enumerated on every re-plan, which the same
        footnote explicitly allows — because the analytic cost model sometimes
        prefers shallow-pipeline normal plans whose DP degree is a poor fit
        once stragglers appear.
    async_replanning:
        When True (default) the planning latency is overlapped with training
        and only the migration time stalls the job; when False the planner's
        wall-clock time is charged as downtime as well (used by the ablation
        benchmark).
    incremental:
        When True (default) straggler events are first classified against
        the incumbent plan (minor rate shift / group change / membership
        change) and repaired by the cheapest sound tier of the
        :class:`~repro.runtime.replan.ReplanEngine`; ``incremental=False``
        is the escape hatch that re-runs the full planner on every event.
    replan_config:
        Tunables of the repair engine (epsilon, verify mode, touched-pipeline
        budget); a default :class:`~repro.runtime.replan.ReplanConfig` is
        used when omitted.
    shift_threshold:
        Convenience override for the profiler's re-planning notification
        threshold (the paper's 5%).  Threaded into ``profiler_config`` (a
        config built from the other profiler defaults is created when none
        was given); rate shifts below the threshold never reach the planner.
    transition_config:
        Transition-aware planning knobs
        (:class:`~repro.core.planner.TransitionConfig`): when enabled, the
        planner and the repair engine score every candidate's migration
        cost from the incumbent plan and prefer minimally-disruptive plans
        within the epsilon step-time window.  With ``overlap=True``
        migration additionally runs concurrently with training at the old
        plan and only the exposed tail of the drain is charged as
        downtime (the hidden portion is reported on
        ``Adjustment.hidden_migration_time``); overlap is an accounting
        mode and works with ``enabled`` on or off.  Disabled by default —
        the *plans chosen* are then bit-identical to a transition-unaware
        system (migration downtime accounting always uses the
        topology-aware charge model, independent of this knob).  Threaded
        into the planner (overriding its config when both are given).
    sweep_config:
        Candidate-sweep engine knobs
        (:class:`~repro.core.sweep.SweepConfig`): execution backend
        (``serial``/``process`` worker pool) and the cross-event
        warm-start :class:`~repro.core.sweep.SolutionCache`.  Threaded
        into the planner (overriding its config when both are given); the
        default — serial, warm cache off — plans bit-identically to the
        pre-engine system.  Per-event engine activity is reported on
        ``Adjustment.sweep_stats`` / ``ReplanEvent.sweep_stats``.
    kernels:
        Solver-kernel backend (``"python"``/``"numpy"``/``"legacy"``, see
        :class:`~repro.core.costmodel.MalleusCostModel`); threaded into
        the default cost model and planner when those are built here
        (``None`` — the default — keeps the reference python kernels, or
        whatever a caller-supplied cost model already selects).
    """

    task: TrainingTask
    cluster: Cluster
    cost_model: Optional[MalleusCostModel] = None
    planner: Optional[MalleusPlanner] = None
    profiler_config: Optional[ProfilerConfig] = None
    keep_dp_degree: bool = False
    async_replanning: bool = True
    incremental: bool = True
    replan_config: Optional[ReplanConfig] = None
    shift_threshold: Optional[float] = None
    transition_config: Optional[TransitionConfig] = None
    sweep_config: Optional[SweepConfig] = None
    kernels: Optional[str] = None
    restart_config: RestartCostConfig = field(default_factory=RestartCostConfig)
    name: str = "Malleus"
    #: Optional session recorder (:class:`repro.whatif.SessionRecorder`):
    #: when attached, every ``setup`` / ``on_situation_change`` call is
    #: taped — state, flags, resulting adjustment, plan fingerprint and
    #: simulated step time — so the session can be saved and replayed
    #: under edited conditions by the what-if engine.  ``None`` (the
    #: default) records nothing and changes nothing.
    recorder: Optional[object] = None

    def __post_init__(self) -> None:
        self.cost_model = self.cost_model or MalleusCostModel(
            self.task.model, self.cluster,
            kernels=self.kernels or "python",
        )
        self.planner = self.planner or MalleusPlanner(
            self.task, self.cluster, self.cost_model,
            kernels=self.kernels,
            transition_config=self.transition_config,
            sweep_config=self.sweep_config,
        )
        if self.transition_config is not None:
            self.planner.transition_config = self.transition_config
        if self.sweep_config is not None and \
                self.planner.sweep_config is not self.sweep_config:
            # A caller-supplied planner keeps its executor unless the system
            # was given an explicit sweep config to impose.
            self.planner.sweep_config = self.sweep_config
            self.planner.sweep_executor.shutdown()
            self.planner.sweep_executor = SweepExecutor(self.sweep_config)
        self.simulator = ExecutionSimulator(self.cost_model)
        if self.shift_threshold is not None:
            # Copy before overriding: the caller's config instance may be
            # shared with other systems.
            base = self.profiler_config or ProfilerConfig()
            self.profiler_config = replace(
                base, shift_threshold=self.shift_threshold
            )
        self.profiler = Profiler(self.cluster, self.profiler_config)
        self.replan_engine = ReplanEngine(self.planner, self.replan_config)
        self.plan: Optional[ParallelizationPlan] = None
        self.plan_context: Optional[PlanContext] = None
        self.current_rates: Dict[int, float] = {
            g: 1.0 for g in self.cluster.gpu_ids()
        }
        self.replan_events: List[ReplanEvent] = []
        self._dp_degree: Optional[int] = None
        #: One-shot speculative repair hint
        #: (:class:`~repro.runtime.speculate.RepairHint`), installed by
        #: the planning service immediately before an episode's
        #: ``on_situation_change`` call.  A field rather than a keyword
        #: argument so instance-level wrappers (the fault harness arms one)
        #: keep working unchanged.
        self._repair_hint = None
        #: The planning service's speculation engine, when one is attached
        #: (surfaced through :meth:`cache_stats`).
        self.speculation = None

    # ------------------------------------------------------------------
    # TrainingFramework protocol
    # ------------------------------------------------------------------
    def setup(self, state: ClusterState) -> None:
        """Deduce and instantiate the initial parallelization plan."""
        report = self.profiler.measure(state)
        result = self.planner.plan(report.rates)
        if not result.feasible or result.plan is None:
            raise RuntimeError("Malleus could not find an initial plan")
        self.plan = result.plan
        self.plan_context = result.context
        self.current_rates = dict(report.rates)
        self._dp_degree = result.plan.dp_degree
        self.profiler.mark_standby(result.plan.removed_gpus)
        if self.recorder is not None:
            self.recorder.record_setup(self, state)

    def on_situation_change(self, state: ClusterState,
                            rebalance_only: bool = False,
                            force: bool = False) -> Adjustment:
        """Re-plan (asynchronously) and migrate when the rates shift > 5 %.

        Events are first classified against the incumbent plan and repaired
        incrementally when sound (see :mod:`repro.runtime.replan`); the
        resulting event kind and repair tier are recorded on the returned
        :class:`~repro.simulator.session.Adjustment` and on the
        :class:`ReplanEvent` log.

        ``rebalance_only`` is the planning service's degraded mode: only
        the warm incumbent repair may run — never the candidate sweep or
        the full planner.  An event the warm tier cannot serve comes back
        as ``kind="deferred"`` (``repair_tier="deferred"``) with the
        incumbent plan kept in force; GPU failures ignore the flag (a dead
        GPU makes the incumbent plan unusable, so failure handling always
        runs in full).  ``force=True`` skips the profiler's no-change
        early-out: a deferred event's retry re-processes rates the
        profiler has already observed (its shift detector advanced on the
        first, deferred attempt), which would otherwise drop the event.
        """
        adjustment = self._handle_situation_change(
            state, rebalance_only=rebalance_only, force=force
        )
        if self.recorder is not None:
            self.recorder.record_event(
                self, state, adjustment,
                rebalance_only=rebalance_only, force=force,
            )
        return adjustment

    def _handle_situation_change(self, state: ClusterState,
                                 rebalance_only: bool = False,
                                 force: bool = False) -> Adjustment:
        """The actual episode logic behind :meth:`on_situation_change`."""
        assert self.plan is not None
        hint = self._repair_hint
        self._repair_hint = None
        report = self.profiler.measure(state)
        if not report.changed and not force:
            self.current_rates = dict(report.rates)
            return Adjustment(kind="none")

        if report.failed:
            return self._handle_failure(report.rates)

        dp = self._dp_degree if self.keep_dp_degree else None
        event_kind = ""
        repair_tier = TIER_FULL
        tier_errors: List[str] = []
        served = False
        if self.incremental and self.plan_context is not None:
            outcome = None
            if hint is not None and hint.claim(
                    self.plan_context, report.rates, dp, rebalance_only,
                    self.cost_model):
                # A speculative pre-solve of exactly this repair call
                # exists: serve the stored winner.  The claim validated
                # every input of the solve, so this *is* the on-demand
                # repair, minus the solve latency (bit-identity by
                # construction; ``speculate_verify`` additionally
                # re-solves and compares).
                outcome = hint.outcome
                served = True
                if hint.verify:
                    fresh = self.replan_engine.repair(
                        self.plan_context, report.rates, dp=dp,
                        rebalance_only=rebalance_only,
                    )
                    if not outcomes_equal(outcome, fresh):
                        hint.served = False
                        hint.discarded = "verify mismatch"
                        outcome = fresh
                        served = False
            if outcome is None:
                outcome = self.replan_engine.repair(
                    self.plan_context, report.rates, dp=dp,
                    rebalance_only=rebalance_only,
                )
            event_kind = outcome.event_kind
            repair_tier = outcome.repair_tier
            tier_errors = list(outcome.tier_errors)
            if outcome.repair_tier == TIER_NONE:
                # The delta never touched the plan (e.g. standby-only
                # jitter); keep everything, just note the observation.
                self.current_rates = dict(report.rates)
                return Adjustment(
                    kind="none", event_kind=event_kind,
                    repair_tier=repair_tier,
                    tier_errors=tier_errors,
                    speculative=served,
                    description="delta does not touch the incumbent plan",
                )
            if outcome.repair_tier == TIER_DEFERRED:
                # The warm tier could not serve the event within the
                # rebalance-only budget; the incumbent plan stays in force
                # and the caller decides when to retry in full.
                self.current_rates = dict(report.rates)
                return Adjustment(
                    kind="deferred",
                    planning_time=outcome.repair_seconds,
                    event_kind=event_kind, repair_tier=repair_tier,
                    tier_errors=tier_errors,
                    description=outcome.fallback_reason
                    or "rebalance-only repair deferred",
                )
            result = outcome.result
            # A served hint's solve ran during an idle step, before the
            # event arrived: nothing is charged to this episode.
            planning_time = 0.0 if served else outcome.repair_seconds
        elif rebalance_only:
            # Without an incumbent repair context (or with the repair
            # engine disabled) the only remaining tool is the full
            # planner, which a rebalance-only request forbids.
            self.current_rates = dict(report.rates)
            return Adjustment(
                kind="deferred", event_kind=event_kind,
                repair_tier=TIER_DEFERRED,
                description="no incumbent repair context for a "
                            "rebalance-only repair",
            )
        else:
            result = self.planner.plan(report.rates, dp=dp,
                                       previous=self.plan_context)
            planning_time = result.breakdown.total
        if (not result.feasible or result.plan is None) and dp is not None:
            # Preserving the DP degree is only a preference (footnote 2 of the
            # paper); when no DP-preserving plan exists, re-plan freely.
            result = self.planner.plan(report.rates, dp=None,
                                       previous=self.plan_context)
            planning_time += result.breakdown.total
            repair_tier = TIER_FULL
        if not result.feasible or result.plan is None:
            # Keep the current plan; the situation will be reported as-is.
            self.current_rates = dict(report.rates)
            return Adjustment(
                kind="none", planning_time=planning_time,
                event_kind=event_kind, repair_tier=repair_tier,
                tier_errors=tier_errors,
                description="re-planning infeasible; keeping current plan",
            )

        plan_changed = result.plan.stage_shape() != self.plan.stage_shape() or \
            result.plan.micro_batches() != self.plan.micro_batches() or \
            result.plan.active_gpus != self.plan.active_gpus
        migration_time = 0.0
        migration_bytes = 0.0
        hidden_time = 0.0
        if plan_changed:
            # A served hint pre-computed this charge during the idle step
            # (same incumbent plan — the claim pinned its identity — same
            # repaired plan, same rates: a pure function of validated
            # inputs, so reusing it is bit-identical).
            charge = hint.charge if served and hint.charge is not None \
                else self.migration_charge(result.plan, report.rates)
            migration_time = charge.total_seconds
            migration_bytes = charge.total_bytes
            hidden_time = charge.hidden_seconds
            self.plan = result.plan
            self._dp_degree = result.plan.dp_degree
            self.profiler.mark_standby(result.plan.removed_gpus)
            self.profiler.unmark_standby(result.plan.active_gpus)
        # The repaired/re-planned candidate becomes the incumbent for the
        # next event even when the executed plan is unchanged (its context
        # snapshots the rates it was solved under).
        self.plan_context = result.context

        self.current_rates = dict(report.rates)
        downtime = migration_time
        if not self.async_replanning:
            downtime += planning_time
        sweep_stats = result.sweep_stats or None
        self.replan_events.append(
            ReplanEvent(
                trigger_rates=dict(report.rates),
                planning_time=planning_time,
                migration_time=migration_time,
                overlapped=self.async_replanning,
                plan_changed=plan_changed,
                estimated_step_time=result.estimated_step_time,
                event_kind=event_kind,
                repair_tier=repair_tier,
                migration_bytes=migration_bytes,
                hidden_migration_time=hidden_time,
                sweep_stats=sweep_stats,
                speculative=served,
            )
        )
        return Adjustment(
            kind="migrate" if plan_changed else "replan",
            downtime=downtime,
            planning_time=planning_time,
            overlapped=self.async_replanning,
            event_kind=event_kind,
            repair_tier=repair_tier,
            tier_errors=tier_errors,
            migration_bytes=migration_bytes,
            hidden_migration_time=hidden_time,
            sweep_stats=sweep_stats,
            speculative=served,
            description="asynchronous re-planning"
            if self.async_replanning else "synchronous re-planning",
        )

    def migration_charge(self, new_plan: ParallelizationPlan,
                         rates: Dict[int, float]):
        """Downtime charge of migrating the incumbent plan to ``new_plan``.

        A pure function of (incumbent plan, new plan, rates): the
        migration layout diff plus the simulator's topology-aware drain
        charge (with the overlap window under ``rates`` when transition
        overlap is on).  Factored out so the speculation engine can
        pre-compute the charge during an idle step and a served hit pays
        none of it on the event's critical path.
        """
        migration = plan_migration(
            self.plan, new_plan, self.cluster,
            layer_param_bytes=self.task.model.layer_param_bytes(),
            layer_optimizer_bytes=self.task.model.params_per_layer()
            * self.cost_model.config.optimizer_bytes_per_param,
        )
        return self.simulator.migration_downtime(
            migration, hideable_seconds=self._overlap_window(rates)
        )

    def _overlap_window(self, rates: Dict[int, float]) -> float:
        """Hideable seconds of the next migration (0 without overlap).

        With :class:`~repro.core.planner.TransitionConfig` ``overlap`` the
        job keeps training at the *old* plan for ``overlap_steps`` steps
        while the state streams in the background, so the window is the
        old plan's simulated step time under the freshly observed rates.
        Overlap is purely a downtime-accounting mode: it applies whether
        or not transition-aware *planning* (``enabled``) is on.
        """
        config = self.planner.transition_config
        if config is None or not config.overlap or self.plan is None:
            return 0.0
        old_step = self.simulator.simulate_step(
            self.plan, rates, check_memory=False
        ).step_time
        if not math.isfinite(old_step):
            return 0.0
        return max(0.0, config.overlap_steps * old_step)

    def step_time(self, state: ClusterState) -> float:
        """Simulated step time of the current plan under the true rates."""
        assert self.plan is not None
        result = self.simulator.simulate_step(
            self.plan, state.rate_map(), check_memory=False
        )
        return result.step_time

    # ------------------------------------------------------------------
    # Failure handling (§5.1): reload the latest checkpoint without the
    # failed GPUs, whose rates become infinite.
    # ------------------------------------------------------------------
    def _handle_failure(self, rates: Dict[int, float]) -> Adjustment:
        dp = self._dp_degree if self.keep_dp_degree else None
        # The failed GPUs invalidate every cached sweep division.
        self.planner.solution_cache.evict_membership_change()
        result = self.planner.plan(rates, dp=dp)
        if not result.feasible or result.plan is None:
            result = self.planner.plan(rates)  # relax the DP constraint
        if not result.feasible or result.plan is None:
            raise RuntimeError("Malleus cannot continue after the failure")
        self.plan = result.plan
        self.plan_context = result.context
        self._dp_degree = result.plan.dp_degree
        self.current_rates = dict(rates)
        downtime = restart_time(
            self.task.model, self.cluster, self.restart_config,
            save_checkpoint=False,
        )
        return Adjustment(
            kind="restart", downtime=downtime,
            event_kind=EVENT_MEMBERSHIP_CHANGE, repair_tier=TIER_FULL,
            description="GPU failure: reloading the latest checkpoint",
        )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def current_plan(self) -> Optional[ParallelizationPlan]:
        """The plan currently being executed."""
        return self.plan

    def estimated_step_time(self, rates: Optional[Dict[int, float]] = None) -> float:
        """Planner-style estimate for the current plan (used by Table 3)."""
        assert self.plan is not None
        return self.simulator.estimate_step_time(self.plan, rates
                                                  or self.current_rates)

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Planner-level cache diagnostics (cost model + sweep solutions).

        When a planning service with speculation is attached, its
        engine's counters appear under a ``"speculation"`` key.
        """
        stats = self.planner.cache_stats()
        if self.speculation is not None:
            stats["speculation"] = self.speculation.snapshot()
        return stats
