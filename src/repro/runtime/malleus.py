"""The Malleus runtime: malleable training with asynchronous re-planning.

This ties the pieces together the way §3, §5 and §6 describe:

* the **profiler** observes per-GPU straggling rates and raises a
  notification when any rate shifts by more than 5 %;
* the **planner** deduces a new parallelization plan (keeping the DP degree
  fixed across re-planning); planning runs *asynchronously* on the CPU, so
  as long as it finishes within one training step its latency is completely
  hidden (§5.3);
* the **executor** migrates the model states on the fly to realise the new
  plan (batched send/recv, ~1-5 s) and keeps training; a hard failure
  (infinite straggling rate) falls back to reloading the latest checkpoint.

The class implements the :class:`~repro.simulator.session.TrainingFramework`
protocol so it can be driven through straggler traces next to the baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..cluster.profiler import Profiler, ProfilerConfig
from ..cluster.stragglers import ClusterState
from ..cluster.topology import Cluster
from ..core.costmodel import MalleusCostModel
from ..core.planner import MalleusPlanner, PlanningResult
from ..models.spec import TrainingTask
from ..parallel.migration import estimate_migration_time, plan_migration
from ..parallel.plan import ParallelizationPlan
from ..simulator.executor import ExecutionSimulator
from ..simulator.restart import RestartCostConfig, restart_time
from ..simulator.session import Adjustment


@dataclass
class ReplanEvent:
    """Record of one re-planning episode (kept for diagnostics)."""

    trigger_rates: Dict[int, float]
    planning_time: float
    migration_time: float
    overlapped: bool
    plan_changed: bool
    estimated_step_time: float


@dataclass
class MalleusSystem:
    """Straggler-resilient hybrid parallel training (the full system).

    Parameters
    ----------
    task, cluster:
        The workload and the hardware.
    cost_model:
        Shared cost model; a default one is constructed when omitted.
    keep_dp_degree:
        Keep the DP degree of the initial plan across re-planning (the paper's
        default behaviour, footnote 2).  The reproduction defaults to False —
        i.e. the DP degree is re-enumerated on every re-plan, which the same
        footnote explicitly allows — because the analytic cost model sometimes
        prefers shallow-pipeline normal plans whose DP degree is a poor fit
        once stragglers appear.
    async_replanning:
        When True (default) the planning latency is overlapped with training
        and only the migration time stalls the job; when False the planner's
        wall-clock time is charged as downtime as well (used by the ablation
        benchmark).
    """

    task: TrainingTask
    cluster: Cluster
    cost_model: Optional[MalleusCostModel] = None
    planner: Optional[MalleusPlanner] = None
    profiler_config: Optional[ProfilerConfig] = None
    keep_dp_degree: bool = False
    async_replanning: bool = True
    restart_config: RestartCostConfig = field(default_factory=RestartCostConfig)
    name: str = "Malleus"

    def __post_init__(self) -> None:
        self.cost_model = self.cost_model or MalleusCostModel(
            self.task.model, self.cluster
        )
        self.planner = self.planner or MalleusPlanner(
            self.task, self.cluster, self.cost_model
        )
        self.simulator = ExecutionSimulator(self.cost_model)
        self.profiler = Profiler(self.cluster, self.profiler_config)
        self.plan: Optional[ParallelizationPlan] = None
        self.current_rates: Dict[int, float] = {
            g: 1.0 for g in self.cluster.gpu_ids()
        }
        self.replan_events: List[ReplanEvent] = []
        self._dp_degree: Optional[int] = None

    # ------------------------------------------------------------------
    # TrainingFramework protocol
    # ------------------------------------------------------------------
    def setup(self, state: ClusterState) -> None:
        """Deduce and instantiate the initial parallelization plan."""
        report = self.profiler.measure(state)
        result = self.planner.plan(report.rates)
        if not result.feasible or result.plan is None:
            raise RuntimeError("Malleus could not find an initial plan")
        self.plan = result.plan
        self.current_rates = dict(report.rates)
        self._dp_degree = result.plan.dp_degree
        self.profiler.mark_standby(result.plan.removed_gpus)

    def on_situation_change(self, state: ClusterState) -> Adjustment:
        """Re-plan (asynchronously) and migrate when the rates shift > 5 %."""
        assert self.plan is not None
        report = self.profiler.measure(state)
        if not report.changed:
            self.current_rates = dict(report.rates)
            return Adjustment(kind="none")

        if report.failed:
            return self._handle_failure(report.rates)

        dp = self._dp_degree if self.keep_dp_degree else None
        result = self.planner.plan(report.rates, dp=dp)
        planning_time = result.breakdown.total
        if (not result.feasible or result.plan is None) and dp is not None:
            # Preserving the DP degree is only a preference (footnote 2 of the
            # paper); when no DP-preserving plan exists, re-plan freely.
            result = self.planner.plan(report.rates, dp=None)
            planning_time += result.breakdown.total
        if not result.feasible or result.plan is None:
            # Keep the current plan; the situation will be reported as-is.
            self.current_rates = dict(report.rates)
            return Adjustment(
                kind="none", planning_time=planning_time,
                description="re-planning infeasible; keeping current plan",
            )

        plan_changed = result.plan.stage_shape() != self.plan.stage_shape() or \
            result.plan.micro_batches() != self.plan.micro_batches() or \
            result.plan.active_gpus != self.plan.active_gpus
        migration_time = 0.0
        if plan_changed:
            migration = plan_migration(
                self.plan, result.plan, self.cluster,
                layer_param_bytes=self.task.model.layer_param_bytes(),
                layer_optimizer_bytes=self.task.model.params_per_layer()
                * self.cost_model.config.optimizer_bytes_per_param,
            )
            migration_time = estimate_migration_time(
                migration, self.cluster, self.task.model.num_layers
            )
            self.plan = result.plan
            self._dp_degree = result.plan.dp_degree
            self.profiler.mark_standby(result.plan.removed_gpus)
            self.profiler.unmark_standby(result.plan.active_gpus)

        self.current_rates = dict(report.rates)
        downtime = migration_time
        if not self.async_replanning:
            downtime += planning_time
        self.replan_events.append(
            ReplanEvent(
                trigger_rates=dict(report.rates),
                planning_time=planning_time,
                migration_time=migration_time,
                overlapped=self.async_replanning,
                plan_changed=plan_changed,
                estimated_step_time=result.estimated_step_time,
            )
        )
        return Adjustment(
            kind="migrate" if plan_changed else "replan",
            downtime=downtime,
            planning_time=planning_time,
            overlapped=self.async_replanning,
            description="asynchronous re-planning"
            if self.async_replanning else "synchronous re-planning",
        )

    def step_time(self, state: ClusterState) -> float:
        """Simulated step time of the current plan under the true rates."""
        assert self.plan is not None
        result = self.simulator.simulate_step(
            self.plan, state.rate_map(), check_memory=False
        )
        return result.step_time

    # ------------------------------------------------------------------
    # Failure handling (§5.1): reload the latest checkpoint without the
    # failed GPUs, whose rates become infinite.
    # ------------------------------------------------------------------
    def _handle_failure(self, rates: Dict[int, float]) -> Adjustment:
        dp = self._dp_degree if self.keep_dp_degree else None
        result = self.planner.plan(rates, dp=dp)
        if not result.feasible or result.plan is None:
            result = self.planner.plan(rates)  # relax the DP constraint
        if not result.feasible or result.plan is None:
            raise RuntimeError("Malleus cannot continue after the failure")
        self.plan = result.plan
        self._dp_degree = result.plan.dp_degree
        self.current_rates = dict(rates)
        downtime = restart_time(
            self.task.model, self.cluster, self.restart_config,
            save_checkpoint=False,
        )
        return Adjustment(
            kind="restart", downtime=downtime,
            description="GPU failure: reloading the latest checkpoint",
        )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def current_plan(self) -> Optional[ParallelizationPlan]:
        """The plan currently being executed."""
        return self.plan

    def estimated_step_time(self, rates: Optional[Dict[int, float]] = None) -> float:
        """Planner-style estimate for the current plan (used by Table 3)."""
        assert self.plan is not None
        return self.simulator.estimate_step_time(self.plan, rates
                                                  or self.current_rates)
