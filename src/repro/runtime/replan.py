"""Incremental re-planning: event classification and plan repair.

Malleus (§5) puts the planner on the critical path of every straggler
event, yet most production events are small, localized rate deltas — one
GPU in one pipeline drifting a few percent.  Re-solving the entire
bi-level problem from scratch for such an event wastes almost all of the
work: the grouping, the pipeline division and most layer assignments are
still exactly right.

This module classifies every :class:`~repro.cluster.stragglers.ClusterState`
delta against the incumbent plan into one of three event kinds and
dispatches to the cheapest *sound* repair:

``minor_rate_shift``
    Rates moved but no GPU crossed a grouping boundary (the delta-aware
    regroup of the touched nodes reproduces the incumbent partition).  The
    grouping and the pipeline division are kept; only the touched
    pipelines are re-ordered and the layer/data balance is re-solved,
    warm-started from the previous :class:`~repro.core.assignment.PlanCandidate`
    (untouched pipelines reuse their layer ILP solutions verbatim, the
    incumbent micro-batch size seeds the bound pruning of the remaining
    candidates).

``group_change``
    Stragglers entered or left a group: re-grouping a touched node changed
    its membership partition.  Untouched pipelines are kept; the changed
    nodes' new groups are re-distributed over the previously-hosting
    pipelines with :func:`~repro.solvers.division.repair_pipeline_division`
    and only those pipelines' lower level is re-solved.

``membership_change``
    A GPU failed (rate became infinite) or re-joined.  The engine falls
    back to the full planner — membership changes move the feasible set
    itself, so nothing short of a full solve is trustworthy.

After the incumbent ``(tp, dp)`` candidate is repaired, the engine runs
the planner's own bound-ordered candidate sweep over every *other*
``(tp, dp)`` pair — with groupings produced by the delta-aware regroup —
using the repaired step time as the starting incumbent.  A candidate whose
provably-sound lower bound cannot beat the repair is skipped without any
solver work; one that could beat it is solved exactly, just as the full
planner would.  When transition-aware planning is enabled
(:class:`~repro.core.planner.TransitionConfig` on the planner), the sweep
scores every candidate's migration cost from the *pre-event* plan and the
selection mirrors the planner's epsilon-windowed minimal-disruption rule —
a warm repair that keeps the incumbent layout (near-zero migration) then
wins every tie against a fresh layout, which is exactly the disruption
argument for repairing in the first place.  For a local event essentially everything prunes, which is
where the latency win comes from; the only quality gap versus a full
re-plan is division drift *inside* the incumbent candidate (the kept
division may be slightly stale for the new rates).  ``minor_rate_shift``
events keep the warm repair as the incumbent pair's representative; a
``group_change`` re-solves the incumbent pair fresh as well (the partial
division repair only re-places the changed groups, and generated
straggler traces showed the kept global division drifting past epsilon
there), with the warm repair still winning ties.  The randomized
equivalence sweep (``tests/test_replan_random_traces.py``) holds repairs
within ``ReplanConfig.epsilon`` of a cold full plan across generated
regimes; on the paper trace they match exactly.

Every repair produces a normal :class:`~repro.core.planner.PlanningResult`
(with a fresh :class:`~repro.core.planner.PlanContext` for the next event),
so callers cannot tell a repaired plan from a planned one except by its
latency.  The engine is a heuristic accelerator, never a silent quality
cliff: any structural surprise — too many touched pipelines, an emptied
pipeline, an infeasible warm solve — falls back to the full planner, and
``ReplanConfig.verify`` makes the engine *check* every repair against a
fresh full solve at runtime (for debugging; it obviously forfeits the
speedup).  The ``incremental=False`` escape hatch on
:class:`~repro.runtime.malleus.MalleusSystem` bypasses the engine
entirely.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compat import np
from ..core.assignment import (
    LayerAssignmentResult,
    PlanCandidate,
    assign_data,
    assign_layers,
    exact_step_time,
    solve_lower_level,
    sorted_divisors,
)
from ..core.grouping import (
    GroupingResult,
    RegroupDelta,
    group_gpus,
    group_rate,
    regroup_delta,
)
from ..core import kernel_timing
from ..core.orchestration import order_pipeline_groups
from ..core.planner import (
    CandidateRecord,
    MalleusPlanner,
    PlanContext,
    PlanningResult,
    PlanningTimeBreakdown,
)
from ..core.sweep import EvalContext, SweepEntry, SweepSeed, candidate_bound, run_sweep
from ..parallel.plan import TPGroup
from ..solvers.division import repair_pipeline_division

#: Event taxonomy (what happened to the cluster, relative to the incumbent).
EVENT_NO_CHANGE = "no_change"
EVENT_MINOR_RATE_SHIFT = "minor_rate_shift"
EVENT_GROUP_CHANGE = "group_change"
EVENT_MEMBERSHIP_CHANGE = "membership_change"

#: Repair tiers (what the engine did about it), cheapest first.
TIER_NONE = "none"
TIER_REBALANCE = "rebalance"
TIER_PARTIAL = "partial_resolve"
TIER_FULL = "full"
#: Not a repair: a ``rebalance_only`` request the cheap tiers could not
#: serve (membership change, infeasible warm solve, a tier exception).
#: The caller keeps the incumbent plan and decides when to retry with the
#: full engine — the planning service's deadline/deferral machinery.
TIER_DEFERRED = "deferred"


@dataclass
class ReplanConfig:
    """Tunables of the incremental repair engine.

    ``epsilon`` is the relative step-time gap versus the full planner that
    a repair is allowed (the equivalence tests sweep it; with ``verify``
    it is also enforced at runtime).  ``max_touched_fraction`` bounds how
    much of the division a ``group_change`` repair may re-solve before the
    engine concludes the event is not local and falls back to the full
    planner.  ``enabled=False`` turns the engine into a pass-through to
    :meth:`~repro.core.planner.MalleusPlanner.plan`.
    """

    enabled: bool = True
    epsilon: float = 0.01
    verify: bool = False
    #: Fraction of pipelines a group_change repair may restructure before
    #: falling back to the full planner.  The default (1.0, i.e. never bail
    #: on size alone — at least one pipeline is always allowed) leans on the
    #: bound sweep for quality; tighten it to trade repair coverage for
    #: stricter locality.
    max_touched_fraction: float = 1.0


@dataclass
class RepairOutcome:
    """What the engine decided and did for one event.

    ``result`` is ``None`` only for ``TIER_NONE`` (nothing to repair: the
    incumbent plan is untouched by the delta) and ``TIER_DEFERRED`` (a
    ``rebalance_only`` request the cheap tiers could not serve — the
    incumbent plan stays in force).  ``tier_errors`` records every tier
    that *raised* while handling the event; a tier exception degrades to
    the next tier (ultimately the full planner) instead of propagating,
    so the entries here are the only trace the failure leaves.
    """

    event_kind: str
    repair_tier: str
    result: Optional[PlanningResult]
    touched_gpus: List[int] = field(default_factory=list)
    touched_pipelines: List[int] = field(default_factory=list)
    fallback_reason: str = ""
    repair_seconds: float = 0.0
    tier_errors: List[str] = field(default_factory=list)


class ReplanEngine:
    """Classifies cluster-state deltas and repairs the incumbent plan."""

    def __init__(self, planner: MalleusPlanner,
                 config: Optional[ReplanConfig] = None):
        self.planner = planner
        self.config = config or ReplanConfig()

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(
        self,
        previous: PlanContext,
        rates: Dict[int, float],
    ) -> Tuple[str, List[int], Optional[RegroupDelta]]:
        """Classify the delta between the incumbent's rates and ``rates``.

        Returns ``(event_kind, touched_gpu_ids, regroup_delta)``; the
        regroup delta (computed on the incumbent's winning TP limit) is
        only returned for the two incremental kinds, since a membership
        change skips straight to the full planner.
        """
        old = previous.rates
        touched: List[int] = []
        membership = False
        keys = tuple(rates)
        if np is not None and len(keys) >= 1024 and keys == tuple(old):
            # Same GPUs in the same insertion order: the id-by-id python
            # walk collapses to two array comparisons.  ``touched`` keeps
            # the dict iteration order (ascending mask indices), and the
            # membership / shift predicates are the exact scalar ones —
            # an infinity flip is membership, a same-finiteness value
            # change is a touch (``inf != inf`` is false either way).
            new_vals = np.fromiter(rates.values(), dtype=np.float64,
                                   count=len(keys))
            old_vals = np.fromiter(old.values(), dtype=np.float64,
                                   count=len(keys))
            new_inf = np.isinf(new_vals)
            old_inf = np.isinf(old_vals)
            membership = bool((new_inf != old_inf).any())
            shifted = (new_vals != old_vals) & (new_inf == old_inf)
            touched = [keys[i] for i in np.flatnonzero(shifted).tolist()]
        else:
            for gpu_id, rate in rates.items():
                prior = old.get(gpu_id)
                if prior is None:
                    membership = True
                    continue
                if math.isinf(rate) != math.isinf(prior):
                    membership = True
                elif rate != prior:
                    touched.append(gpu_id)
            if set(old) - set(rates):
                membership = True
        if membership:
            return EVENT_MEMBERSHIP_CHANGE, touched, None
        if not touched:
            return EVENT_NO_CHANGE, [], None

        delta = self._regroup(previous.grouping, rates, touched)
        kind = EVENT_MINOR_RATE_SHIFT if delta.unchanged else EVENT_GROUP_CHANGE
        return kind, touched, delta

    def _regroup(self, grouping: GroupingResult, rates: Dict[int, float],
                 touched: Sequence[int]) -> RegroupDelta:
        planner = self.planner
        return regroup_delta(
            planner.cluster, rates, planner.cost_model, grouping, touched,
            micro_batch_size=planner.task.micro_batch_size,
            straggler_threshold=planner.straggler_threshold,
            enable_splitting=planner.enable_splitting,
        )

    # ------------------------------------------------------------------
    # Repair dispatch
    # ------------------------------------------------------------------
    def repair(self, previous: PlanContext, rates: Dict[int, float],
               dp: Optional[int] = None,
               rebalance_only: bool = False) -> RepairOutcome:
        """Classify one event and apply the cheapest sound repair.

        ``dp`` pins the DP degree of the candidate sweep and of the
        full-planner fallback (the incremental warm start keeps the
        incumbent DP degree by construction).  The engine's own work —
        classification and delta re-grouping (``grouping`` phase), the
        partial division repair (``division`` phase) — is charged to the
        result's :class:`~repro.core.planner.PlanningTimeBreakdown`, so
        repair timings decompose exactly like full-planner timings.

        ``rebalance_only`` is the degraded mode the planning service runs
        under a deadline: only the warm incumbent repair is attempted —
        the candidate sweep over the other (tp, dp) pairs is skipped and
        nothing ever falls back to the full planner.  An event the cheap
        tiers cannot serve (membership change, infeasible or raising warm
        solve) comes back as :data:`TIER_DEFERRED` with ``result=None``
        and the incumbent plan stays in force; quality-wise a served
        repair is a real feasible plan, merely without the sweep's
        guarantee of matching a full re-plan.

        A tier that *raises* never aborts the event: the engine records
        the error on ``RepairOutcome.tier_errors`` and degrades to the
        next tier — ultimately the full planner (or ``TIER_DEFERRED``
        under ``rebalance_only``).  Only an exception from the full
        planner itself propagates.
        """
        # Same episode-scoped rate pin as MalleusPlanner.plan: every
        # kernel call in the repair tiers shares this one frozen mapping.
        pin = getattr(self.planner.cost_model, "pin_rates", None)
        release = pin(rates) if pin is not None else None
        try:
            return self._repair_impl(previous, rates, dp, rebalance_only)
        finally:
            if release is not None:
                release()

    def _repair_impl(self, previous: PlanContext, rates: Dict[int, float],
                     dp: Optional[int],
                     rebalance_only: bool) -> RepairOutcome:
        start = time.perf_counter()
        # Same self-heal as MalleusPlanner.plan: repairs call the cost
        # model directly, so an in-place config edit since the last plan
        # must invalidate the coefficient caches here too.
        refresh = getattr(self.planner.cost_model,
                          "refresh_if_config_changed", None)
        if refresh is not None:
            refresh()
        pre = PlanningTimeBreakdown()
        # Discard kernel-timing samples from earlier, unrelated work so the
        # per-kernel wall times attributed to this repair are its own (the
        # full-planner fallback drains again on entry for the same reason).
        kernel_timing.drain()
        if not self.config.enabled:
            if rebalance_only:
                return self._deferred(EVENT_NO_CHANGE, [], start,
                                      "incremental re-planning disabled")
            return self._full(previous, rates, dp, EVENT_NO_CHANGE,
                              "incremental re-planning disabled", start, pre)
        if not self.planner.enable_pruning and not rebalance_only:
            # The repair's soundness versus the full planner rests on the
            # bound-pruned candidate sweep; with pruning disabled every
            # non-incumbent candidate would have to be solved exactly anyway,
            # so there is nothing to save — run the full planner.  (A
            # rebalance-only request skips the sweep entirely, so it stays
            # on the warm path regardless.)
            return self._full(previous, rates, dp, EVENT_NO_CHANGE,
                              "planner pruning disabled", start, pre)
        tier_errors: List[str] = []
        phase = time.perf_counter()
        try:
            kind, touched, delta = self.classify(previous, rates)
        except Exception as exc:
            pre.grouping += time.perf_counter() - phase
            tier_errors.append(f"classify: {exc!r}")
            if rebalance_only:
                return self._deferred(EVENT_NO_CHANGE, [], start,
                                      "classification raised", tier_errors)
            outcome = self._full(previous, rates, dp, EVENT_NO_CHANGE,
                                 "classification raised", start, pre)
            outcome.tier_errors = tier_errors
            return outcome
        pre.grouping += time.perf_counter() - phase
        if kind == EVENT_NO_CHANGE:
            return RepairOutcome(
                event_kind=kind, repair_tier=TIER_NONE, result=None,
                repair_seconds=time.perf_counter() - start,
            )
        if kind == EVENT_MEMBERSHIP_CHANGE:
            if rebalance_only:
                # Membership changes move the feasible set; nothing short
                # of a full solve is sound, and that is exactly what a
                # rebalance-only request forbids.
                return self._deferred(kind, touched, start,
                                      "membership change needs a full solve")
            # Failure/join: every cached sweep division was solved for a
            # different GPU membership — evict before the full fallback.
            self.planner.solution_cache.evict_membership_change()
            return self._full(previous, rates, dp, kind,
                              "membership change", start, pre)
        phase = time.perf_counter()
        if kind == EVENT_MINOR_RATE_SHIFT:
            tier = TIER_REBALANCE
        else:
            tier = TIER_PARTIAL
        try:
            if kind == EVENT_MINOR_RATE_SHIFT:
                prepared = self._prepare_minor(previous, rates, touched)
            else:
                prepared = self._prepare_group_change(previous, rates,
                                                      touched, delta)
        except Exception as exc:
            prepared = None
            tier_errors.append(f"{tier} preparation: {exc!r}")
        pre.division += time.perf_counter() - phase
        if prepared == "untouched":
            return RepairOutcome(
                event_kind=kind, repair_tier=TIER_NONE, result=None,
                touched_gpus=list(touched),
                repair_seconds=time.perf_counter() - start,
            )
        outcome: Optional[RepairOutcome] = None
        if prepared is not None:
            pipelines, touched_pipelines = prepared
            try:
                if rebalance_only:
                    result = self._solve_rebalance_only(
                        previous, rates, delta, pipelines, touched_pipelines,
                        breakdown=pre,
                    )
                else:
                    result = self._solve_repair(
                        previous, rates, touched, delta,
                        pipelines, touched_pipelines, dp,
                        resolve_incumbent=(tier == TIER_PARTIAL),
                        breakdown=pre,
                    )
            except Exception as exc:
                result = None
                tier_errors.append(f"{tier} solve: {exc!r}")
            if result is not None:
                result.breakdown.merge_kernels(kernel_timing.drain())
                outcome = RepairOutcome(
                    event_kind=kind, repair_tier=tier, result=result,
                    touched_gpus=list(touched),
                    touched_pipelines=list(touched_pipelines),
                    repair_seconds=time.perf_counter() - start,
                    tier_errors=list(tier_errors),
                )
        if outcome is None:
            reason = "incremental repair infeasible"
            if tier_errors:
                reason = f"repair tier raised ({'; '.join(tier_errors)})"
            if rebalance_only:
                return self._deferred(kind, touched, start, reason,
                                      tier_errors)
            outcome = self._full(previous, rates, dp, kind, reason, start,
                                 pre)
            outcome.tier_errors = tier_errors
            return outcome
        if self.config.verify:
            full = self.planner.plan(rates, dp=dp)
            repaired = outcome.result.estimated_step_time
            if full.feasible and \
                    repaired > full.estimated_step_time * (1.0 + self.config.epsilon):
                return RepairOutcome(
                    event_kind=kind, repair_tier=TIER_FULL, result=full,
                    touched_gpus=list(touched),
                    fallback_reason="verify: repair exceeded epsilon",
                    repair_seconds=time.perf_counter() - start,
                )
        return outcome

    def _full(self, previous: PlanContext, rates: Dict[int, float],
              dp: Optional[int], kind: str, reason: str, start: float,
              pre: Optional[PlanningTimeBreakdown] = None) -> RepairOutcome:
        result = self.planner.plan(rates, dp=dp, previous=previous)
        if pre is not None:
            # The engine's classification work happened before the full
            # planner ran; fold it in so breakdown.total covers the event.
            result.breakdown.merge(pre)
        return RepairOutcome(
            event_kind=kind, repair_tier=TIER_FULL, result=result,
            fallback_reason=reason,
            repair_seconds=time.perf_counter() - start,
        )

    def _deferred(self, kind: str, touched: Sequence[int], start: float,
                  reason: str,
                  tier_errors: Optional[List[str]] = None) -> RepairOutcome:
        """A ``rebalance_only`` request the cheap tiers could not serve."""
        return RepairOutcome(
            event_kind=kind, repair_tier=TIER_DEFERRED, result=None,
            touched_gpus=list(touched),
            fallback_reason=reason,
            repair_seconds=time.perf_counter() - start,
            tier_errors=list(tier_errors or []),
        )

    def _solve_rebalance_only(
        self,
        previous: PlanContext,
        rates: Dict[int, float],
        delta: Optional[RegroupDelta],
        pipelines: List[List[TPGroup]],
        touched_pipelines: Sequence[int],
        breakdown: PlanningTimeBreakdown,
    ) -> Optional[PlanningResult]:
        """Warm incumbent repair with no candidate sweep (degraded mode).

        Exactly the warm lower-level re-solve of :meth:`_solve_repair`,
        but the bound-ordered sweep over the other ``(tp, dp)`` pairs is
        skipped: the repaired incumbent candidate *is* the answer.  The
        produced :class:`~repro.core.planner.PlanContext` keeps the
        incumbent TP limit and carries the delta-updated grouping, so a
        later full repair warm-starts exactly as if the sweep had run and
        re-elected the incumbent.
        """
        planner = self.planner
        task = planner.task
        cost_model = planner.cost_model
        all_gpu_ids = planner.cluster.gpu_ids()

        warm = self._warm_lower_level(previous, rates, pipelines,
                                      touched_pipelines, breakdown)
        if warm is None:
            return None
        best_candidate, best_time, best_b = warm
        incumbent_grouping = delta.grouping if delta is not None \
            else previous.grouping
        groupings = dict(previous.groupings)
        groupings[previous.tp_limit] = incumbent_grouping

        start = time.perf_counter()
        plan = best_candidate.materialize(rates, cost_model, all_gpu_ids)
        breakdown.assignment += time.perf_counter() - start
        plan.estimated_step_time = best_time
        context = PlanContext(
            rates=dict(rates),
            tp_limit=previous.tp_limit,
            dp_degree=len(pipelines),
            grouping=incumbent_grouping,
            pipelines_groups=best_candidate.pipelines_groups,
            candidate=best_candidate,
            micro_batch_size=best_b,
            estimated_step_time=best_time,
            groupings=groupings,
        )
        candidates = [CandidateRecord(
            tp_limit=previous.tp_limit, dp_degree=len(pipelines),
            estimated_step_time=best_time, feasible=True,
            num_groups=incumbent_grouping.num_groups(),
            isolated_gpus=list(incumbent_grouping.isolated_gpus),
        )]
        return PlanningResult(
            plan=plan,
            estimated_step_time=best_time,
            breakdown=breakdown,
            candidates=candidates,
            feasible=True,
            context=context,
        )

    # ------------------------------------------------------------------
    # Tier preparation: which pipelines change, and how
    # ------------------------------------------------------------------
    def _touched_pipelines(self, pipelines: Sequence[Sequence[TPGroup]],
                           touched_set: set,
                           rates: Dict[int, float]) -> List[int]:
        """Indices of pipelines hosting at least one touched GPU.

        The scalar membership walk is the reference contract; with numpy
        available and enough hosted members the pass collapses onto the
        episode's :class:`~repro.core.costmodel.RateArray` index — one
        boolean gather plus one ``np.logical_or.reduceat`` — with the
        member-position gather memoized per (pipelines, index) on the
        array's gather cache, mirroring
        :func:`~repro.core.grouping.group_rates_batch`.
        """
        def scalar() -> List[int]:
            return [
                i for i, groups in enumerate(pipelines)
                if any(g in touched_set
                       for group in groups for g in group.gpu_ids)
            ]

        total = sum(group.size for groups in pipelines for group in groups)
        if np is None or total < 64:
            return scalar()
        ra = self.planner.cost_model.rate_array(rates)
        sizes = tuple(
            sum(group.size for group in groups) for groups in pipelines
        )
        key = ("touched_pipelines", sizes, tuple(
            id(group) for groups in pipelines for group in groups))
        entry = ra.gather_cache.get(key)
        if entry is None:
            hosted = [i for i, groups in enumerate(pipelines) if groups]
            members = np.asarray(
                [g for i in hosted for group in pipelines[i]
                 for g in group.gpu_ids],
                dtype=np.int64,
            )
            positions = np.searchsorted(ra.ids, members)
            in_index = np.minimum(positions, len(ra.ids) - 1)
            if not np.array_equal(ra.ids[in_index], members):
                # A hosted GPU is outside the rate index: keep the scalar
                # contract rather than guess.
                return scalar()
            counts = [sizes[i] for i in hosted]
            offsets = np.zeros(len(hosted), dtype=np.int64)
            np.cumsum(np.asarray(counts[:-1], dtype=np.int64),
                      out=offsets[1:])
            pinned = tuple(
                group for groups in pipelines for group in groups
            )
            if len(ra.gather_cache) >= 256:
                ra.gather_cache.clear()
            ra.gather_cache[key] = (pinned, positions, offsets, hosted)
        else:
            _, positions, offsets, hosted = entry
        try:
            rows = [ra.position[g] for g in touched_set]
        except KeyError:
            return scalar()
        flags = np.zeros(len(ra.ids), dtype=bool)
        flags[rows] = True
        hit = np.logical_or.reduceat(flags[positions], offsets)
        return [hosted[j] for j in np.flatnonzero(hit).tolist()]

    def _prepare_minor(self, previous: PlanContext, rates: Dict[int, float],
                       touched: Sequence[int]):
        """Minor shift: keep grouping and division, flag touched pipelines."""
        touched_set = set(touched)
        pipelines = [list(groups) for groups in previous.pipelines_groups]
        touched_pipelines = self._touched_pipelines(
            pipelines, touched_set, rates
        )
        if not touched_pipelines:
            # Only GPUs outside every pipeline moved (and none crossed a
            # grouping boundary): the incumbent plan is untouched.
            return "untouched"
        return pipelines, touched_pipelines

    def _prepare_group_change(self, previous: PlanContext,
                              rates: Dict[int, float],
                              touched: Sequence[int],
                              delta: RegroupDelta):
        """Group change: swap the re-grouped nodes' groups into their
        previously-hosting pipelines via a partial division re-solve."""
        task = self.planner.task
        cost_model = self.planner.cost_model
        b_ref = task.micro_batch_size
        touched_set = set(touched)
        removed = {g.id_set for g in delta.removed_groups}

        pipelines: List[List[TPGroup]] = []
        structure_touched: List[int] = []
        for i, groups in enumerate(previous.pipelines_groups):
            kept = [g for g in groups if g.id_set not in removed]
            pipelines.append(kept)
            if len(kept) != len(groups):
                structure_touched.append(i)
        structure_set = set(structure_touched)
        rate_touched = [
            i for i in self._touched_pipelines(pipelines, touched_set, rates)
            if i not in structure_set
        ]
        dp = len(pipelines)
        if not structure_touched:
            # Groups changed only among GPUs no pipeline hosts (e.g. a
            # standby straggler splitting differently) — without a hosting
            # pipeline there is nowhere local to repair; be conservative.
            return None
        if len(structure_touched) > max(1.0,
                                        self.config.max_touched_fraction * dp):
            return None

        pool = [
            g for g in delta.added_groups
            if not math.isinf(group_rate(g, rates, cost_model, b_ref))
        ]
        kept_speeds = []
        for groups in pipelines:
            speed = 0.0
            for group in groups:
                y = group_rate(group, rates, cost_model, b_ref)
                if y > 0 and not math.isinf(y):
                    speed += 1.0 / y
            kept_speeds.append(speed)
        total_micro_batches = task.global_batch_size // b_ref
        pool_rates = [group_rate(g, rates, cost_model, b_ref) for g in pool]
        use_cache = getattr(cost_model, "enable_caching", True)
        partial = repair_pipeline_division(
            kept_speeds, pool_rates, structure_touched, total_micro_batches,
            use_minmax_cache=use_cache,
        )
        if not partial.feasible:
            return None

        # Map the abstract placements back onto concrete groups (same
        # rounded-rate bucketing as divide_pipelines).
        buckets: Dict[float, List[TPGroup]] = {}
        for group, y in zip(pool, pool_rates):
            buckets.setdefault(round(y, 9), []).append(group)
        for i in structure_touched:
            for y in partial.placements[i]:
                bucket = buckets.get(round(y, 9))
                if not bucket:
                    key = min(buckets, key=lambda k: abs(k - y)) if buckets \
                        else None
                    bucket = buckets.get(key) if key is not None else None
                if not bucket:
                    return None
                pipelines[i].append(bucket.pop())
        if any(not groups for groups in pipelines):
            return None
        touched_pipelines = sorted(set(structure_touched) | set(rate_touched))
        return pipelines, touched_pipelines

    # ------------------------------------------------------------------
    # Repair solve: warm lower level + bound-pruned candidate sweep
    # ------------------------------------------------------------------
    def _solve_repair(
        self,
        previous: PlanContext,
        rates: Dict[int, float],
        touched: Sequence[int],
        delta: Optional[RegroupDelta],
        pipelines: List[List[TPGroup]],
        touched_pipelines: Sequence[int],
        dp_arg: Optional[int],
        resolve_incumbent: bool = False,
        breakdown: Optional[PlanningTimeBreakdown] = None,
    ) -> Optional[PlanningResult]:
        planner = self.planner
        task = planner.task
        cost_model = planner.cost_model
        if breakdown is None:
            breakdown = PlanningTimeBreakdown()
        all_gpu_ids = planner.cluster.gpu_ids()
        scorer = planner._transition_scorer(previous)

        warm = self._warm_lower_level(previous, rates, pipelines,
                                      touched_pipelines, breakdown)
        if warm is None:
            return None
        best_candidate, best_time, best_b = warm
        best_tp = previous.tp_limit
        best_dp = len(pipelines)
        incumbent_grouping = delta.grouping if delta is not None \
            else previous.grouping

        # Delta-regroup every other candidate TP limit, then sweep the
        # remaining (grouping, dp) candidates in bound order against the
        # repaired incumbent — exactly the full planner's phase 2, except
        # the incumbent starts tight, so a local event prunes everything.
        # The warm repair enters the sweep as its seed (order index -1): it
        # wins every tie, and under transition-aware scoring it is the
        # candidate that keeps the incumbent layout.
        start = time.perf_counter()
        groupings: Dict[int, GroupingResult] = {}
        for tp_limit in planner.tp_candidates:
            if tp_limit == previous.tp_limit:
                groupings[tp_limit] = incumbent_grouping
                continue
            prior = previous.groupings.get(tp_limit)
            if prior is None:
                groupings[tp_limit] = group_gpus(
                    planner.cluster, rates, cost_model, tp_limit,
                    micro_batch_size=task.micro_batch_size,
                    straggler_threshold=planner.straggler_threshold,
                    enable_splitting=planner.enable_splitting,
                )
            else:
                groupings[tp_limit] = self._regroup(prior, rates,
                                                    touched).grouping
        breakdown.grouping += time.perf_counter() - start

        candidates = [CandidateRecord(
            tp_limit=best_tp, dp_degree=best_dp,
            estimated_step_time=best_time, feasible=True,
            num_groups=incumbent_grouping.num_groups(),
            isolated_gpus=list(incumbent_grouping.isolated_gpus),
        )]
        b_candidates = sorted_divisors(task.global_batch_size)
        entries: List[SweepEntry] = []
        index = 0
        num_layers = task.model.num_layers
        for tp_limit in planner.tp_candidates:
            grouping = groupings[tp_limit]
            if dp_arg is not None:
                dp_list: Sequence[int] = [dp_arg]
            elif planner.dp_candidates is not None:
                dp_list = planner.dp_candidates
            else:
                dp_list = planner._default_dp_candidates(
                    grouping.num_groups()
                )
            for dp_degree in dp_list:
                if tp_limit == previous.tp_limit and dp_degree == best_dp \
                        and scorer is None and not resolve_incumbent:
                    # Represented by the warm repair (minor rate shifts
                    # only: the kept division provably hosts the same
                    # groups, so only intra-pair drift is possible).  A
                    # group_change repair re-solves the pair fresh — the
                    # partial division repair only re-places the changed
                    # groups, and generated traces show the kept global
                    # division can drift past epsilon there — as does a
                    # transition-aware sweep, whose repair may have
                    # drifted out of the epsilon window while a fresh
                    # solve of the incumbent pair (typically the cheapest
                    # layout to reach) still fits it.  The warm repair
                    # keeps winning ties either way.
                    continue
                start = time.perf_counter()
                # The warm repair supplies a live incumbent, so the
                # batched screen can reject clearly-worse candidates
                # without paying the exact sequential bound (transition
                # sweeps relax the pruning cutoff to the epsilon window,
                # so they keep exact bounds throughout).
                bound = candidate_bound(
                    grouping, rates, cost_model, num_layers,
                    task.global_batch_size, b_candidates, dp_degree,
                    cutoff=best_time if scorer is None else None,
                )
                breakdown.division += time.perf_counter() - start
                entries.append(SweepEntry(bound, index, grouping, dp_degree))
                index += 1
        entries.sort(key=lambda entry: (entry.bound, entry.entry_index))

        ctx = EvalContext(
            task=task,
            cost_model=cost_model,
            rates=rates,
            micro_batch_candidates=tuple(b_candidates),
            all_gpu_ids=tuple(all_gpu_ids),
            enable_pruning=planner.enable_pruning,
            legacy_kernels=planner.legacy_kernels,
            kernels=getattr(planner, "kernels", None),
        )
        seed = SweepSeed(
            step_time=best_time,
            candidate=best_candidate,
            micro_batch_size=best_b,
            tp_limit=best_tp,
            dp_degree=best_dp,
            grouping=incumbent_grouping,
        )
        outcome = run_sweep(
            entries, ctx, planner.sweep_executor,
            breakdown=breakdown, scorer=scorer, seed=seed,
            tie_break="strict", prune=True, cache=planner.solution_cache,
        )
        candidates.extend(outcome.records)
        best_time = outcome.step_time
        best_candidate = outcome.candidate
        best_b = outcome.micro_batch_size
        best_tp = outcome.tp_limit
        best_dp = outcome.dp_degree

        start = time.perf_counter()
        plan = outcome.plan
        if plan is None:
            plan = best_candidate.materialize(rates, cost_model, all_gpu_ids)
        breakdown.assignment += time.perf_counter() - start
        plan.estimated_step_time = best_time
        context = PlanContext(
            rates=dict(rates),
            tp_limit=best_tp,
            dp_degree=best_dp,
            grouping=groupings.get(best_tp, incumbent_grouping),
            pipelines_groups=best_candidate.pipelines_groups,
            candidate=best_candidate,
            micro_batch_size=best_b,
            estimated_step_time=best_time,
            groupings=groupings,
        )
        return PlanningResult(
            plan=plan,
            estimated_step_time=best_time,
            breakdown=breakdown,
            candidates=candidates,
            feasible=True,
            context=context,
            transition=outcome.transition,
            sweep_stats=outcome.stats.as_dict(),
        )

    def _warm_lower_level(
        self,
        previous: PlanContext,
        rates: Dict[int, float],
        pipelines: List[List[TPGroup]],
        touched_pipelines: Sequence[int],
        breakdown: PlanningTimeBreakdown,
    ) -> Optional[Tuple[PlanCandidate, float, int]]:
        """Re-solve the lower level, reusing untouched pipelines' solutions.

        The incumbent micro-batch size is evaluated first: untouched
        pipelines reuse their layer ILP results verbatim (their group rates
        did not move), touched pipelines are re-solved, and one exact data
        assignment re-balances the micro-batches.  The resulting step time
        then serves as the incumbent for a bound-pruned sweep of the
        remaining micro-batch candidates, so the full candidate space stays
        covered at a fraction of the usual cost.
        """
        planner = self.planner
        task = planner.task
        cost_model = planner.cost_model
        num_layers = task.model.num_layers
        dp = len(pipelines)
        prev_b = previous.micro_batch_size
        all_gpu_ids = planner.cluster.gpu_ids()
        touched_set = set(touched_pipelines)

        start = time.perf_counter()
        for i in touched_pipelines:
            pipelines[i] = order_pipeline_groups(
                pipelines[i], rates, cost_model, num_layers,
                task.micro_batch_size, dp,
            )
        breakdown.ordering += time.perf_counter() - start

        start = time.perf_counter()
        layer_results: List[LayerAssignmentResult] = []
        warm_feasible = True
        for i, groups in enumerate(pipelines):
            if i in touched_set:
                layer_results.append(assign_layers(
                    groups, rates, cost_model, num_layers, prev_b, dp,
                ))
            else:
                layer_results.append(previous.candidate.layer_results[i])
            if not layer_results[-1].feasible:
                warm_feasible = False
        use_cache = getattr(cost_model, "enable_caching", True)
        best_candidate: Optional[PlanCandidate] = None
        best_time = math.inf
        best_b = 0
        if warm_feasible and prev_b > 0:
            bottlenecks = [r.bottleneck for r in layer_results]
            micro_batches, data_objective = assign_data(
                bottlenecks, task.global_batch_size // prev_b,
                use_cache=use_cache,
            )
            if not math.isinf(data_objective):
                best_time = exact_step_time(
                    pipelines, layer_results, micro_batches, rates,
                    cost_model, prev_b,
                )
                best_b = prev_b
                best_candidate = PlanCandidate(
                    pipelines_groups=pipelines,
                    layer_results=layer_results,
                    micro_batches=micro_batches,
                    micro_batch_size=prev_b,
                    num_layers=num_layers,
                    global_batch_size=task.global_batch_size,
                )

        # Sweep the remaining micro-batch candidates against the warm
        # incumbent; bound pruning usually skips nearly all of them.
        remaining = [
            b for b in sorted_divisors(task.global_batch_size) if b != best_b
        ]
        if remaining:
            swept = solve_lower_level(
                pipelines, rates, cost_model, num_layers,
                task.global_batch_size, remaining, all_gpu_ids,
                materialize=False, incumbent=best_time,
                enable_pruning=planner.enable_pruning,
            )
            if swept.feasible:
                wins = swept.estimated_step_time < best_time - 1e-12
                if not wins and best_candidate is not None and \
                        abs(swept.estimated_step_time - best_time) <= 1e-12:
                    wins = swept.micro_batch_size < best_b
                if wins or best_candidate is None:
                    best_time = swept.estimated_step_time
                    best_b = swept.micro_batch_size
                    best_candidate = swept.candidate
        breakdown.assignment += time.perf_counter() - start

        if best_candidate is None or math.isinf(best_time):
            return None
        return best_candidate, best_time, best_b
