"""The always-on planning service: admission control, deadlines, deferral.

:class:`~repro.runtime.malleus.MalleusSystem` re-plans once per observed
situation; a production fleet instead emits event *storms* — the same GPU
flapping every few seconds, twenty small deltas where one repair suffices
— and a planner that blocks past its budget (or crashes mid-repair)
leaves the job on the stale plan indefinitely.  :class:`PlanningService`
wraps a system behind an event queue and makes planning a long-lived,
failure-tolerant service:

**Admission control and burst coalescing** (``ServiceConfig.coalesce``).
Every submission is reduced to a per-GPU delta against the service's
latest observed view; deltas touching the same GPU supersede each other
inside one queued entry (the disjointness invariant: each GPU appears in
at most one *open* entry, entries touching overlapping GPU sets are
merged), a debounce window holds an entry back until its GPU stops
flapping (with a hard age limit so a permanently-flapping GPU still gets
repaired — an entry past the limit is sealed against further merges), and a
bounded queue sheds backlog deterministically by merging its two oldest
entries — shedding loses *entries*, never rates.  Failure deltas are
urgent and bypass the debounce entirely.

**Planner deadlines with graceful degradation** (``ServiceConfig.deadline``).
Each episode runs under a wall-clock budget.  The service predicts every
tier's duration with a per-tier EWMA and degrades *before* planning:
full repair when it is predicted to fit, warm ``rebalance_only`` repair
when only that fits, and an immediate recorded deferral when nothing
fits.  A deferred event retries with exponential backoff; after
``max_retries`` deferrals the event is *forced* through the full engine
regardless of the deadline — an event always ends in a repair or a
recorded degradation, never in a lost plan.  Budget overruns are
recorded post-hoc (planning is never preempted mid-solve) and feed the
EWMA, degrading future episodes instead.

Two time axes, deliberately: queueing (debounce, backoff, queue waits)
runs on the caller-supplied simulation clock ``now`` — deterministic and
test-controlled — while planner budgets are measured on an injectable
wall clock (``clock=``, default :func:`time.perf_counter`; the fault
harness injects a fake one to script overruns deterministically).

With every knob at its default the service is a pure pass-through:
``submit`` + ``pump`` drive the wrapped system 1:1, in order, with the
submitted states verbatim — bit-identical to calling
``system.on_situation_change`` directly, which is what keeps the
existing regression gates green with the service in the loop.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..cluster.stragglers import ClusterState
from ..simulator.session import Adjustment
from .malleus import MalleusSystem
from .replan import TIER_DEFERRED
from .speculate import RepairHint, SpeculationEngine, SpeculationPolicy

#: How an episode was allowed to plan (the degradation ladder, §-less).
MODE_FULL = "full"
MODE_REBALANCE_ONLY = "rebalance_only"
MODE_SKIPPED = "skipped"


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` in [0, 100]; an empty input yields ``nan`` so callers can gate
    on "no data" explicitly instead of tripping over an exception.
    """
    if not values:
        return math.nan
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class ServiceConfig:
    """Tunables of the planning service.  Every default is *off*.

    Admission control:

    ``coalesce``
        Master switch for delta coalescing.  Off, the service is a strict
        FIFO pass-through (one submission = one planning episode).
    ``debounce_window``
        Sim-time seconds an entry must go without a new delta before it
        becomes eligible (0 disables: entries are eligible immediately).
    ``debounce_limit``
        Hard sim-time age cap: an entry older than this is eligible even
        if its GPU is still flapping (0 disables the cap).
    ``max_queue``
        Queue bound; exceeding it merges the two oldest entries
        (0 = unbounded).  Merging supersedes rates, it never drops them.
    ``expedite_failures``
        Failure deltas (a rate going infinite) skip the debounce window.

    Deadlines and deferral:

    ``deadline``
        Wall-clock planning budget per episode in seconds (0 disables).
    ``max_retries``
        Deferrals an event may accumulate before it is forced through
        the full engine regardless of the deadline.
    ``retry_backoff`` / ``backoff_factor``
        Sim-time delay before a deferred event's n-th retry:
        ``retry_backoff * backoff_factor ** (n - 1)``.
    ``ewma_alpha``
        Smoothing of the per-tier duration estimate that drives the
        degradation ladder (1.0 = trust only the latest episode).

    Speculative pre-solving (see :mod:`repro.runtime.speculate`):

    ``speculate``
        Master switch: pre-solve likely next events during idle service
        steps and serve matching real events from the speculation cache
        (bit-identical to the on-demand repair, validated per claim).
        Requires ``coalesce`` — speculation predicts *deltas*, which only
        exist under coalescing admission.
    ``speculate_top_k``
        Pre-solve budget per idle step (also the deterministic stand-in
        for the pool's idle capacity, so the exact-gated counters never
        depend on the machine's worker count).
    ``speculate_cache``
        Cache capacity in pre-solved hints; the oldest entry is evicted
        (and counted as wasted work) beyond it.
    ``speculate_decay``
        EWMA decay of the per-GPU degradation priors built from the
        observed event stream (only used when no explicit
        :class:`~repro.runtime.speculate.SpeculationPolicy` is supplied).
    ``speculate_verify``
        Belt-and-braces mode: re-solve every served hint on demand and
        compare; a mismatch discards the hint (the fresh solve wins) and
        is recorded on the engine.  Defeats the latency win — for tests.
    """

    coalesce: bool = False
    debounce_window: float = 0.0
    debounce_limit: float = 0.0
    max_queue: int = 0
    expedite_failures: bool = True
    deadline: float = 0.0
    max_retries: int = 2
    retry_backoff: float = 1.0
    backoff_factor: float = 2.0
    ewma_alpha: float = 0.5
    speculate: bool = False
    speculate_top_k: int = 4
    speculate_cache: int = 16
    speculate_decay: float = 0.5
    speculate_verify: bool = False

    def __post_init__(self) -> None:
        if self.debounce_window < 0:
            raise ValueError("debounce_window must be >= 0")
        if self.debounce_limit < 0:
            raise ValueError("debounce_limit must be >= 0")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.deadline < 0:
            raise ValueError("deadline must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.speculate and not self.coalesce:
            raise ValueError("speculate requires coalesce (speculation "
                             "predicts deltas, which only exist under "
                             "coalescing admission)")
        if self.speculate_top_k < 1:
            raise ValueError("speculate_top_k must be >= 1")
        if self.speculate_cache < 1:
            raise ValueError("speculate_cache must be >= 1")
        if not 0.0 < self.speculate_decay <= 1.0:
            raise ValueError("speculate_decay must be in (0, 1]")


@dataclass
class _PendingEvent:
    """One queued (possibly merged) event awaiting a planning episode."""

    #: GPU -> latest submitted rate, relative to the system's current view
    #: (under coalescing each GPU appears in at most one queued entry).
    delta: Dict[int, float]
    first_submit: float
    last_update: float
    seq: int
    submissions: int = 1
    urgent: bool = False
    #: Pass-through mode keeps the submitted state verbatim so the wrapped
    #: system sees exactly what a direct caller would have handed it.
    state: Optional[ClusterState] = None
    attempts: int = 0
    retries: int = 0
    not_before: float = 0.0
    forced: bool = False


@dataclass
class ServiceRecord:
    """What one planning episode did (the service's event log)."""

    #: Sim time the episode ran at.
    processed_at: float
    #: Sim-time wait from the entry's first submission to the episode.
    queue_wait: float
    #: Wall-clock planning latency of the episode (0 for skipped ones).
    latency: float
    #: Raw submissions coalesced into this entry.
    submissions: int
    #: Degradation-ladder mode the episode ran under.
    mode: str
    #: Retry ordinal (0 = first attempt) and whether the deadline filter
    #: was bypassed because retries were exhausted.
    attempt: int
    forced: bool
    #: Whether the episode ran past its wall-clock budget (recorded
    #: post-hoc; the EWMA degrades future episodes instead of preempting).
    overrun: bool
    #: True while the event is still queued for a retry.
    deferred: bool
    adjustment: Adjustment

    @property
    def settled(self) -> bool:
        """The event left the queue (repaired, absorbed, or no-op)."""
        return not self.deferred


@dataclass
class ServiceStats:
    """Counters over the service's lifetime (all sim-clock driven)."""

    submitted: int = 0
    merged: int = 0
    shed: int = 0
    episodes: int = 0
    repairs: int = 0
    no_ops: int = 0
    degraded: int = 0
    skipped: int = 0
    deferrals: int = 0
    forced: int = 0
    overruns: int = 0
    tier_faults: int = 0
    faults: int = 0
    #: Speculation (see repro.runtime.speculate): repairs pre-solved
    #: during idle steps, pending predictions preempted by a real
    #: submission, real events served from the cache, hints discarded
    #: stale (plan/config changed or claim validation failed), pre-solved
    #: work that was never served, and speculative solves that raised.
    spec_presolves: int = 0
    spec_cancelled: int = 0
    spec_hits: int = 0
    spec_stale: int = 0
    spec_wasted: int = 0
    spec_faults: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class PlanningService:
    """Long-lived planning service around one :class:`MalleusSystem`.

    Parameters
    ----------
    system:
        The wrapped system; ``setup`` must have been called (or call
        :meth:`setup` here) before events are submitted.
    config:
        Service knobs (:class:`ServiceConfig`); defaults are pass-through.
    clock:
        Wall-clock source for planner budgets/latency measurement.
        Injectable so the fault harness can script deadline overruns.
    speculation_policy:
        Optional pre-seeded :class:`~repro.runtime.speculate.SpeculationPolicy`
        (e.g. built with ``SpeculationPolicy.from_scenario``); only
        consulted when ``config.speculate`` is on.  A default policy with
        ``config.speculate_decay`` is built otherwise.
    """

    def __init__(self, system: MalleusSystem,
                 config: Optional[ServiceConfig] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 speculation_policy: Optional[SpeculationPolicy] = None,
                 recorder=None):
        self.system = system
        self.config = config or ServiceConfig()
        self.clock = clock
        if recorder is not None:
            # Tape every planning episode the service drives (see
            # repro.whatif): the recorder hooks the wrapped system's
            # taps; the service only adds queue metadata per episode.
            recorder.attach(system)
        self.stats = ServiceStats()
        self.speculator: Optional[SpeculationEngine] = None
        if self.config.speculate:
            self.speculator = SpeculationEngine(
                system, self.stats,
                policy=speculation_policy or SpeculationPolicy(
                    decay=self.config.speculate_decay),
                top_k=self.config.speculate_top_k,
                capacity=self.config.speculate_cache,
                verify=self.config.speculate_verify,
                clock=clock,
            )
            system.speculation = self.speculator
        self.records: List[ServiceRecord] = []
        self._queue: List[_PendingEvent] = []
        self._seq = 0
        #: The latest rates the service has *seen* (submitted), which may
        #: run ahead of the system's ``current_rates`` while entries wait.
        self._seen: Dict[int, float] = dict(system.current_rates)
        #: Wall-clock EWMA per degradation mode, None until first sample.
        self._mode_seconds: Dict[str, Optional[float]] = {
            MODE_FULL: None, MODE_REBALANCE_ONLY: None,
        }
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def setup(self, state: ClusterState) -> None:
        """Initialise the wrapped system (first plan) and sync the view."""
        self.system.setup(state)
        self._seen = dict(self.system.current_rates)

    def close(self) -> None:
        """Release the wrapped planner's worker pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.system.planner.sweep_executor.close()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, state: ClusterState, now: float = 0.0) -> None:
        """Admit one observed situation at sim time ``now``.

        Pass-through mode queues the state verbatim (FIFO, one episode
        per submission).  Coalescing mode reduces it to a per-GPU delta
        against the service's latest view and merges it into the queue
        under the disjointness invariant.
        """
        self.stats.submitted += 1
        if not self.config.coalesce:
            self._queue.append(_PendingEvent(
                delta={}, first_submit=now, last_update=now,
                seq=self._next_seq(), state=state,
            ))
            return
        rates = state.rate_map()
        delta = {
            gpu: rate for gpu, rate in rates.items()
            if rate != self._seen.get(gpu)
        }
        self._seen.update(rates)
        if not delta:
            return
        if self.speculator is not None:
            # Feed the priors and preempt pending speculative work — a
            # real event always wins the pool.
            self.speculator.observe_submission(delta)
        urgent = any(math.isinf(rate) for rate in delta.values())
        touched = set(delta)
        overlapping = [e for e in self._queue if touched & set(e.delta)]
        limit = self.config.debounce_limit
        if limit > 0:
            # An entry older than the hard age cap is already *due*: the
            # very next pump is committed to processing it.  Merging a
            # fresh burst into it would mutate that batch at the last
            # instant (and grant the new delta a repair it has not aged
            # into), so sealed entries stop accepting merges and the new
            # delta opens its own entry.  The disjointness invariant is
            # kept among *open* entries; a sealed entry always carries a
            # lower seq, so it still processes first.
            overlapping = [
                e for e in overlapping if now - e.first_submit < limit
            ]
        if overlapping:
            target = min(overlapping, key=lambda e: e.seq)
            for other in overlapping:
                if other is target:
                    continue
                self._merge_entries(target, other)
                self._queue.remove(other)
            target.delta.update(delta)
            target.last_update = now
            target.submissions += 1
            target.urgent = target.urgent or urgent
            self.stats.merged += 1
        else:
            self._queue.append(_PendingEvent(
                delta=delta, first_submit=now, last_update=now,
                seq=self._next_seq(), urgent=urgent,
            ))
        self._enforce_queue_bound()

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _merge_entries(self, target: _PendingEvent,
                       other: _PendingEvent) -> None:
        """Fold ``other`` into ``target`` (rates supersede by recency)."""
        if other.last_update >= target.last_update:
            target.delta.update(other.delta)
        else:
            merged = dict(other.delta)
            merged.update(target.delta)
            target.delta = merged
        target.first_submit = min(target.first_submit, other.first_submit)
        target.last_update = max(target.last_update, other.last_update)
        target.seq = min(target.seq, other.seq)
        target.submissions += other.submissions
        target.urgent = target.urgent or other.urgent
        target.forced = target.forced or other.forced
        target.attempts = max(target.attempts, other.attempts)
        target.retries = max(target.retries, other.retries)
        target.not_before = min(target.not_before, other.not_before)

    def _enforce_queue_bound(self) -> None:
        bound = self.config.max_queue
        if bound <= 0:
            return
        while len(self._queue) > bound:
            ordered = sorted(self._queue, key=lambda e: e.seq)
            oldest, second = ordered[0], ordered[1]
            self._merge_entries(oldest, second)
            self._queue.remove(second)
            self.stats.shed += 1

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def pump(self, now: float = 0.0) -> List[ServiceRecord]:
        """Run one planning episode per *eligible* queued entry.

        Entries are processed oldest-first; an episode that defers keeps
        its entry queued (with backoff applied) for a later pump.
        Returns the episode records produced by this call.
        """
        produced: List[ServiceRecord] = []
        for entry in sorted(self._queue, key=lambda e: e.seq):
            if not self._eligible(entry, now):
                continue
            produced.append(self._process(entry, now))
        if self.speculator is not None and \
                not any(self._eligible(e, now) for e in self._queue):
            # The step is idle (nothing left to plan right now): spend it
            # pre-solving likely next events.  Debounced entries still in
            # the queue are the best predictions of all — their deltas
            # (and flap-toggled variants) are what the next pumps will
            # process.
            self.speculator.idle_step([
                dict(e.delta)
                for e in sorted(self._queue, key=lambda e: e.seq)
                if not e.urgent
            ])
        return produced

    def drain(self, now: float = 0.0) -> List[ServiceRecord]:
        """Flush the queue completely: every event repairs or is forced.

        Debounce, backoff and the deadline ladder's retry budget are all
        overridden — a deferred event retries immediately and is forced
        once its retries run out — so after ``drain`` the queue is empty
        and every admitted event is accounted for in :attr:`records`.
        """
        produced: List[ServiceRecord] = []
        while self._queue:
            entry = min(self._queue, key=lambda e: e.seq)
            record = self._process(entry, now)
            produced.append(record)
            if record.deferred and entry in self._queue:
                entry.not_before = now
                if entry.retries > self.config.max_retries:
                    entry.forced = True
        return produced

    def _eligible(self, entry: _PendingEvent, now: float) -> bool:
        if entry not in self._queue:
            return False  # merged away by a just-processed sibling
        if now < entry.not_before:
            return False
        if entry.forced:
            return True
        if entry.urgent and self.config.expedite_failures:
            return True
        window = self.config.debounce_window
        if window <= 0:
            return True
        if now - entry.last_update >= window:
            return True
        limit = self.config.debounce_limit
        return limit > 0 and now - entry.first_submit >= limit

    def _choose_mode(self, entry: _PendingEvent) -> str:
        """Pick the degradation-ladder rung for this attempt."""
        deadline = self.config.deadline
        if deadline <= 0 or entry.urgent or entry.forced:
            return MODE_FULL
        full = self._mode_seconds[MODE_FULL]
        if full is None or full <= deadline:
            return MODE_FULL
        warm = self._mode_seconds[MODE_REBALANCE_ONLY]
        if warm is None or warm <= deadline:
            return MODE_REBALANCE_ONLY
        return MODE_SKIPPED

    def _observe_duration(self, mode: str, seconds: float) -> None:
        alpha = self.config.ewma_alpha
        prior = self._mode_seconds.get(mode)
        if prior is None:
            self._mode_seconds[mode] = seconds
        else:
            self._mode_seconds[mode] = alpha * seconds + (1 - alpha) * prior

    def _entry_state(self, entry: _PendingEvent) -> ClusterState:
        if entry.state is not None:
            return entry.state
        rates = dict(self.system.current_rates)
        rates.update(entry.delta)
        return ClusterState(self.system.cluster, rates)

    def _process(self, entry: _PendingEvent, now: float) -> ServiceRecord:
        mode = self._choose_mode(entry)
        entry.attempts += 1
        self.stats.episodes += 1
        state = self._entry_state(entry)
        recorder = self.system.recorder
        taped_before = recorder.num_events if recorder is not None else 0
        overrun = False
        latency = 0.0
        if mode == MODE_SKIPPED:
            self.stats.skipped += 1
            adjustment = Adjustment(
                kind="deferred", repair_tier=TIER_DEFERRED,
                description="deadline ladder: no tier predicted to fit",
            )
        else:
            force = entry.attempts > 1
            began = self.clock()
            hint: Optional[RepairHint] = None
            if self.speculator is not None and mode == MODE_FULL \
                    and entry.state is None:
                # Degraded (rebalance-only) episodes never claim: hints
                # are pre-solved with the full engine, and the claim's
                # input validation would reject the mismatch anyway.
                # Inside the timed window — the cache lookup is part of
                # the event's true latency.
                hint = self.speculator.hint_for(state.rate_map())
            if hint is not None:
                self.system._repair_hint = hint
            try:
                adjustment = self.system.on_situation_change(
                    state, rebalance_only=(mode == MODE_REBALANCE_ONLY),
                    force=force,
                )
            except Exception as exc:
                # A planning episode that raises (full-planner exception,
                # injected fault) must never take the service down: the
                # incumbent plan stays in force and the event is deferred
                # for a retry — a recorded degradation, not a crash.
                self.stats.faults += 1
                adjustment = Adjustment(
                    kind="deferred", repair_tier=TIER_DEFERRED,
                    tier_errors=[f"episode raised: {exc!r}"],
                    description=f"planning episode raised: {exc!r}",
                )
            finally:
                self.system._repair_hint = None
            latency = max(0.0, self.clock() - began)
            if hint is not None:
                self.speculator.note_outcome(hint)
            self._observe_duration(mode, latency)
            deadline = self.config.deadline
            overrun = deadline > 0 and latency > deadline
            if overrun:
                self.stats.overruns += 1
            if mode == MODE_REBALANCE_ONLY:
                self.stats.degraded += 1
            self.stats.tier_faults += len(adjustment.tier_errors)
        deferred = adjustment.kind == "deferred"
        terminal_deferral = deferred and entry.forced
        if terminal_deferral:
            # Even the forced attempt could not repair (it raised again,
            # or the engine found the plan untouchable): settle with the
            # incumbent plan kept and the deferral on the record — nothing
            # retries forever, nothing is silently dropped.
            deferred = False
        if deferred:
            self.stats.deferrals += 1
            entry.retries += 1
            backoff = self.config.retry_backoff * (
                self.config.backoff_factor ** (entry.retries - 1))
            entry.not_before = now + backoff
            if entry.retries > self.config.max_retries:
                entry.forced = True
                self.stats.forced += 1
        else:
            if terminal_deferral:
                self.stats.deferrals += 1
                self.stats.no_ops += 1
            elif adjustment.kind in ("migrate", "replan", "restart"):
                self.stats.repairs += 1
            else:
                self.stats.no_ops += 1
            self._queue.remove(entry)
        record = ServiceRecord(
            processed_at=now,
            queue_wait=max(0.0, now - entry.first_submit),
            latency=latency,
            submissions=entry.submissions,
            mode=mode,
            attempt=entry.attempts - 1,
            forced=entry.forced and not deferred,
            overrun=overrun,
            deferred=deferred,
            adjustment=adjustment,
        )
        self.records.append(record)
        if recorder is not None and recorder.num_events > taped_before:
            # Only annotate when the episode actually reached the system
            # (skipped episodes and raising episodes tape nothing).
            recorder.note_service_record(record)
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Entries still queued (awaiting debounce, backoff, or a pump)."""
        return len(self._queue)

    def latency_percentiles(self, qs=(50.0, 99.0)) -> Dict[str, float]:
        """Wall-clock planning-latency percentiles over settled episodes."""
        values = [r.latency for r in self.records if r.mode != MODE_SKIPPED]
        return {f"p{q:g}": percentile(values, q) for q in qs}

    def queue_wait_percentiles(self, qs=(50.0, 99.0)) -> Dict[str, float]:
        """Sim-clock queue-wait percentiles over *settled* episodes."""
        values = [r.queue_wait for r in self.records if r.settled]
        return {f"p{q:g}": percentile(values, q) for q in qs}
