"""Speculative repair: idle-step pre-solving of likely next events.

The PR-6 :class:`~repro.runtime.service.PlanningService` made planning a
long-lived service, but every event still pays its full solve *after* it
arrives.  Production straggler streams are predictable enough to do
better: the same GPU flaps between the same two rates for minutes, a
recovered thermal throttler relapses, and the service's own debounced
queue literally holds the deltas it is about to process.  This module
pre-solves those likely next events during idle service steps so a real
event that matches a prediction is served in microseconds-to-low-ms by
*materializing* the stored winner instead of re-solving.

Three pieces:

:class:`SpeculationPolicy`
    Per-GPU degradation priors fed by the observed event stream (every
    admitted delta) and optionally seeded from the generative scenario
    processes (:func:`~repro.cluster.scenarios.degradation_priors`).
    ``predict`` ranks candidate next deltas: the queued entries
    themselves, per-GPU *toggled* variants of them (a flapping GPU's
    next submission flips the rate the queue currently holds — the
    debounce limit processes such entries the same tick their delta
    flips, so only the toggled prediction can hit), and prior-driven
    single-GPU recovery/relapse deltas.

:class:`RepairHint`
    One pre-solved repair, keyed on the canonicalized delta against the
    rates it was solved from and anchored to the *identity* of the
    incumbent :class:`~repro.core.planner.PlanContext` plus the cost
    model's config fingerprint.  ``claim`` re-validates every input of
    the solve — same context object, same full rate map, same ``dp``
    constraint, same ``rebalance_only`` flag, same config — so a served
    hint is *by construction* the same
    :class:`~repro.runtime.replan.ReplanEngine` call the on-demand
    repair would have made (the engine is deterministic in those inputs;
    the PR-5 warm-cache contract guarantees cache state only changes
    speed, never the chosen plan).  Anything less than full validation
    discards the hint and the event solves normally.

:class:`SpeculationEngine`
    The cache + scheduler: invalidates stale hints on every applied plan
    or config change, regenerates predictions from the current incumbent
    and the service queue, pre-solves up to ``top_k`` per idle step, and
    hands hints to the service's episode path.  Real submissions preempt
    the speculative queue (pending predictions are cancelled, never a
    real event's solve).

Everything here is driven by the service's deterministic sim clock and
counts integer events only, so the speculative arm of the service-latency
benchmark gates bit-exactly.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Canonical delta: sorted ``(gpu, rate)`` pairs that differ from a base.
DeltaKey = Tuple[Tuple[int, float], ...]

SOURCE_QUEUED = "queued"
SOURCE_ADVANCE = "advance"
SOURCE_TOGGLE = "toggle"
SOURCE_RECOVERY = "recovery"
SOURCE_RELAPSE = "relapse"


def canonical_delta(base: Dict[int, float],
                    rates: Dict[int, float]) -> DeltaKey:
    """Canonical per-GPU delta of ``rates`` against ``base``.

    Only GPUs whose rate actually differs appear (a flap back to the base
    rate cancels out), sorted by GPU id so equal effective deltas compare
    equal regardless of submission order.  A GPU present in ``base`` but
    missing from ``rates`` is a membership change; it is encoded as an
    infinite entry so such keys can never match a speculative prediction
    (predictions never carry infinities).
    """
    items = [
        (gpu, rate) for gpu, rate in rates.items()
        if base.get(gpu) != rate
    ]
    for gpu in base:
        if gpu not in rates:
            items.append((gpu, math.inf))
    items.sort()
    return tuple(items)


def outcomes_equal(a, b) -> bool:
    """Bit-identity of two :class:`~repro.runtime.replan.RepairOutcome`\\ s.

    Used by the opt-in verify mode: the served outcome must match a fresh
    on-demand repair in kind, tier, feasibility, chosen plan (structural
    dataclass equality, which bottoms out in exact float compares) and
    estimated step time.
    """
    if (a.event_kind, a.repair_tier) != (b.event_kind, b.repair_tier):
        return False
    ra, rb = a.result, b.result
    if ra is None or rb is None:
        return ra is rb
    if ra.feasible != rb.feasible:
        return False
    if ra.plan is None or rb.plan is None:
        return ra.plan is rb.plan
    return (
        ra.plan == rb.plan
        and ra.estimated_step_time == rb.estimated_step_time
    )


@dataclass
class GpuPrior:
    """Degradation history of one GPU (fed by the admitted delta stream)."""

    #: Recency-decayed event mass (EWMA bump per observed delta).
    weight: float = 0.0
    #: Raw deltas observed for this GPU.
    events: int = 0
    #: Healthy <-> degraded direction changes (flap evidence).
    flips: int = 0
    #: Last finite degraded rate seen (> 1), for relapse/toggle guesses.
    last_degraded: Optional[float] = None
    #: "healthy" / "degraded" / "failed" — last observed direction.
    last_direction: str = ""
    #: Most recently observed rate (transition-map bookkeeping).
    last_rate: Optional[float] = None
    #: The distinct rate observed before :attr:`last_rate` — a flapping
    #: GPU's next rate is usually the one it just left.
    prev_rate: Optional[float] = None
    #: Observed rate transitions: rate -> {next rate -> count}.  A
    #: flapping GPU's stream is near-deterministic here (1.9 -> 1.0 ->
    #: 1.9 -> ...), including flaps between two *degraded* rates that a
    #: plain healthy/degraded toggle cannot express.
    successors: Dict[float, Dict[float, int]] = field(default_factory=dict)


@dataclass(frozen=True)
class Prediction:
    """One ranked candidate next event."""

    key: DeltaKey
    score: float
    source: str


class SpeculationPolicy:
    """Ranks likely next events from priors + the live service queue.

    ``recovery_bias`` / ``relapse_bias`` scale the prior-driven guesses;
    :meth:`from_scenario` seeds them from a generative scenario config's
    process mix (:func:`~repro.cluster.scenarios.degradation_priors`).
    All ranking is deterministic: candidates sort by ``(-score, key)``.
    """

    def __init__(self, decay: float = 0.5, recovery_bias: float = 1.0,
                 relapse_bias: float = 1.0):
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay
        self.recovery_bias = recovery_bias
        self.relapse_bias = relapse_bias
        self.priors: Dict[int, GpuPrior] = {}

    @classmethod
    def from_scenario(cls, config, decay: float = 0.5) -> "SpeculationPolicy":
        """Seed the recovery/relapse biases from a scenario's process mix."""
        from ..cluster.scenarios import degradation_priors

        priors = degradation_priors(config)
        return cls(
            decay=decay,
            recovery_bias=priors["recovery_bias"],
            relapse_bias=priors["relapse_bias"],
        )

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def observe(self, delta: Dict[int, float]) -> None:
        """Fold one admitted per-GPU delta into the priors."""
        for gpu, rate in delta.items():
            prior = self.priors.setdefault(gpu, GpuPrior())
            prior.events += 1
            prior.weight = prior.weight * self.decay + 1.0
            if math.isinf(rate):
                prior.last_direction = "failed"
                prior.last_rate = None
                prior.prev_rate = None
                continue
            if prior.last_rate is not None and prior.last_rate != rate:
                nexts = prior.successors.setdefault(prior.last_rate, {})
                nexts[rate] = nexts.get(rate, 0) + 1
                prior.prev_rate = prior.last_rate
            prior.last_rate = rate
            direction = "degraded" if rate > 1.0 else "healthy"
            if rate > 1.0:
                prior.last_degraded = rate
            if prior.last_direction in ("healthy", "degraded") \
                    and direction != prior.last_direction:
                prior.flips += 1
            prior.last_direction = direction

    def toggle(self, gpu: int, rate: float) -> Optional[float]:
        """The flap counterpart of ``rate`` for this GPU, if known."""
        if rate > 1.0:
            return 1.0
        prior = self.priors.get(gpu)
        return prior.last_degraded if prior is not None else None

    def predicted_next(self, gpu: int, rate: float) -> Optional[float]:
        """Most likely next rate of this GPU given it currently runs at
        ``rate``: the most frequent observed successor (ties broken by
        the smaller rate, deterministically), falling back to the
        healthy/degraded toggle when no transition was ever recorded."""
        prior = self.priors.get(gpu)
        if prior is not None:
            nexts = prior.successors.get(rate)
            if nexts:
                return min(nexts.items(), key=lambda kv: (-kv[1], kv[0]))[0]
            if prior.prev_rate is not None and prior.prev_rate != rate:
                # No transition out of this rate ever observed (first
                # visit): a flapper most likely bounces back to the rate
                # it just left.
                return prior.prev_rate
        return self.toggle(gpu, rate)

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def predict(self, base: Dict[int, float],
                queued_deltas: Sequence[Dict[int, float]],
                limit: int) -> List[Prediction]:
        """Top-``limit`` candidate next deltas against ``base``.

        Queued entries score highest (they *will* be processed), their
        toggled flap variants next, prior-driven recovery/relapse guesses
        last (scaled by the decayed per-GPU weight and the scenario
        biases).  Deltas carrying infinities never qualify — failures
        bypass the repair engine entirely.
        """
        candidates: Dict[DeltaKey, Prediction] = {}

        def consider(delta: Dict[int, float], score: float,
                     source: str) -> None:
            if any(math.isinf(rate) for rate in delta.values()):
                return
            merged = dict(base)
            merged.update(delta)
            key = canonical_delta(base, merged)
            if not key:
                return
            best = candidates.get(key)
            if best is None or score > best.score:
                candidates[key] = Prediction(key=key, score=score,
                                             source=source)

        for delta in queued_deltas:
            consider(delta, 100.0, SOURCE_QUEUED)
            # Advance variant: every GPU in the delta steps to its most
            # likely next rate *simultaneously*.  Generated flap processes
            # share epoch parity, so co-flapping GPUs flip together — the
            # debounce limit then processes the entry the same tick its
            # delta flips, and only this variant can hit.
            advanced = {}
            for gpu, rate in delta.items():
                nxt = None if math.isinf(rate) \
                    else self.predicted_next(gpu, rate)
                advanced[gpu] = rate if nxt is None else nxt
            consider(advanced, 95.0, SOURCE_ADVANCE)
            for gpu, rate in sorted(delta.items()):
                if math.isinf(rate):
                    continue
                flipped = self.predicted_next(gpu, rate)
                if flipped is None or flipped == rate:
                    continue
                variant = dict(delta)
                variant[gpu] = flipped
                consider(variant, 90.0, SOURCE_TOGGLE)
        for gpu, prior in sorted(self.priors.items()):
            if prior.last_direction == "failed" or prior.weight <= 0.0:
                continue
            current = base.get(gpu)
            if current is None:
                continue
            if current > 1.0 and not math.isinf(current):
                consider({gpu: 1.0}, self.recovery_bias * prior.weight,
                         SOURCE_RECOVERY)
            elif current == 1.0 and prior.last_degraded is not None:
                consider({gpu: prior.last_degraded},
                         self.relapse_bias * prior.weight, SOURCE_RELAPSE)
        ordered = sorted(candidates.values(),
                         key=lambda p: (-p.score, p.key))
        return ordered[:limit]


@dataclass
class RepairHint:
    """One pre-solved repair awaiting (or past) its matching real event."""

    key: DeltaKey
    #: Identity anchor: the incumbent PlanContext the repair was solved
    #: against.  Compared with ``is`` — any applied plan replaces the
    #: context object, which is exactly the staleness signal.
    context: object
    #: The full rate map the repair was solved from.
    rates: Dict[int, float]
    dp: Optional[int]
    rebalance_only: bool
    config_fingerprint: tuple
    #: The stored :class:`~repro.runtime.replan.RepairOutcome` winner.
    outcome: object
    #: Pre-computed migration downtime charge for the repaired plan
    #: (``None`` when the repair keeps the incumbent plan).  A pure
    #: function of the incumbent plan (pinned by :attr:`context`), the
    #: repaired plan and :attr:`rates`, so a served hit reuses it instead
    #: of paying the migration diff on the event's critical path.
    charge: object = None
    presolve_seconds: float = 0.0
    verify: bool = False
    source: str = ""
    score: float = 0.0
    served: bool = False
    discarded: str = ""

    def claim(self, context, rates: Dict[int, float], dp: Optional[int],
              rebalance_only: bool, cost_model) -> bool:
        """Validate every input of the solve; serve only on exact match.

        This is the bit-identity contract: a claim succeeds exactly when
        the on-demand call ``repair(context, rates, dp, rebalance_only)``
        the caller is about to make has the same inputs as the
        speculative call that produced :attr:`outcome` — the engine is
        deterministic in those inputs, so serving the stored outcome *is*
        the on-demand repair, minus the solve latency.
        """
        if context is not self.context:
            self.discarded = "incumbent context changed"
        elif dp != self.dp:
            self.discarded = "dp constraint changed"
        elif rebalance_only != self.rebalance_only:
            self.discarded = "rebalance_only mismatch"
        elif cost_model.config_fingerprint() != self.config_fingerprint:
            self.discarded = "cost-model config changed"
        elif rates != self.rates:
            self.discarded = "rates mismatch"
        else:
            self.served = True
            return True
        return False


class SpeculationEngine:
    """Speculation cache + idle-step scheduler for one wrapped system.

    Owned by the :class:`~repro.runtime.service.PlanningService`; shares
    its :class:`~repro.runtime.service.ServiceStats` so the counters land
    in the same exact-gated dict as the rest of the service telemetry.
    """

    def __init__(self, system, stats, policy: Optional[SpeculationPolicy]
                 = None, top_k: int = 4, capacity: int = 16,
                 verify: bool = False,
                 clock: Callable[[], float] = time.perf_counter):
        self.system = system
        self.stats = stats
        self.policy = policy or SpeculationPolicy()
        self.top_k = top_k
        self.capacity = capacity
        self.verify = verify
        self.clock = clock
        #: Wall seconds spent pre-solving (off the event critical path).
        self.presolve_seconds = 0.0
        #: Keys whose served outcome failed the opt-in verify re-solve.
        self.verify_failures: List[DeltaKey] = []
        self._cache: Dict[DeltaKey, RepairHint] = {}
        self._pending: List[Prediction] = []

    # ------------------------------------------------------------------
    # Event-stream hooks
    # ------------------------------------------------------------------
    def observe_submission(self, delta: Dict[int, float]) -> None:
        """A real submission arrived: learn from it, preempt speculation."""
        self.policy.observe(delta)
        if self._pending:
            self.stats.spec_cancelled += len(self._pending)
            self._pending = []

    def invalidate_stale(self) -> None:
        """Drop hints solved against a superseded incumbent or config."""
        context = self.system.plan_context
        fingerprint = self.system.cost_model.config_fingerprint()
        stale = [
            key for key, hint in self._cache.items()
            if hint.context is not context
            or hint.config_fingerprint != fingerprint
        ]
        for key in stale:
            del self._cache[key]
            self.stats.spec_stale += 1
            self.stats.spec_wasted += 1

    # ------------------------------------------------------------------
    # Idle pre-solving
    # ------------------------------------------------------------------
    def idle_step(self, queued_deltas: Sequence[Dict[int, float]]) -> int:
        """One idle service step: refresh predictions, pre-solve a few.

        At most ``top_k`` repairs are solved per call (an idle step must
        stay short — the next pump may carry a real event); predictions
        beyond the budget stay pending and are cancelled by the next real
        submission.  Returns the number of pre-solves issued.
        """
        system = self.system
        if not system.incremental or system.plan_context is None:
            return 0
        self.invalidate_stale()
        base = system.current_rates
        predictions = self.policy.predict(
            base, queued_deltas, limit=max(self.capacity, self.top_k),
        )
        fresh = [p for p in predictions if p.key not in self._cache]
        solved = 0
        for prediction in fresh:
            if solved >= self.top_k:
                break
            solved += 1
            hint = self._presolve(prediction, base)
            if hint is not None:
                self._store(hint)
        self._pending = fresh[solved:]
        return solved

    def _presolve(self, prediction: Prediction,
                  base: Dict[int, float]) -> Optional[RepairHint]:
        system = self.system
        rates = dict(base)
        rates.update(dict(prediction.key))
        dp = system._dp_degree if system.keep_dp_degree else None
        context = system.plan_context
        fingerprint = system.cost_model.config_fingerprint()
        self.stats.spec_presolves += 1
        began = self.clock()
        try:
            outcome = system.replan_engine.repair(
                context, rates, dp=dp, rebalance_only=False,
            )
        except Exception:
            # A speculative solve is allowed to die (injected fault,
            # solver bug): no real event depends on it yet, so the only
            # effect is a counter — never a lost or corrupted plan.
            self.stats.spec_faults += 1
            return None
        charge = self._precompute_charge(outcome, rates)
        seconds = max(0.0, self.clock() - began)
        self.presolve_seconds += seconds
        return RepairHint(
            key=prediction.key, context=context, rates=rates, dp=dp,
            rebalance_only=False, config_fingerprint=fingerprint,
            outcome=outcome, charge=charge, presolve_seconds=seconds,
            verify=self.verify, source=prediction.source,
            score=prediction.score,
        )

    def _precompute_charge(self, outcome, rates: Dict[int, float]):
        """Migration charge of the pre-solved plan, when it would migrate.

        Mirrors the plan-changed predicate of ``on_situation_change``
        exactly; the charge itself comes from the system's own
        ``migration_charge`` so serving reuses the identical pure
        computation.
        """
        system = self.system
        result = getattr(outcome, "result", None)
        if result is None or not result.feasible or result.plan is None \
                or system.plan is None:
            return None
        plan = system.plan
        changed = (
            result.plan.stage_shape() != plan.stage_shape()
            or result.plan.micro_batches() != plan.micro_batches()
            or result.plan.active_gpus != plan.active_gpus
        )
        if not changed:
            return None
        try:
            return system.migration_charge(result.plan, rates)
        except Exception:
            # Charge pre-computation is an optimisation only: the served
            # episode recomputes it when missing.
            self.stats.spec_faults += 1
            return None

    def _store(self, hint: RepairHint) -> None:
        self._cache[hint.key] = hint
        while len(self._cache) > self.capacity:
            oldest = next(iter(self._cache))
            del self._cache[oldest]
            self.stats.spec_wasted += 1

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def hint_for(self, rates: Dict[int, float]) -> Optional[RepairHint]:
        """Pop the hint matching ``rates``'s effective delta, if cached."""
        key = canonical_delta(self.system.current_rates, rates)
        if not key:
            return None
        return self._cache.pop(key, None)

    def note_outcome(self, hint: RepairHint) -> None:
        """Account for a popped hint after its episode ran."""
        if hint.served:
            self.stats.spec_hits += 1
        else:
            self.stats.spec_stale += 1
            self.stats.spec_wasted += 1
            if hint.discarded == "verify mismatch":
                self.verify_failures.append(hint.key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Deterministic integer counters (safe to gate exactly)."""
        return {
            "cached": len(self._cache),
            "pending": len(self._pending),
            "presolves": self.stats.spec_presolves,
            "cancelled": self.stats.spec_cancelled,
            "hits": self.stats.spec_hits,
            "stale": self.stats.spec_stale,
            "wasted": self.stats.spec_wasted,
            "faults": self.stats.spec_faults,
            "verify_failures": len(self.verify_failures),
        }
