"""Execution simulator: pipelines, communication, memory, restarts, traces."""

from .comm import (
    COLLECTIVE_LATENCY,
    P2P_LATENCY,
    ActivationMessage,
    allgather_time,
    allreduce_time,
    p2p_time,
    reduce_scatter_time,
)
from .executor import (
    STEP_OVERHEAD,
    ExecutionSimulator,
    MigrationCharge,
    StepResult,
)
from .memory import MemoryReport, plan_memory_report
from .pipeline import (
    FORWARD_FRACTION,
    PipelineScheduleResult,
    StageWork,
    analytic_1f1b_time,
    simulate_1f1b,
    split_fwd_bwd,
)
from .restart import (
    RestartCostConfig,
    checkpoint_bytes,
    checkpoint_load_time,
    checkpoint_save_time,
    restart_time,
)
from .session import (
    Adjustment,
    SituationResult,
    TraceRunResult,
    TrainingFramework,
    run_trace,
    theoretic_optimal_step_time,
)

__all__ = [
    "ActivationMessage",
    "Adjustment",
    "COLLECTIVE_LATENCY",
    "ExecutionSimulator",
    "FORWARD_FRACTION",
    "MemoryReport",
    "MigrationCharge",
    "P2P_LATENCY",
    "PipelineScheduleResult",
    "RestartCostConfig",
    "STEP_OVERHEAD",
    "SituationResult",
    "StageWork",
    "StepResult",
    "TraceRunResult",
    "TrainingFramework",
    "allgather_time",
    "allreduce_time",
    "analytic_1f1b_time",
    "checkpoint_bytes",
    "checkpoint_load_time",
    "checkpoint_save_time",
    "p2p_time",
    "plan_memory_report",
    "reduce_scatter_time",
    "restart_time",
    "run_trace",
    "simulate_1f1b",
    "split_fwd_bwd",
    "theoretic_optimal_step_time",
]
