"""Analytic communication time models.

All collectives use the standard ring-algorithm cost model: an all-reduce of
``V`` bytes over ``n`` devices costs ``2 (n-1)/n * V / bw``, reduce-scatter
and all-gather each cost ``(n-1)/n * V / bw``, and a point-to-point send of
``V`` bytes costs ``V / bw`` plus a small latency term.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-collective launch latency in seconds (kernel launch + NCCL overhead).
COLLECTIVE_LATENCY = 20.0e-6

#: Per point-to-point message latency in seconds.
P2P_LATENCY = 10.0e-6


def allreduce_time(volume_bytes: float, num_devices: int, bandwidth: float) -> float:
    """Ring all-reduce time of ``volume_bytes`` over ``num_devices``."""
    if num_devices <= 1 or volume_bytes <= 0:
        return 0.0
    factor = 2.0 * (num_devices - 1) / num_devices
    return factor * volume_bytes / bandwidth + COLLECTIVE_LATENCY


def reduce_scatter_time(volume_bytes: float, num_devices: int,
                        bandwidth: float) -> float:
    """Ring reduce-scatter time of ``volume_bytes`` over ``num_devices``."""
    if num_devices <= 1 or volume_bytes <= 0:
        return 0.0
    factor = (num_devices - 1) / num_devices
    return factor * volume_bytes / bandwidth + COLLECTIVE_LATENCY


def allgather_time(volume_bytes: float, num_devices: int, bandwidth: float) -> float:
    """Ring all-gather time of ``volume_bytes`` over ``num_devices``."""
    return reduce_scatter_time(volume_bytes, num_devices, bandwidth)


def p2p_time(volume_bytes: float, bandwidth: float) -> float:
    """Point-to-point transfer time of ``volume_bytes``."""
    if volume_bytes <= 0:
        return 0.0
    return volume_bytes / bandwidth + P2P_LATENCY


@dataclass(frozen=True)
class ActivationMessage:
    """The activation tensor exchanged between adjacent pipeline stages."""

    micro_batch_size: int
    seq_length: int
    hidden_size: int
    bytes_per_element: float = 2.0

    @property
    def num_bytes(self) -> float:
        """Size of the message in bytes."""
        return (
            self.micro_batch_size * self.seq_length * self.hidden_size
            * self.bytes_per_element
        )
