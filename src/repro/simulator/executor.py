"""Step-time simulation of a parallelization plan under straggling rates.

This is the reproduction's substitute for the Hetu executor: given a plan,
the per-GPU straggling rates and the cluster, it simulates one training
step — the 1F1B pipeline schedule of every pipeline (with point-to-point
activation transfers), the ZeRO-1 gradient reduce-scatter / parameter
all-gather across pipelines, and the optimizer step — and returns the step
time plus diagnostic details.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.topology import Cluster
from ..core.costmodel import MalleusCostModel
from ..parallel.migration import MigrationPlan, link_times
from ..parallel.plan import ParallelizationPlan, PipelinePlan
from .comm import ActivationMessage, allgather_time, p2p_time, reduce_scatter_time
from .memory import MemoryReport, plan_memory_report
from .pipeline import PipelineScheduleResult, StageWork, simulate_1f1b

#: Fixed per-step overhead (data loading, optimizer housekeeping), seconds.
STEP_OVERHEAD = 0.05


@dataclass
class StepResult:
    """Outcome of simulating one training step."""

    step_time: float
    pipeline_times: List[float] = field(default_factory=list)
    grad_sync_time: float = 0.0
    memory: Optional[MemoryReport] = None
    schedules: List[PipelineScheduleResult] = field(default_factory=list)

    @property
    def slowest_pipeline(self) -> int:
        """Index of the slowest pipeline."""
        if not self.pipeline_times:
            return -1
        return max(range(len(self.pipeline_times)),
                   key=lambda i: self.pipeline_times[i])


@dataclass
class MigrationCharge:
    """Downtime accounting of one model-state migration.

    Replaces the old single-scalar charge: every fused (src, dst) batch is
    costed on its own link and the serialisation happens per GPU, so the
    report can name the bottleneck and the per-GPU busy times instead of a
    single magic number.

    ``total_seconds`` is the downtime actually charged.  With overlapped
    migration (a positive ``hideable_seconds`` window) it is the *exposed
    tail* — ``max(0, drain_time - window)`` — while ``drain_seconds``
    keeps the full stop-the-world drain time and ``hidden_seconds`` the
    portion hidden under concurrent training at the old plan.
    """

    total_seconds: float = 0.0
    total_bytes: float = 0.0
    num_transfers: int = 0
    per_gpu_seconds: Dict[int, float] = field(default_factory=dict)
    #: Full (non-overlapped) drain time of the bottleneck link.
    drain_seconds: float = 0.0
    #: Drain time hidden under concurrent training (0 without overlap).
    hidden_seconds: float = 0.0

    @property
    def bottleneck_gpu(self) -> int:
        """GPU whose ingress/egress link bounds the migration (-1: none)."""
        if not self.per_gpu_seconds:
            return -1
        return max(self.per_gpu_seconds,
                   key=lambda g: (self.per_gpu_seconds[g], -g))


class ExecutionSimulator:
    """Simulates training steps of arbitrary (non-uniform) plans."""

    def __init__(self, cost_model: MalleusCostModel,
                 step_overhead: float = STEP_OVERHEAD):
        self.cost_model = cost_model
        self.cluster: Cluster = cost_model.cluster
        self.model = cost_model.model
        self.step_overhead = step_overhead

    # ------------------------------------------------------------------
    def stage_work(self, pipeline: PipelinePlan, stage_index: int,
                   rates: Dict[int, float],
                   micro_batch_size: int) -> StageWork:
        """Per-micro-batch work of one stage under the given rates."""
        stage = pipeline.stages[stage_index]
        group_rates = [rates.get(g, 1.0) for g in stage.gpu_ids]
        y = self.cost_model.group_straggling_rate(group_rates, micro_batch_size)
        total = self.cost_model.stage_time(y, stage.num_layers, micro_batch_size)
        forward = total / 3.0
        backward = total - forward

        message = ActivationMessage(
            micro_batch_size=micro_batch_size,
            seq_length=self.model.seq_length,
            hidden_size=self.model.hidden_size,
        )
        if stage_index + 1 < pipeline.pp_degree:
            next_stage = pipeline.stages[stage_index + 1]
            bandwidth = self.cluster.bandwidth_between(
                stage.gpu_ids[0], next_stage.gpu_ids[0]
            )
            send_forward = p2p_time(message.num_bytes, bandwidth)
        else:
            send_forward = 0.0
        if stage_index > 0:
            prev_stage = pipeline.stages[stage_index - 1]
            bandwidth = self.cluster.bandwidth_between(
                stage.gpu_ids[0], prev_stage.gpu_ids[0]
            )
            send_backward = p2p_time(message.num_bytes, bandwidth)
        else:
            send_backward = 0.0
        return StageWork(
            forward_time=forward,
            backward_time=backward,
            send_forward_time=send_forward,
            send_backward_time=send_backward,
        )

    def pipeline_time(self, pipeline: PipelinePlan, rates: Dict[int, float],
                      micro_batch_size: int) -> PipelineScheduleResult:
        """Simulate one pipeline's 1F1B schedule for one step."""
        work = [
            self.stage_work(pipeline, idx, rates, micro_batch_size)
            for idx in range(pipeline.pp_degree)
        ]
        return simulate_1f1b(work, pipeline.num_micro_batches)

    def gradient_sync_time(self, plan: ParallelizationPlan,
                           rates: Dict[int, float]) -> float:
        """ZeRO-1 gradient reduce-scatter + parameter all-gather time.

        Every layer's gradients are reduce-scattered across the GPUs holding
        that layer in the different pipelines, and the updated parameters are
        all-gathered back.  The bottleneck is the GPU holding the most bytes;
        the synchronisation spans nodes, so the inter-node bandwidth applies.
        The volume per GPU is approximated from the layers it hosts divided
        by its TP degree.
        """
        if plan.dp_degree <= 1:
            return 0.0
        bytes_per_layer = self.model.layer_param_bytes()
        worst = 0.0
        for pipeline in plan.pipelines:
            for stage in pipeline.stages:
                per_gpu_bytes = stage.num_layers * bytes_per_layer / stage.tp_degree
                worst = max(worst, per_gpu_bytes)
        bandwidth = self.cluster.inter_node_bandwidth
        dp = plan.dp_degree
        reduce = reduce_scatter_time(worst, dp, bandwidth)
        gather = allgather_time(worst, dp, bandwidth)
        return reduce + gather

    def migration_downtime(self, migration: MigrationPlan,
                           hideable_seconds: float = 0.0) -> MigrationCharge:
        """Charge a migration plan's fused per-pair batches on their links.

        Each (src, dst) pair's transfers are fused into batched send/recv
        calls (``layer_pack`` layers per batch) riding the pair's actual
        bandwidth — intra-node when the GPUs share a node; batches sharing
        a GPU's link serialise, distinct pairs overlap (see
        :func:`repro.parallel.migration.link_times`).  Without overlap
        (``hideable_seconds=0``, the default) the migration stalls
        training until the most loaded link drains; with an overlap window
        the job keeps training at the old plan for ``hideable_seconds`` of
        wall-clock time while the state streams in the background, and
        only the exposed tail beyond the window is charged as downtime.
        """
        per_gpu = link_times(migration, self.cluster)
        drain = max(per_gpu.values()) if per_gpu else 0.0
        exposed = max(0.0, drain - max(0.0, hideable_seconds))
        return MigrationCharge(
            total_seconds=exposed,
            total_bytes=migration.total_bytes,
            num_transfers=migration.num_transfers,
            per_gpu_seconds=per_gpu,
            drain_seconds=drain,
            hidden_seconds=drain - exposed,
        )

    # ------------------------------------------------------------------
    def simulate_step(self, plan: ParallelizationPlan,
                      rates: Optional[Dict[int, float]] = None,
                      check_memory: bool = True) -> StepResult:
        """Simulate one training step of ``plan`` under ``rates``."""
        rates = rates or {}
        full_rates = {g: rates.get(g, 1.0) for g in self.cluster.gpu_ids()}
        for gpu_id, rate in full_rates.items():
            if math.isinf(rate) and gpu_id in plan.active_gpus:
                return StepResult(step_time=math.inf)

        schedules = [
            self.pipeline_time(pipeline, full_rates, plan.micro_batch_size)
            for pipeline in plan.pipelines
        ]
        pipeline_times = [schedule.makespan for schedule in schedules]
        grad_sync = self.gradient_sync_time(plan, full_rates)
        step_time = (max(pipeline_times) if pipeline_times else 0.0) \
            + grad_sync + self.step_overhead
        memory = plan_memory_report(plan, self.cost_model) if check_memory else None
        if memory is not None and not memory.fits:
            step_time = math.inf
        return StepResult(
            step_time=step_time,
            pipeline_times=pipeline_times,
            grad_sync_time=grad_sync,
            memory=memory,
            schedules=schedules,
        )

    def estimate_step_time(self, plan: ParallelizationPlan,
                           rates: Optional[Dict[int, float]] = None) -> float:
        """Planner-style estimate ``max_i m_i * max_j t_{i,j}`` for comparison."""
        rates = rates or {}
        full_rates = {g: rates.get(g, 1.0) for g in self.cluster.gpu_ids()}
        worst = 0.0
        for pipeline in plan.pipelines:
            stage_times = []
            for stage in pipeline.stages:
                group_rates = [full_rates.get(g, 1.0) for g in stage.gpu_ids]
                y = self.cost_model.group_straggling_rate(
                    group_rates, plan.micro_batch_size
                )
                stage_times.append(
                    self.cost_model.stage_time(y, stage.num_layers,
                                               plan.micro_batch_size)
                )
            if stage_times:
                worst = max(worst, pipeline.num_micro_batches * max(stage_times))
        return worst
