"""Per-GPU memory accounting for a parallelization plan.

Memory usage follows the cost model of Appendix B.4 but is reported per GPU
(the cost model normalises everything to TP degree 1 and scales the group
capacity instead).  The executor uses this to reject plans that would run
out of memory and the test-suite uses it to check that the planner's memory
constraint is an over-approximation of the executor's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.costmodel import MalleusCostModel
from ..parallel.plan import ParallelizationPlan


@dataclass
class MemoryReport:
    """Per-GPU memory usage of one plan."""

    per_gpu_bytes: Dict[int, float] = field(default_factory=dict)
    per_gpu_capacity: Dict[int, float] = field(default_factory=dict)
    oom_gpus: List[int] = field(default_factory=list)

    @property
    def peak_bytes(self) -> float:
        """Largest per-GPU memory usage."""
        return max(self.per_gpu_bytes.values(), default=0.0)

    @property
    def fits(self) -> bool:
        """True when no GPU exceeds its capacity."""
        return not self.oom_gpus


def plan_memory_report(plan: ParallelizationPlan,
                       cost_model: MalleusCostModel) -> MemoryReport:
    """Compute per-GPU memory usage of a plan.

    Each GPU's usage is the TP=1-normalised stage memory (``l * mu + nu``)
    divided by the stage's TP degree, plus the reserved runtime gap.
    """
    report = MemoryReport()
    dp = plan.dp_degree
    reserved = cost_model.config.reserved_memory_bytes
    for pipeline in plan.pipelines:
        pp = pipeline.pp_degree
        for stage in pipeline.stages:
            stage_bytes = cost_model.stage_memory_bytes(
                stage.gpu_ids, stage.num_layers, pp, stage.stage_index,
                plan.micro_batch_size, dp,
            )
            per_gpu = stage_bytes / stage.tp_degree + reserved
            for gpu_id in stage.gpu_ids:
                report.per_gpu_bytes[gpu_id] = per_gpu
                capacity = cost_model.cluster.memory_capacity(gpu_id)
                report.per_gpu_capacity[gpu_id] = capacity
                if per_gpu > capacity:
                    report.oom_gpus.append(gpu_id)
    return report
