"""Discrete-event simulation of the 1F1B pipeline schedule.

The planner's cost model approximates the time of a pipeline as
``m * max_j t_j`` (§4.2); the executor, however, runs the real 1F1B
schedule with warm-up and cool-down phases and point-to-point transfers
between stages.  This module simulates that schedule exactly so that the
"actual" step times reported by the benchmark harness differ from the
planner's estimates in the same way the paper's Table 3 does.

Each stage executes its operations strictly in the 1F1B order:

* ``P - j`` warm-up forward passes for stage ``j`` (1-based),
* a steady phase alternating one forward and one backward pass,
* a cool-down phase draining the remaining backward passes.

A forward (backward) pass of micro-batch ``k`` on stage ``j`` can only start
once the corresponding pass of stage ``j-1`` (``j+1``) has finished and the
activation (gradient) message has arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Fraction of a layer's fwd+bwd time spent in the forward pass.
FORWARD_FRACTION = 1.0 / 3.0


@dataclass(frozen=True)
class StageWork:
    """Per-micro-batch work of one pipeline stage."""

    forward_time: float
    backward_time: float
    send_forward_time: float = 0.0
    send_backward_time: float = 0.0

    @property
    def total_time(self) -> float:
        """Forward plus backward compute time."""
        return self.forward_time + self.backward_time


@dataclass
class PipelineScheduleResult:
    """Outcome of simulating one pipeline for one training step."""

    makespan: float
    stage_finish_times: List[float]
    bubble_time: float
    num_micro_batches: int


def split_fwd_bwd(total_time: float) -> Tuple[float, float]:
    """Split a per-micro-batch stage time into forward and backward parts."""
    forward = total_time * FORWARD_FRACTION
    return forward, total_time - forward


def _build_op_sequence(num_stages: int, stage_index: int,
                       num_micro_batches: int) -> List[Tuple[str, int]]:
    """1F1B operation order of one stage (1-based ``stage_index``)."""
    warmup = min(num_micro_batches, num_stages - stage_index)
    ops: List[Tuple[str, int]] = []
    for mb in range(1, warmup + 1):
        ops.append(("F", mb))
    next_fwd = warmup + 1
    next_bwd = 1
    while next_fwd <= num_micro_batches:
        ops.append(("F", next_fwd))
        ops.append(("B", next_bwd))
        next_fwd += 1
        next_bwd += 1
    while next_bwd <= num_micro_batches:
        ops.append(("B", next_bwd))
        next_bwd += 1
    return ops


def simulate_1f1b(stage_work: Sequence[StageWork],
                  num_micro_batches: int) -> PipelineScheduleResult:
    """Simulate the 1F1B schedule and return the pipeline makespan.

    Parameters
    ----------
    stage_work:
        Per-stage forward/backward/communication times (stage 1 first).
    num_micro_batches:
        Number of micro-batches the pipeline processes this step.
    """
    num_stages = len(stage_work)
    if num_stages == 0 or num_micro_batches <= 0:
        return PipelineScheduleResult(
            makespan=0.0, stage_finish_times=[], bubble_time=0.0,
            num_micro_batches=num_micro_batches,
        )

    sequences = [
        _build_op_sequence(num_stages, j, num_micro_batches)
        for j in range(1, num_stages + 1)
    ]
    progress = [0] * num_stages
    stage_time = [0.0] * num_stages
    fwd_done: Dict[Tuple[int, int], float] = {}
    bwd_done: Dict[Tuple[int, int], float] = {}

    total_ops = sum(len(seq) for seq in sequences)
    scheduled = 0
    while scheduled < total_ops:
        advanced = False
        for stage in range(num_stages):
            while progress[stage] < len(sequences[stage]):
                kind, mb = sequences[stage][progress[stage]]
                if kind == "F":
                    if stage == 0:
                        dep_ready = 0.0
                    else:
                        key = (stage - 1, mb)
                        if key not in fwd_done:
                            break
                        dep_ready = fwd_done[key] + \
                            stage_work[stage - 1].send_forward_time
                    start = max(stage_time[stage], dep_ready)
                    finish = start + stage_work[stage].forward_time
                    fwd_done[(stage, mb)] = finish
                else:
                    if stage == num_stages - 1:
                        key = (stage, mb)
                        if key not in fwd_done:
                            break
                        dep_ready = fwd_done[key]
                    else:
                        key = (stage + 1, mb)
                        if key not in bwd_done:
                            break
                        dep_ready = bwd_done[key] + \
                            stage_work[stage + 1].send_backward_time
                    start = max(stage_time[stage], dep_ready)
                    finish = start + stage_work[stage].backward_time
                    bwd_done[(stage, mb)] = finish
                stage_time[stage] = finish
                progress[stage] += 1
                scheduled += 1
                advanced = True
        if not advanced:
            raise RuntimeError("1F1B simulation deadlocked (invalid schedule)")

    makespan = max(stage_time)
    busy = [
        (work.forward_time + work.backward_time) * num_micro_batches
        for work in stage_work
    ]
    bubble = makespan - max(busy) if busy else 0.0
    return PipelineScheduleResult(
        makespan=makespan,
        stage_finish_times=list(stage_time),
        bubble_time=max(0.0, bubble),
        num_micro_batches=num_micro_batches,
    )


def analytic_1f1b_time(stage_times: Sequence[float],
                       num_micro_batches: int) -> float:
    """Closed-form 1F1B estimate ``(m - 1) * max_j t_j + sum_j t_j``."""
    if not stage_times or num_micro_batches <= 0:
        return 0.0
    return (num_micro_batches - 1) * max(stage_times) + sum(stage_times)
