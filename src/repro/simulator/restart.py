"""Restart and checkpoint cost models.

The restart-based baselines (Megatron-LM w/ Restart, DeepSpeed w/ Restart,
and Oobleck's fall-back path) must save a checkpoint, tear down the job,
re-initialise the framework on the surviving nodes (resource allocation,
communication-group construction, compilation warm-up) and reload the
checkpoint.  The paper measures 199-442 s for Megatron-LM and 115-232 s for
DeepSpeed; this module reproduces those magnitudes analytically from the
model size, the storage/network bandwidth and a fixed initialisation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.topology import Cluster
from ..models.spec import TransformerModelSpec


@dataclass
class RestartCostConfig:
    """Knobs of the restart cost model.

    ``checkpoint_bandwidth`` is the aggregate bandwidth to the shared
    checkpoint store (bytes/s); ``framework_init_time`` covers process
    launch, NCCL communicator construction and warm-up; ``scheduling_time``
    covers draining the old job and acquiring the new allocation.
    """

    checkpoint_bandwidth: float = 5.0e9
    framework_init_time: float = 90.0
    scheduling_time: float = 30.0
    optimizer_bytes_per_param: float = 12.0
    param_bytes_per_param: float = 2.0


def checkpoint_bytes(model: TransformerModelSpec,
                     config: RestartCostConfig) -> float:
    """Size of a full training checkpoint (params + optimizer states)."""
    per_param = config.param_bytes_per_param + config.optimizer_bytes_per_param
    return model.total_params() * per_param


def checkpoint_save_time(model: TransformerModelSpec,
                         config: RestartCostConfig) -> float:
    """Time to persist the checkpoint to the shared store."""
    return checkpoint_bytes(model, config) / config.checkpoint_bandwidth


def checkpoint_load_time(model: TransformerModelSpec,
                         config: RestartCostConfig) -> float:
    """Time to load the checkpoint back onto the new allocation."""
    return checkpoint_bytes(model, config) / config.checkpoint_bandwidth


def restart_time(model: TransformerModelSpec, cluster: Cluster,
                 config: RestartCostConfig = RestartCostConfig(),
                 save_checkpoint: bool = True) -> float:
    """Full restart cost: save + scheduling + init + load.

    ``save_checkpoint=False`` models recovery from an existing (periodic)
    checkpoint, e.g. after a hard failure where the live states are lost.
    """
    total = config.scheduling_time + config.framework_init_time
    total += checkpoint_load_time(model, config)
    if save_checkpoint:
        total += checkpoint_save_time(model, config)
    return total
