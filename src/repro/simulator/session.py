"""Trace-driven training session simulation.

The end-to-end evaluation (Figure 7 / Table 2) runs each framework through
a trace of straggler situations.  :func:`run_trace` drives an arbitrary
framework (Malleus or one of the baselines) through a
:class:`~repro.cluster.trace.StragglerTrace`, letting it react to every
situation change (re-plan + migrate, restart, or do nothing) and measuring
the resulting per-step times and adjustment overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from ..cluster.stragglers import ClusterState
from ..cluster.trace import StragglerSituation, StragglerTrace


@dataclass
class Adjustment:
    """How a framework reacted to a situation change."""

    kind: str = "none"  # "none", "migrate", "restart", "replan", "deferred"
    downtime: float = 0.0  # seconds of stalled training caused by the reaction
    planning_time: float = 0.0  # planning time (overlapped for Malleus)
    overlapped: bool = False
    description: str = ""
    #: Model-state bytes migrated to realise the adjustment (0 when the
    #: plan is unchanged or the framework restarts instead of migrating).
    migration_bytes: float = 0.0
    #: Migration drain time hidden under concurrent training at the old
    #: plan (overlapped migration only; ``downtime`` already excludes it).
    hidden_migration_time: float = 0.0
    #: Classification of the triggering delta against the incumbent plan
    #: ("minor_rate_shift", "group_change", "membership_change"); empty for
    #: frameworks without an incremental re-planning engine.
    event_kind: str = ""
    #: Repair tier that handled the event ("none", "rebalance",
    #: "partial_resolve", "full", "deferred"); empty when not applicable.
    repair_tier: str = ""
    #: Repair tiers that *raised* while handling the event (each entry
    #: names the tier and the exception); the engine degraded to the next
    #: tier instead of propagating, so this is the failure's only trace.
    tier_errors: List[str] = field(default_factory=list)
    #: What the candidate-sweep engine did for this event (backend,
    #: workers, evaluated/pruned counts, warm-cache hits — see
    #: :class:`repro.core.sweep.SweepStats`); ``None`` for frameworks
    #: without the sweep engine or when no sweep ran.
    sweep_stats: Optional[Dict[str, object]] = None
    #: True when the repair was served from the planning service's
    #: speculation cache (pre-solved during an idle step): the plan is
    #: bit-identical to the on-demand repair, only the solve latency
    #: left the event's critical path.
    speculative: bool = False


class TrainingFramework(Protocol):
    """Interface every simulated training framework implements."""

    name: str

    def setup(self, state: ClusterState) -> None:
        """Initialise the framework for the first (usually normal) situation."""

    def on_situation_change(self, state: ClusterState) -> Adjustment:
        """React to a new straggler situation; return the incurred adjustment."""

    def step_time(self, state: ClusterState) -> float:
        """Per-step training time under the current plan and the given state."""


@dataclass
class SituationResult:
    """Per-situation outcome of a trace run."""

    situation: str
    avg_step_time: float
    num_steps: int
    adjustment: Adjustment
    wall_clock_time: float = 0.0

    @property
    def total_time(self) -> float:
        """Training time plus adjustment downtime for this situation."""
        return self.avg_step_time * self.num_steps + self.adjustment.downtime


@dataclass
class TraceRunResult:
    """Outcome of running one framework through a full trace."""

    framework: str
    situations: List[SituationResult] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """End-to-end wall-clock time of the trace."""
        return sum(result.total_time for result in self.situations)

    def situation_result(self, key: "int | str") -> SituationResult:
        """Look up one situation's result by index (preferred) or name.

        Generated scenario traces may repeat situation names, so the
        canonical key is the 0-based position in the trace.  Name lookup
        is kept for hand-written traces with unique names (the historic
        API) but raises ``KeyError`` when the name is ambiguous instead
        of silently returning the first match.
        """
        if isinstance(key, int) and not isinstance(key, bool):
            try:
                return self.situations[key]
            except IndexError:
                raise KeyError(
                    f"situation index {key} not in results "
                    f"(have {len(self.situations)})") from None
        matches = [r for r in self.situations if r.situation == key]
        if not matches:
            raise KeyError(f"situation '{key}' not in results")
        if len(matches) > 1:
            raise KeyError(
                f"situation name '{key}' appears {len(matches)} times in the "
                "trace; look it up by index instead")
        return matches[0]

    def step_time(self, situation: "int | str") -> float:
        """Average step time measured in one situation.

        Accepts a situation index or — deprecated, for traces with
        unique situation names only — a name (``KeyError`` on repeats).
        """
        return self.situation_result(situation).avg_step_time

    def as_dict(self) -> Dict[str, float]:
        """Situation -> average step time mapping.

        Unique situation names map as-is; a name the trace repeats gets a
        ``#<index>`` suffix on *every* occurrence so no entry shadows
        another (``step_time`` and ``as_dict`` used to disagree on which
        duplicate won).
        """
        counts: Dict[str, int] = {}
        for result in self.situations:
            counts[result.situation] = counts.get(result.situation, 0) + 1
        mapping: Dict[str, float] = {}
        for index, result in enumerate(self.situations):
            if counts[result.situation] == 1:
                mapping[result.situation] = result.avg_step_time
            else:
                mapping[f"{result.situation}#{index}"] = result.avg_step_time
        return mapping


def run_trace(
    framework: TrainingFramework,
    trace: StragglerTrace,
    steps_per_situation: Optional[int] = None,
) -> TraceRunResult:
    """Run a framework through a straggler trace.

    The first situation initialises the framework (``setup``); every later
    situation first lets the framework react (``on_situation_change``) and
    then measures its steady-state step time.
    """
    result = TraceRunResult(framework=framework.name)
    for index, situation in enumerate(trace.situations):
        state = situation.as_state(trace.cluster)
        if index == 0:
            framework.setup(state)
            adjustment = Adjustment(kind="setup")
        else:
            adjustment = framework.on_situation_change(state)
        step_time = framework.step_time(state)
        num_steps = steps_per_situation or situation.duration_steps
        result.situations.append(
            SituationResult(
                situation=situation.name,
                avg_step_time=step_time,
                num_steps=num_steps,
                adjustment=adjustment,
                wall_clock_time=step_time * num_steps + adjustment.downtime,
            )
        )
    return result


def theoretic_optimal_step_time(normal_step_time: float,
                                state: ClusterState) -> float:
    """Theoretic optimum ``T_normal * N / ((N - n) + sum 1/x_i)`` (§7.2).

    Assumes hardware capability is inversely proportional to the straggling
    rate; failed GPUs contribute zero capability.
    """
    num_gpus = state.cluster.num_gpus
    capability = 0.0
    for rate in state.rates.values():
        if math.isinf(rate):
            continue
        capability += 1.0 / rate
    if capability <= 0:
        return math.inf
    return normal_step_time * num_gpus / capability
