"""Optimization solvers used by the parallelization planner.

The paper relies on PuLP (ILP, Eq. 2/3) and Pyomo (MINLP, Eq. 4).  This
package replaces them with exact, dependency-free solvers that exploit the
min-max structure of the problems.
"""

from .division import (
    DivisionProblem,
    DivisionSolution,
    PartialDivisionSolution,
    brute_force_division,
    division_candidate_bound,
    division_lower_bound,
    repair_pipeline_division,
    solve_pipeline_division,
)
from .minmax import MinMaxSolution, brute_force_minmax, solve_minmax_assignment

__all__ = [
    "DivisionProblem",
    "DivisionSolution",
    "MinMaxSolution",
    "PartialDivisionSolution",
    "brute_force_division",
    "brute_force_minmax",
    "division_candidate_bound",
    "division_lower_bound",
    "repair_pipeline_division",
    "solve_minmax_assignment",
    "solve_pipeline_division",
]
