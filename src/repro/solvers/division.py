"""Pipeline-division solver for the upper-level MINLP (Eq. 4).

Given the TP groups produced by GPU grouping, the pipeline-orchestration
step must decide which groups form which training pipeline.  Under the
relaxations of Appendix B.6 the problem becomes::

    minimize   max_i  m_i * tau(b) / s_i
    subject to sum_i m_i = B / b                 (micro-batches, integer)
               s_i = h_i / y_hat + sum_k q_{i,k} / y_k
               sum_i h_i = number of fast groups (integer)
               every slow group k assigned to exactly one pipeline (q binary)

where "fast" groups share the majority straggling rate ``y_hat`` and "slow"
groups have individual rates ``y_k``.  The paper solves this with Pyomo; we
exploit the structure instead:

* slow groups are assigned by symmetry-reduced enumeration (identical rates
  are interchangeable and pipelines are interchangeable before fast groups
  are allocated), with a greedy + local-search fallback when the enumeration
  would explode;
* for a fixed slow-group assignment the fast groups are distributed by
  harmonic water-filling (equalising the pipeline speeds) followed by a
  local search, and the micro-batches by the exact min-max solver.

Hot-path kernels
----------------
The water-filling and the slow-group local search sit on the planner's
critical path (they run once per candidate move, thousands of times per
plan).  The production kernels therefore use

* a heap-based water-filling (``O(fast * log dp)`` instead of rescanning all
  ``dp`` pipelines per fast group), and
* in-place move/revert local search (no per-move deep copies of the slow
  buckets).

The original straightforward kernels are kept as ``*_legacy`` reference
implementations; ``solve_pipeline_division(..., legacy_kernels=True)``
selects them, which is what the hot-path benchmark uses as its "before"
configuration and what the equivalence tests compare against.
``division_lower_bound`` is the division-problem form of the cheap,
provably-sound bound ``total_micro_batches / total_harmonic_speed``; the
planner's actual pruning uses its cost-model-aware counterpart
:func:`repro.core.assignment.candidate_step_time_bound`, and the pruning
soundness tests check this form against :func:`brute_force_division`.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compat import np
from ..core import kernel_timing
from .minmax import solve_minmax_assignment


@dataclass
class DivisionProblem:
    """Input of the pipeline-division problem."""

    num_pipelines: int
    total_micro_batches: int
    fast_group_count: int
    fast_group_rate: float
    slow_group_rates: List[float] = field(default_factory=list)
    min_groups_per_pipeline: int = 1
    max_groups_per_pipeline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_pipelines <= 0:
            raise ValueError("num_pipelines must be positive")
        if self.total_micro_batches <= 0:
            raise ValueError("total_micro_batches must be positive")
        if self.fast_group_count < 0:
            raise ValueError("fast_group_count must be non-negative")
        if self.fast_group_count and self.fast_group_rate <= 0:
            raise ValueError("fast_group_rate must be positive")
        if any(rate <= 0 for rate in self.slow_group_rates):
            raise ValueError("slow group rates must be positive")
        total_groups = self.fast_group_count + len(self.slow_group_rates)
        if total_groups < self.num_pipelines * self.min_groups_per_pipeline:
            raise ValueError(
                "not enough groups to populate every pipeline"
            )


@dataclass
class DivisionSolution:
    """Result of the pipeline-division problem.

    ``fast_groups[i]`` is the number of majority-rate groups in pipeline
    ``i``; ``slow_groups[i]`` lists the straggling rates of the slow groups
    assigned to pipeline ``i``; ``micro_batches[i]`` is ``m_i``.
    """

    fast_groups: List[int]
    slow_groups: List[List[float]]
    micro_batches: List[int]
    objective: float
    candidates_evaluated: int = 0
    used_fallback: bool = False
    #: Assignments skipped by the dp-aware bound (see
    #: :func:`division_candidate_bound`); 0 with pruning disabled.
    candidates_pruned: int = 0
    #: Refinement local searches skipped because the candidate's bound
    #: proved it cannot strictly beat the incumbent solution.
    refinements_pruned: int = 0

    def pipeline_speed(self, index: int, fast_rate: float) -> float:
        """Harmonic speed ``s_i`` of one pipeline."""
        speed = self.fast_groups[index] / fast_rate if fast_rate > 0 else 0.0
        speed += sum(1.0 / rate for rate in self.slow_groups[index])
        return speed


# ----------------------------------------------------------------------
# Fast-group water-filling for a fixed slow assignment
# ----------------------------------------------------------------------
def _waterfill_fast_groups(problem: DivisionProblem,
                           slow_assignment: Sequence[Sequence[float]],
                           base_speed: Optional[Sequence[float]] = None,
                           ) -> List[int]:
    """Distribute the fast groups so pipeline speeds are as equal as possible.

    Heap-based: each pipeline keeps exactly one ``(speed, count, index)``
    entry; placing a fast group pops the slowest pipeline and pushes its
    updated entry back, so the whole fill is ``O(fast * log dp)`` instead of
    the legacy ``O(fast * dp)`` rescan.  Tie-breaking ``(speed, count,
    index)`` matches the legacy kernel exactly, so both produce identical
    counts.

    ``base_speed`` optionally supplies the per-pipeline harmonic speeds of
    ``slow_assignment`` (each entry exactly ``sum(1.0 / r for r in
    slow_assignment[i])``); the local search maintains them incrementally
    instead of re-deriving all buckets on every candidate move.
    """
    dp = problem.num_pipelines
    fast = problem.fast_group_count
    fast_rate = problem.fast_group_rate
    if base_speed is None:
        base_speed = [sum(1.0 / r for r in slow_assignment[i])
                      for i in range(dp)]
    counts = [0] * dp

    # Honour the minimum group count first.
    for i in range(dp):
        need = problem.min_groups_per_pipeline - len(slow_assignment[i])
        if need > 0:
            counts[i] = need
    placed = sum(counts)
    if placed > fast:
        return []  # infeasible for this slow assignment
    remaining = fast - placed
    if remaining == 0:
        return counts

    cap = problem.max_groups_per_pipeline
    heap = [
        (base_speed[i] + counts[i] / fast_rate, counts[i], i)
        for i in range(dp)
    ]
    heapq.heapify(heap)
    for _ in range(remaining):
        # Pipelines at the group cap stay full forever (counts only grow),
        # so they are dropped from the heap permanently.
        while heap and cap is not None and \
                heap[0][1] + len(slow_assignment[heap[0][2]]) >= cap:
            heapq.heappop(heap)
        if not heap:
            return []
        _, count, idx = heapq.heappop(heap)
        count += 1
        counts[idx] = count
        heapq.heappush(heap, (base_speed[idx] + count / fast_rate, count, idx))
    return counts


#: Below this many fast groups the heap fill is already cheap and the
#: closed-form machinery would only add overhead.
_CLOSED_FORM_MIN_REMAINING = 64


def _waterfill_fast_groups_closed(problem: DivisionProblem,
                                  slow_assignment: Sequence[Sequence[float]],
                                  base_speed: Optional[Sequence[float]] = None,
                                  ) -> List[int]:
    """Closed-form water-filling, bit-identical to the heap kernel.

    The heap greedy takes the ``R`` smallest keys ``(base_i + t / y_hat,
    t, i)`` from the union of the per-pipeline key sequences (strictly
    increasing in ``t`` even on float plateaus, because the integer count
    is part of the tuple).  Instead of popping them one at a time — the
    single hottest loop of an 8k+-GPU plan — this kernel:

    1. estimates the relaxed water level ``L`` over the starting speeds
       (progressive k-active formula, floats, approximation is fine);
    2. bulk-claims a deliberate *under*-estimate ``e_i`` of each
       pipeline's share (4 groups of slack per pipeline);
    3. proves the claim sound: per pipeline, the largest claimed key
       must rank within the ``R`` smallest overall, counted exactly by
       per-pipeline binary search with the same float tuple comparisons
       the heap would perform.  A pipeline that fails the check forfeits
       its claim (``e_i = 0``) — correctness never rests on the
       estimate, only on this check;
    4. finishes the remaining steps with the original heap greedy,
       which by construction picks up exactly where the claimed prefix
       ends.

    Group caps fall back to the heap kernel (claimed prefixes are not
    downward-closed once pipelines drop out at their cap), as do small
    fills where the heap is already cheap.
    """
    dp = problem.num_pipelines
    fast = problem.fast_group_count
    fast_rate = problem.fast_group_rate
    if base_speed is None:
        base_speed = [sum(1.0 / r for r in slow_assignment[i])
                      for i in range(dp)]
    counts = [0] * dp
    for i in range(dp):
        need = problem.min_groups_per_pipeline - len(slow_assignment[i])
        if need > 0:
            counts[i] = need
    placed = sum(counts)
    if placed > fast:
        return []
    remaining = fast - placed
    if remaining == 0:
        return counts
    if problem.max_groups_per_pipeline is not None or \
            remaining < _CLOSED_FORM_MIN_REMAINING:
        return _waterfill_fast_groups(problem, slow_assignment, base_speed)

    # 1. Relaxed water level over the starting speeds.
    start_speeds = sorted(base_speed[i] + counts[i] / fast_rate
                          for i in range(dp))
    budget = remaining / fast_rate
    level = start_speeds[0] + budget
    prefix = 0.0
    for k in range(1, dp + 1):
        prefix += start_speeds[k - 1]
        level = (prefix + budget) / k
        if k < dp and level > start_speeds[k]:
            continue
        break

    # 2. Under-estimated bulk claim, clamped to the step budget.
    claims = [0] * dp
    for i in range(dp):
        est = math.floor((level - base_speed[i]) * fast_rate) - counts[i] - 4
        if est > 0:
            claims[i] = est
    total_claimed = sum(claims)
    while total_claimed > remaining:
        j = max(range(dp), key=lambda i: claims[i])
        give_back = min(claims[j], total_claimed - remaining)
        claims[j] -= give_back
        total_claimed -= give_back

    # 3. Soundness check: the largest claimed key of every pipeline must
    # rank within the R smallest keys of the union.  Keys are strictly
    # increasing per pipeline, so the rank is a sum of per-pipeline
    # boundary searches using the heap's exact float tuple order.  Each
    # search is seeded from the float estimate ``(key_speed - base_j) *
    # y_hat`` of the boundary and galloped outward with exact comparisons:
    # the estimate is off by at most a few units of float rounding, so the
    # gallop typically settles in 2-4 key evaluations instead of the ~12 a
    # blind binary search over ``remaining`` keys performs — and because
    # every probe uses the identical tuple comparison, the returned rank
    # is exact no matter how wrong the seed is.
    def rank_below(key_speed: float, key_count: int, key_idx: int) -> int:
        below = 0
        for j in range(dp):
            lo, hi = counts[j], counts[j] + remaining
            base_j = base_speed[j]
            est = int((key_speed - base_j) * fast_rate)
            if est < lo:
                est = lo
            elif est > hi:
                est = hi
            # Find the first k in [lo, hi) whose key is NOT below the
            # probe key; the predicate is monotone (true then false).
            cursor, step = est, 1
            if cursor < hi and \
                    (base_j + cursor / fast_rate, cursor, j) \
                    < (key_speed, key_count, key_idx):
                # Boundary is above the seed: gallop upward.
                lo = cursor + 1
                cursor += step
                while cursor < hi and \
                        (base_j + cursor / fast_rate, cursor, j) \
                        < (key_speed, key_count, key_idx):
                    lo = cursor + 1
                    step *= 2
                    cursor += step
                if cursor < hi:
                    hi = cursor
            else:
                # Boundary is at or below the seed: gallop downward.
                hi = cursor
                cursor -= step
                while cursor >= lo and not (
                        (base_j + cursor / fast_rate, cursor, j)
                        < (key_speed, key_count, key_idx)):
                    hi = cursor
                    step *= 2
                    cursor -= step
                if cursor >= lo:
                    lo = cursor + 1
            while lo < hi:
                mid = (lo + hi) // 2
                speed = base_j + mid / fast_rate
                if (speed, mid, j) < (key_speed, key_count, key_idx):
                    lo = mid + 1
                else:
                    hi = mid
            below += lo - counts[j]
            if below >= remaining:
                return below
        return below

    for i in range(dp):
        if claims[i] <= 0:
            continue
        top = counts[i] + claims[i] - 1
        if rank_below(base_speed[i] + top / fast_rate, top, i) > remaining - 1:
            total_claimed -= claims[i]
            claims[i] = 0

    for i in range(dp):
        counts[i] += claims[i]

    # 4. Heap greedy for the unclaimed tail (no caps on this path).
    tail = remaining - total_claimed
    if tail > 0:
        heap = [
            (base_speed[i] + counts[i] / fast_rate, counts[i], i)
            for i in range(dp)
        ]
        heapq.heapify(heap)
        for _ in range(tail):
            _, count, idx = heapq.heappop(heap)
            count += 1
            counts[idx] = count
            heapq.heappush(
                heap, (base_speed[idx] + count / fast_rate, count, idx)
            )
    return counts


def _waterfill_fast_groups_legacy(
        problem: DivisionProblem,
        slow_assignment: Sequence[Sequence[float]]) -> List[int]:
    """Pre-overhaul reference water-filling (O(fast * dp) rescans).

    Kept as the benchmark's "before" kernel and as the oracle for the
    heap-kernel equivalence tests.
    """
    dp = problem.num_pipelines
    fast = problem.fast_group_count
    fast_rate = problem.fast_group_rate
    base_speed = [sum(1.0 / r for r in slow_assignment[i]) for i in range(dp)]
    counts = [0] * dp

    for i in range(dp):
        need = problem.min_groups_per_pipeline - len(slow_assignment[i])
        if need > 0:
            counts[i] = need
    if sum(counts) > fast:
        return []
    remaining = fast - sum(counts)
    for _ in range(remaining):
        speeds = [base_speed[i] + counts[i] / fast_rate for i in range(dp)]
        idx = min(range(dp), key=lambda i: (speeds[i], counts[i]))
        if problem.max_groups_per_pipeline is not None:
            tried = sorted(range(dp), key=lambda i: (speeds[i], counts[i]))
            placed = False
            for candidate in tried:
                if counts[candidate] + len(slow_assignment[candidate]) \
                        < problem.max_groups_per_pipeline:
                    counts[candidate] += 1
                    placed = True
                    break
            if not placed:
                return []
        else:
            counts[idx] += 1
    return counts


def _evaluate(problem: DivisionProblem,
              slow_assignment: Sequence[Sequence[float]],
              fast_counts: Sequence[int],
              use_minmax_cache: bool = True) -> Tuple[float, List[int]]:
    """Objective value and micro-batch split for a full division."""
    dp = problem.num_pipelines
    speeds = []
    for i in range(dp):
        speed = 0.0
        if problem.fast_group_rate > 0:
            speed += fast_counts[i] / problem.fast_group_rate
        speed += sum(1.0 / r for r in slow_assignment[i])
        speeds.append(speed)
    if any(speed <= 0 for speed in speeds):
        return math.inf, [0] * dp
    weights = [1.0 / speed for speed in speeds]
    solution = solve_minmax_assignment(weights, problem.total_micro_batches,
                                       use_cache=use_minmax_cache)
    if not solution.feasible:
        return math.inf, [0] * dp
    return solution.objective, solution.values


def _largest_remainder_objective(speeds: Sequence[float], total: int) -> float:
    """``max_i m_i / s_i`` after a largest-remainder micro-batch split.

    Shared rounding kernel of :func:`_cheap_score`, the incremental
    :class:`_RemainderScorer` and :func:`repair_pipeline_division` — all
    three must rank candidates identically.
    """
    if any(speed <= 0 for speed in speeds):
        return math.inf
    total_speed = sum(speeds)
    shares = [total * s / total_speed for s in speeds]
    floors = [int(math.floor(share)) for share in shares]
    remainder = total - sum(floors)
    order = sorted(range(len(speeds)), key=lambda i: shares[i] - floors[i],
                   reverse=True)
    for i in order[:remainder]:
        floors[i] += 1
    return max(m / s for m, s in zip(floors, speeds))


def _cheap_score(problem: DivisionProblem,
                 slow_assignment: Sequence[Sequence[float]],
                 fast_counts: Sequence[int],
                 base_speed: Optional[Sequence[float]] = None) -> float:
    """Fast proxy for the division objective (largest-remainder rounding).

    Micro-batches are split proportionally to the pipeline speeds and rounded
    with the largest-remainder method; the returned value is the resulting
    ``max_i m_i / s_i``.  The exact min-max solver is only run on the
    top-scoring candidates.  ``base_speed`` plays the same role as in
    :func:`_waterfill_fast_groups`.
    """
    dp = problem.num_pipelines
    speeds = []
    for i in range(dp):
        speed = 0.0
        if problem.fast_group_rate > 0:
            speed += fast_counts[i] / problem.fast_group_rate
        if base_speed is not None:
            speed += base_speed[i]
        else:
            speed += sum(1.0 / r for r in slow_assignment[i])
        if speed <= 0:
            return math.inf
        speeds.append(speed)
    return _largest_remainder_objective(speeds, problem.total_micro_batches)


class _RemainderScorer:
    """Incrementally-updated largest-remainder score for the local search.

    Equivalent to :func:`_cheap_score` (same arithmetic, same rounding, same
    tie-breaking, verified by the kernel-equivalence tests) but built for the
    move/revert loop of :func:`_local_search_slow`:

    * workspaces are preallocated once instead of being rebuilt per move;
    * the per-pipeline speeds are refreshed from the caller's ``base_speed``
      and fast counts in place — no intermediate lists;
    * scoring accepts a ``threshold`` (the incumbent score) and aborts with
      ``inf`` as soon as the running maximum reaches it, which is sound
      because the local search only ever asks "does this move beat the
      incumbent?".
    """

    def __init__(self, problem: DivisionProblem):
        self.problem = problem
        dp = problem.num_pipelines
        self._speeds = [0.0] * dp
        self._shares = [0.0] * dp
        self._floors = [0] * dp

    def score(self, base_speed: Sequence[float], fast_counts: Sequence[int],
              threshold: float = math.inf) -> float:
        problem = self.problem
        dp = problem.num_pipelines
        fast_rate = problem.fast_group_rate
        speeds = self._speeds
        for i in range(dp):
            speed = 0.0
            if fast_rate > 0:
                speed += fast_counts[i] / fast_rate
            speed += base_speed[i]
            if speed <= 0:
                return math.inf
            speeds[i] = speed
        total = problem.total_micro_batches
        total_speed = sum(speeds)
        shares = self._shares
        floors = self._floors
        remainder = total
        for i in range(dp):
            share = total * speeds[i] / total_speed
            shares[i] = share
            f = int(math.floor(share))
            floors[i] = f
            remainder -= f
        if remainder:
            order = sorted(range(dp), key=lambda i: shares[i] - floors[i],
                           reverse=True)
            for i in order[:remainder]:
                floors[i] += 1
        worst = 0.0
        for i in range(dp):
            value = floors[i] / speeds[i]
            if value > worst:
                if value >= threshold:
                    return math.inf
                worst = value
        return worst


def _local_search_fast(problem: DivisionProblem,
                       slow_assignment: Sequence[Sequence[float]],
                       fast_counts: List[int],
                       use_minmax_cache: bool = True,
                       ) -> Tuple[float, List[int], List[int]]:
    """Improve the fast-group allocation by single-group moves."""
    best_obj, best_mb = _evaluate(problem, slow_assignment, fast_counts,
                                  use_minmax_cache)
    best_counts = list(fast_counts)
    improved = True
    while improved:
        improved = False
        for src in range(problem.num_pipelines):
            for dst in range(problem.num_pipelines):
                if src == dst:
                    continue
                counts = list(best_counts)
                if counts[src] + len(slow_assignment[src]) - 1 \
                        < problem.min_groups_per_pipeline:
                    continue
                if counts[src] == 0:
                    continue
                if problem.max_groups_per_pipeline is not None and \
                        counts[dst] + len(slow_assignment[dst]) + 1 \
                        > problem.max_groups_per_pipeline:
                    continue
                counts[src] -= 1
                counts[dst] += 1
                obj, mb = _evaluate(problem, slow_assignment, counts,
                                    use_minmax_cache)
                if obj < best_obj - 1e-12:
                    best_obj, best_mb, best_counts = obj, mb, counts
                    improved = True
    return best_obj, best_counts, best_mb


# ----------------------------------------------------------------------
# Slow-group assignment enumeration
# ----------------------------------------------------------------------
#: Search-node backstop of :func:`_enumerate_slow_assignments`.  The
#: symmetry reductions keep the tree close to the number of distinct
#: assignments, so any instance that genuinely needs this many nodes is
#: pathological and better served by the greedy + local-search fallback.
ENUMERATION_NODE_BUDGET = 500_000


def _enumerate_slow_assignments(rates: Sequence[float], dp: int,
                                limit: int) -> Tuple[List[List[List[float]]], bool]:
    """Enumerate symmetry-reduced assignments of slow groups to pipelines.

    Returns the list of assignments (each a per-pipeline list of rates) and a
    flag telling whether the enumeration was truncated (at ``limit``
    distinct assignments, or at the search-node budget).

    Two symmetry reductions keep the tree near the distinct-assignment
    count: at every node a rate is only placed into buckets whose current
    content differs, and **equal rates are placed in non-decreasing bucket
    order** — any assignment of identical rates can be reordered that way,
    so the canonical assignment set is unchanged while the factorial
    blowup on near-uniform rate multisets (e.g. a node-correlated slowdown
    degrading 16 GPUs identically) collapses.  Generated straggler regimes
    (:mod:`repro.cluster.scenarios`) hit exactly that pattern; the node
    budget is a backstop for adversarial distinct-rate instances.
    """
    assignments: List[List[List[float]]] = []
    seen = set()
    truncated = False
    nodes = 0
    rates = sorted(rates, reverse=True)

    def canonical(buckets: List[List[float]]) -> tuple:
        return tuple(sorted(tuple(sorted(b)) for b in buckets))

    def recurse(idx: int, buckets: List[List[float]],
                min_bucket: int) -> bool:
        nonlocal truncated, nodes
        nodes += 1
        if len(assignments) >= limit or nodes > ENUMERATION_NODE_BUDGET:
            truncated = True
            return False
        if idx == len(rates):
            key = canonical(buckets)
            if key not in seen:
                seen.add(key)
                assignments.append([list(b) for b in buckets])
            return True
        # Symmetry reduction: only place into buckets whose content differs,
        # or into the first empty bucket; a rate equal to its predecessor
        # never goes into an earlier bucket than the predecessor did.
        start = min_bucket if idx > 0 and rates[idx] == rates[idx - 1] else 0
        used_signatures = set()
        for b in range(start, dp):
            signature = tuple(sorted(buckets[b]))
            if signature in used_signatures:
                continue
            used_signatures.add(signature)
            buckets[b].append(rates[idx])
            if not recurse(idx + 1, buckets, b):
                buckets[b].pop()
                return False
            buckets[b].pop()
        return True

    recurse(0, [[] for _ in range(dp)], 0)
    return assignments, truncated


def _base_speed_vector(slow_assignment: Sequence[Sequence[float]],
                       kernels: str) -> List[float]:
    """Per-bucket harmonic speeds for the bound screens, bit-identical.

    The reference is ``[sum(1.0 / r for r in bucket) for bucket in
    slow_assignment]``.  On the numpy backend the reciprocals are taken
    in one elementwise pass (``np.reciprocal`` performs the identical
    IEEE division per element) and each bucket is still summed with
    python's sequential left-to-right ``sum`` — same values, same
    addition order, so the screens downstream prune exactly the same
    candidates as the python reference.
    """
    if np is not None and kernels == "numpy":
        flat = [r for bucket in slow_assignment for r in bucket]
        if len(flat) >= 64:
            inverse = np.reciprocal(
                np.asarray(flat, dtype=np.float64)).tolist()
            speeds: List[float] = []
            position = 0
            for bucket in slow_assignment:
                end = position + len(bucket)
                speeds.append(sum(inverse[position:end]))
                position = end
            return speeds
    return [sum(1.0 / r for r in bucket) for bucket in slow_assignment]


def _greedy_slow_assignment(rates: Sequence[float], dp: int) -> List[List[float]]:
    """LPT-style greedy: put each slow group on the pipeline with the least
    accumulated harmonic speed contribution (so slow groups spread out)."""
    buckets: List[List[float]] = [[] for _ in range(dp)]
    loads = [0.0] * dp
    for rate in sorted(rates, reverse=True):
        idx = min(range(dp), key=lambda i: (loads[i], len(buckets[i])))
        buckets[idx].append(rate)
        loads[idx] += 1.0 / rate
    return buckets


def _local_search_slow(problem: DivisionProblem,
                       slow_assignment: List[List[float]],
                       fast_counts: List[int],
                       waterfill=_waterfill_fast_groups) -> List[List[float]]:
    """Improve a slow-group assignment by single-group moves (cheap score).

    Moves are applied in place and reverted when they do not improve the
    score, avoiding the legacy kernel's full deep copy of every bucket per
    candidate move.  The per-bucket harmonic speeds are refreshed only for
    the two touched buckets (recomputed from the bucket contents, so they
    stay bit-identical to a from-scratch derivation), and candidate moves
    are scored with the incremental :class:`_RemainderScorer` (preallocated
    workspaces + incumbent-threshold early exit) instead of re-running
    :func:`_cheap_score` from scratch.
    """
    dp = problem.num_pipelines
    buckets = [list(b) for b in slow_assignment]
    base_speed = [sum(1.0 / r for r in b) for b in buckets]
    scorer = _RemainderScorer(problem)
    best = scorer.score(base_speed, fast_counts)
    improved = True
    while improved:
        improved = False
        for src in range(dp):
            for idx in range(len(buckets[src])):
                for dst in range(dp):
                    if dst == src:
                        continue
                    rate = buckets[src].pop(idx)
                    buckets[dst].append(rate)
                    old_src, old_dst = base_speed[src], base_speed[dst]
                    base_speed[src] = sum(1.0 / r for r in buckets[src])
                    base_speed[dst] = sum(1.0 / r for r in buckets[dst])
                    counts = waterfill(problem, buckets, base_speed)
                    feasible = bool(counts) or problem.fast_group_count == 0
                    if problem.fast_group_count == 0:
                        counts = [0] * dp
                    if feasible:
                        score = scorer.score(base_speed, counts,
                                             threshold=best)
                        if score < best - 1e-12:
                            best = score
                            improved = True
                            break  # keep the move
                    buckets[dst].pop()
                    buckets[src].insert(idx, rate)
                    base_speed[src], base_speed[dst] = old_src, old_dst
                if improved:
                    break
            if improved:
                break
    return buckets


def _local_search_slow_prefix(problem: DivisionProblem,
                              slow_assignment: List[List[float]],
                              fast_counts: List[int],
                              waterfill=_waterfill_fast_groups_closed,
                              ) -> List[List[float]]:
    """Array-world variant of :func:`_local_search_slow` (bit-identical).

    Two refinements over the in-place kernel, both provably exact:

    * the source bucket's harmonic speed after popping element ``idx`` is
      resumed from a per-bucket prefix-sum array — the float chain
      ``((0 + a_0) + a_1) + ...`` restarted at ``prefix[idx]`` performs
      the identical sequence of additions as the reference's full
      re-derivation, and is computed once per ``(src, idx)`` instead of
      once per ``(src, idx, dst)``;
    * the destination bucket appends at the end, so its new speed is the
      single addition ``old + 1/rate`` — the same last step the reference
      chain would perform, given the invariant that ``base_speed`` always
      holds the sequential sum of its bucket.

    Water-filling results are memoised on ``(base_speed, bucket lengths)``
    for the duration of the search: the fill reads the buckets only
    through those two vectors (the problem instance is fixed), so a cache
    hit returns the exact list a fresh call would — and after the first
    sweep almost every candidate move re-visits a state the previous
    sweep already filled.

    PR 10 shaves the two remaining scalar tails the 64k profile blamed,
    both exactness-preserving: the per-element reciprocals are hoisted
    out of the O(n²) suffix-resume loop (``1.0 / r`` is a single IEEE
    division either way — precomputing it changes no value and no
    addition order), and the memo key's bucket-length tuple is
    maintained incrementally across the pop/append/revert of each probe
    instead of being re-derived per candidate move.
    """
    dp = problem.num_pipelines
    buckets = [list(b) for b in slow_assignment]
    base_speed = [sum(1.0 / r for r in b) for b in buckets]
    lengths = [len(b) for b in buckets]
    scorer = _RemainderScorer(problem)
    best = scorer.score(base_speed, fast_counts)
    fill_memo: Dict[Tuple[Tuple[float, ...], Tuple[int, ...]], List[int]] = {}

    def memo_waterfill() -> List[int]:
        key = (tuple(base_speed), tuple(lengths))
        counts = fill_memo.get(key)
        if counts is None:
            counts = waterfill(problem, buckets, base_speed)
            fill_memo[key] = counts
        return counts

    improved = True
    while improved:
        improved = False
        for src in range(dp):
            bucket_src = buckets[src]
            inverse = [1.0 / r for r in bucket_src]
            prefix = [0.0]
            for inv in inverse:
                prefix.append(prefix[-1] + inv)
            for idx in range(len(bucket_src)):
                popped_speed = prefix[idx]
                for k in range(idx + 1, len(bucket_src)):
                    popped_speed += inverse[k]
                for dst in range(dp):
                    if dst == src:
                        continue
                    rate = bucket_src.pop(idx)
                    buckets[dst].append(rate)
                    old_src, old_dst = base_speed[src], base_speed[dst]
                    base_speed[src] = popped_speed
                    base_speed[dst] = old_dst + inverse[idx]
                    lengths[src] -= 1
                    lengths[dst] += 1
                    counts = memo_waterfill()
                    feasible = bool(counts) or problem.fast_group_count == 0
                    if problem.fast_group_count == 0:
                        counts = [0] * dp
                    if feasible:
                        score = scorer.score(base_speed, counts,
                                             threshold=best)
                        if score < best - 1e-12:
                            best = score
                            improved = True
                            break  # keep the move
                    buckets[dst].pop()
                    bucket_src.insert(idx, rate)
                    base_speed[src], base_speed[dst] = old_src, old_dst
                    lengths[src] += 1
                    lengths[dst] -= 1
                if improved:
                    break
            if improved:
                break
    return buckets


def _local_search_slow_legacy(problem: DivisionProblem,
                              slow_assignment: List[List[float]],
                              fast_counts: List[int]) -> List[List[float]]:
    """Pre-overhaul reference local search (deep-copies buckets per move)."""
    dp = problem.num_pipelines
    buckets = [list(b) for b in slow_assignment]
    best = _cheap_score(problem, buckets, fast_counts)
    improved = True
    while improved:
        improved = False
        for src in range(dp):
            for idx in range(len(buckets[src])):
                rate = buckets[src][idx]
                for dst in range(dp):
                    if dst == src:
                        continue
                    candidate = [list(b) for b in buckets]
                    candidate[src].pop(idx)
                    candidate[dst].append(rate)
                    counts = _waterfill_fast_groups_legacy(problem, candidate)
                    if not counts and problem.fast_group_count > 0:
                        continue
                    if problem.fast_group_count == 0:
                        counts = [0] * dp
                    score = _cheap_score(problem, candidate, counts)
                    if score < best - 1e-12:
                        buckets, best = candidate, score
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
    return buckets


def total_harmonic_speed(problem: DivisionProblem) -> float:
    """Total harmonic speed ``sum_i s_i`` of a division problem.

    Independent of the division itself: every group contributes ``1/rate``
    no matter which pipeline it lands in.
    """
    speed = 0.0
    if problem.fast_group_count and problem.fast_group_rate > 0:
        speed += problem.fast_group_count / problem.fast_group_rate
    speed += sum(1.0 / rate for rate in problem.slow_group_rates)
    return speed


def division_lower_bound(problem: DivisionProblem) -> float:
    """Provably-sound lower bound on the division objective.

    For any division, ``M = sum_i m_i <= max_i (m_i / s_i) * sum_i s_i``,
    hence ``max_i m_i / s_i >= M / sum_i s_i``.  This is the same bound the
    planner applies through
    :func:`repro.core.assignment.candidate_step_time_bound`, stated on the
    abstract division problem so the pruning soundness tests can check it
    directly against :func:`brute_force_division`.
    """
    speed = total_harmonic_speed(problem)
    if speed <= 0:
        return math.inf
    return problem.total_micro_batches / speed


def division_candidate_bound(problem: DivisionProblem,
                             base_speed: Sequence[float]) -> float:
    """dp-aware lower bound for one slow-group assignment.

    ``base_speed[i]`` is the harmonic speed of the slow groups already
    placed in pipeline ``i``.  Two sound terms, mirroring the planner's
    dp-aware :func:`repro.core.assignment.candidate_step_time_bound`:

    * the assignment-independent ``M / sum_i s_i`` (fast groups contribute
      the same total speed wherever they land);
    * the dp-aware sharpening: some pipeline processes ``m >= ceil(M /
      dp)`` micro-batches, and no pipeline can be faster than its slow
      base plus *all* fast groups, so ``max_i m_i / s_i >= ceil(M / dp) /
      (max_i base_i + F / y_fast)``.

    Both are true for every fast-group water-filling and every integral
    micro-batch split of this assignment, so an assignment whose bound
    cannot reach the current top-``k`` cheap scores can be skipped without
    changing the refined candidate set (see :func:`solve_pipeline_division`).
    """
    bound = division_lower_bound(problem)
    fast_speed = 0.0
    if problem.fast_group_count and problem.fast_group_rate > 0:
        fast_speed = problem.fast_group_count / problem.fast_group_rate
    cap = max(base_speed) + fast_speed if base_speed else fast_speed
    if cap > 0:
        m_max = -(-problem.total_micro_batches // problem.num_pipelines)
        dp_term = m_max / cap
        if dp_term > bound:
            bound = dp_term
    return bound


def _matches_problem(problem: DivisionProblem,
                     assignment: Sequence[Sequence[float]]) -> bool:
    """Whether a warm-start slow assignment is structurally compatible."""
    if len(assignment) != problem.num_pipelines:
        return False
    seeded = sorted(rate for bucket in assignment for rate in bucket)
    return seeded == sorted(problem.slow_group_rates)


def solve_pipeline_division(problem: DivisionProblem,
                            enumeration_limit: int = 2000,
                            refine_top_k: int = 4,
                            legacy_kernels: bool = False,
                            use_minmax_cache: bool = True,
                            warm_start: Optional[Sequence[Sequence[float]]]
                            = None,
                            enable_bound_pruning: bool = True,
                            kernels: str = "python",
                            ) -> DivisionSolution:
    """Timing wrapper around :func:`_solve_pipeline_division`.

    Charges the solve's wall time to the ``division`` bucket of
    :mod:`repro.core.kernel_timing`, minus whatever the nested min-max
    solves already charged to ``minmax`` — the per-kernel breakdown stays
    additive.  See the wrapped function for the solver documentation.
    """
    start = time.perf_counter()
    nested = kernel_timing.peek("minmax")
    try:
        return _solve_pipeline_division(
            problem, enumeration_limit, refine_top_k, legacy_kernels,
            use_minmax_cache, warm_start, enable_bound_pruning, kernels,
        )
    finally:
        elapsed = time.perf_counter() - start
        nested = kernel_timing.peek("minmax") - nested
        kernel_timing.add("division", max(0.0, elapsed - nested))


def _solve_pipeline_division(problem: DivisionProblem,
                             enumeration_limit: int = 2000,
                             refine_top_k: int = 4,
                             legacy_kernels: bool = False,
                             use_minmax_cache: bool = True,
                             warm_start: Optional[Sequence[Sequence[float]]]
                             = None,
                             enable_bound_pruning: bool = True,
                             kernels: str = "python",
                             ) -> DivisionSolution:
    """Solve the pipeline-division MINLP.

    The solver enumerates symmetry-reduced slow-group assignments (falling
    back to a greedy assignment plus local search when there are too many),
    scores every candidate cheaply by harmonic water-filling of the fast
    groups, and refines the ``refine_top_k`` best candidates with a local
    search that moves individual fast groups between pipelines; micro-batches
    are assigned by the exact min-max solver throughout.

    ``enable_bound_pruning`` screens every enumerated assignment with the
    dp-aware :func:`division_candidate_bound` before any water-filling:
    once ``refine_top_k`` assignments have been cheap-scored, an assignment
    whose bound exceeds the ``k``-th best cheap score so far is skipped.
    The bound is a true lower bound on the assignment's cheap score, and
    the cheap-score top-``k`` so far only tightens, so the skip provably
    never changes which assignments reach the refinement pass.  The same
    bound also short-circuits the refinement pass itself: a top-``k``
    candidate whose bound cannot *strictly* beat the incumbent refined
    objective skips its local search outright (this is where the bound
    fires most — as soon as one refinement reaches the provable optimum,
    the remaining ones are skipped).  The returned solution is identical
    with pruning on or off (the equivalence suite asserts it).  Disabled
    automatically with ``legacy_kernels``.

    ``warm_start`` optionally seeds a previous solution's slow-group buckets
    (one list of rates per pipeline).  When the seed still matches the
    problem (same pipeline count, same slow-rate multiset) it replaces the
    greedy starting point of the fallback local search and joins the scored
    candidate pool, so re-planning after a small rate shift starts from the
    incumbent division instead of from scratch; an incompatible seed is
    ignored.

    ``legacy_kernels=True`` selects the pre-overhaul reference kernels
    (rescanning water-filling, deep-copy local search, uncached min-max
    solves); the hot-path benchmark uses it as the "before" configuration.

    ``kernels`` is the planner-wide backend knob.  ``"numpy"`` selects the
    array-world kernels: the closed-form water-filling
    (:func:`_waterfill_fast_groups_closed` — the division solver's win is
    replacing the heap's one-group-at-a-time loop with a proven bulk
    claim; the per-pipeline speed vectors stay python lists because
    ``dp <= 8``) and the prefix-sum local search.  Both are bit-identical
    to the python reference kernels.  ``"legacy"`` is equivalent to
    ``legacy_kernels=True``.
    """
    dp = problem.num_pipelines
    if kernels == "legacy":
        legacy_kernels = True
    if legacy_kernels:
        waterfill = _waterfill_fast_groups_legacy
        use_minmax_cache = False
    elif kernels == "numpy":
        waterfill = _waterfill_fast_groups_closed
    else:
        waterfill = _waterfill_fast_groups
    if warm_start is not None and not _matches_problem(problem, warm_start):
        warm_start = None
    if len(problem.slow_group_rates) > 24:
        # At cluster scales with dozens of slow groups even the truncated
        # enumeration spends most of its time walking the search tree; the
        # greedy + local-search fallback is both faster and equally good
        # there (the groups are dominated by a handful of distinct rates).
        assignments, truncated = [], True
    else:
        assignments, truncated = _enumerate_slow_assignments(
            problem.slow_group_rates, dp, enumeration_limit
        )
    used_fallback = False
    if truncated:
        if warm_start is not None:
            greedy: List[List[float]] = [list(b) for b in warm_start]
        else:
            greedy = _greedy_slow_assignment(problem.slow_group_rates, dp)
        counts = waterfill(problem, greedy)
        if counts or problem.fast_group_count == 0:
            if legacy_kernels:
                greedy = _local_search_slow_legacy(
                    problem, greedy, counts or [0] * dp
                )
            elif kernels == "numpy":
                greedy = _local_search_slow_prefix(
                    problem, greedy, counts or [0] * dp, waterfill=waterfill
                )
            else:
                greedy = _local_search_slow(
                    problem, greedy, counts or [0] * dp, waterfill=waterfill
                )
        assignments = [greedy]
        used_fallback = True
    elif warm_start is not None:
        assignments = [[list(b) for b in warm_start]] + assignments

    # First pass: cheap evaluation (water-filling only) of every candidate.
    # The dp-aware bound screens assignments against the k-th best cheap
    # score so far; skipped assignments provably never reach the top-k.
    scored = []
    evaluated = 0
    pruned = 0
    prune_bounds = enable_bound_pruning and not legacy_kernels
    top_k = max(1, refine_top_k)
    worst_of_best: List[float] = []  # max-heap (negated) of the best scores
    for slow_assignment in assignments:
        base_speed = None
        if prune_bounds:
            base_speed = _base_speed_vector(slow_assignment, kernels)
            if len(worst_of_best) >= top_k and \
                    division_candidate_bound(problem, base_speed) \
                    > -worst_of_best[0] + 1e-9:
                pruned += 1
                continue
        if base_speed is not None:
            fast_counts = waterfill(problem, slow_assignment, base_speed)
        else:
            fast_counts = waterfill(problem, slow_assignment)
        if not fast_counts and problem.fast_group_count > 0:
            continue
        if problem.fast_group_count == 0:
            fast_counts = [0] * dp
            if any(len(b) < problem.min_groups_per_pipeline for b in slow_assignment):
                continue
        obj = _cheap_score(problem, slow_assignment, fast_counts,
                           base_speed=base_speed)
        evaluated += 1
        if math.isinf(obj):
            continue
        scored.append((obj, slow_assignment, list(fast_counts)))
        if prune_bounds:
            if len(worst_of_best) < top_k:
                heapq.heappush(worst_of_best, -obj)
            elif obj < -worst_of_best[0]:
                heapq.heapreplace(worst_of_best, -obj)

    # Second pass: refine only the most promising candidates with local search
    # (moving individual fast groups between pipelines).  The dp-aware bound
    # prunes here too: once the incumbent's objective reaches a candidate's
    # bound, no configuration of that candidate can *strictly* beat it (the
    # bound covers every fast split and every micro-batch split), so its
    # local search is skipped without changing the returned solution.
    scored.sort(key=lambda item: item[0])
    best: Optional[DivisionSolution] = None
    refinements_pruned = 0
    for _, slow_assignment, fast_counts in scored[:refine_top_k]:
        if prune_bounds and best is not None:
            base_speed = _base_speed_vector(slow_assignment, kernels)
            if division_candidate_bound(problem, base_speed) \
                    > best.objective - 1e-12:
                refinements_pruned += 1
                continue
        obj, fast_counts, micro_batches = _local_search_fast(
            problem, slow_assignment, fast_counts, use_minmax_cache
        )
        if math.isinf(obj):
            continue
        if best is None or obj < best.objective - 1e-12:
            best = DivisionSolution(
                fast_groups=list(fast_counts),
                slow_groups=[list(b) for b in slow_assignment],
                micro_batches=list(micro_batches),
                objective=obj,
                candidates_evaluated=evaluated,
                used_fallback=used_fallback,
            )
    if best is None:
        raise ValueError("pipeline division is infeasible for the given problem")
    best.candidates_evaluated = evaluated
    best.candidates_pruned = pruned
    best.refinements_pruned = refinements_pruned
    return best


@dataclass
class PartialDivisionSolution:
    """Result of a per-pipeline partial re-solve.

    ``placements[i]`` lists the pool-group rates placed into pipeline ``i``
    (always empty for untouched pipelines); ``micro_batches`` is the exact
    min-max split over *all* pipelines and ``objective`` its value.
    """

    placements: List[List[float]]
    micro_batches: List[int]
    objective: float
    feasible: bool = True


def repair_pipeline_division(
    kept_speeds: Sequence[float],
    pool_rates: Sequence[float],
    touched: Sequence[int],
    total_micro_batches: int,
    use_minmax_cache: bool = True,
) -> PartialDivisionSolution:
    """Timing wrapper around :func:`_repair_pipeline_division` (see there)."""
    start = time.perf_counter()
    nested = kernel_timing.peek("minmax")
    try:
        return _repair_pipeline_division(
            kept_speeds, pool_rates, touched, total_micro_batches,
            use_minmax_cache,
        )
    finally:
        elapsed = time.perf_counter() - start
        nested = kernel_timing.peek("minmax") - nested
        kernel_timing.add("division", max(0.0, elapsed - nested))


def _repair_pipeline_division(
    kept_speeds: Sequence[float],
    pool_rates: Sequence[float],
    touched: Sequence[int],
    total_micro_batches: int,
    use_minmax_cache: bool = True,
) -> PartialDivisionSolution:
    """Re-solve the division for a handful of touched pipelines only.

    Incremental re-planning keeps most of the incumbent division: only the
    groups of re-grouped nodes (the ``pool``) need a new home, and only the
    ``touched`` pipelines (the ones that previously hosted those nodes'
    groups) may receive them.  ``kept_speeds[i]`` is the harmonic speed of
    the groups pipeline ``i`` keeps in place.

    The placement uses the same machinery as the full solver restricted to
    the touched pipelines — LPT greedy seeding, single-group local search
    scored by largest-remainder rounding — followed by one exact min-max
    micro-batch solve over all pipelines.  The result is a repair, not a
    proof of optimality; the caller (the replan engine) validates it against
    its epsilon budget and falls back to the full planner when it is not
    good enough.
    """
    dp = len(kept_speeds)
    touched = [i for i in touched if 0 <= i < dp]
    placements: List[List[float]] = [[] for _ in range(dp)]
    speeds = [float(s) for s in kept_speeds]
    if pool_rates and not touched:
        return PartialDivisionSolution(
            placements=placements, micro_batches=[0] * dp,
            objective=math.inf, feasible=False,
        )

    # LPT greedy: slowest pool groups first, each onto the currently
    # slowest touched pipeline (mirrors _greedy_slow_assignment).
    for rate in sorted(pool_rates, reverse=True):
        idx = min(touched, key=lambda i: (speeds[i], len(placements[i])))
        placements[idx].append(rate)
        speeds[idx] += 1.0 / rate

    # Single-group moves between touched pipelines, largest-remainder score.
    if len(touched) > 1:
        best = _largest_remainder_objective(speeds, total_micro_batches)
        improved = True
        while improved:
            improved = False
            for src in touched:
                for idx in range(len(placements[src])):
                    for dst in touched:
                        if dst == src:
                            continue
                        rate = placements[src].pop(idx)
                        placements[dst].append(rate)
                        speeds[src] -= 1.0 / rate
                        speeds[dst] += 1.0 / rate
                        score = _largest_remainder_objective(
                            speeds, total_micro_batches
                        )
                        if score < best - 1e-12:
                            best = score
                            improved = True
                            break
                        placements[dst].pop()
                        placements[src].insert(idx, rate)
                        speeds[src] += 1.0 / rate
                        speeds[dst] -= 1.0 / rate
                    if improved:
                        break
                if improved:
                    break

    if any(speed <= 0 for speed in speeds):
        return PartialDivisionSolution(
            placements=placements, micro_batches=[0] * dp,
            objective=math.inf, feasible=False,
        )
    weights = [1.0 / speed for speed in speeds]
    solution = solve_minmax_assignment(weights, total_micro_batches,
                                       use_cache=use_minmax_cache)
    if not solution.feasible:
        return PartialDivisionSolution(
            placements=placements, micro_batches=[0] * dp,
            objective=math.inf, feasible=False,
        )
    return PartialDivisionSolution(
        placements=placements,
        micro_batches=list(solution.values),
        objective=solution.objective,
    )


def brute_force_division(problem: DivisionProblem) -> float:
    """Reference exhaustive solver for tiny instances (used in tests)."""
    dp = problem.num_pipelines
    best = math.inf
    slow = problem.slow_group_rates
    fast = problem.fast_group_count

    fast_splits = [
        split for split in itertools.product(range(fast + 1), repeat=dp)
        if sum(split) == fast
    ]
    slow_assignments = list(itertools.product(range(dp), repeat=len(slow)))
    for slow_choice in slow_assignments:
        buckets: List[List[float]] = [[] for _ in range(dp)]
        for rate, pipeline in zip(slow, slow_choice):
            buckets[pipeline].append(rate)
        for split in fast_splits:
            if any(split[i] + len(buckets[i]) < problem.min_groups_per_pipeline
                   for i in range(dp)):
                continue
            if problem.max_groups_per_pipeline is not None and any(
                    split[i] + len(buckets[i]) > problem.max_groups_per_pipeline
                    for i in range(dp)):
                continue
            obj, _ = _evaluate(problem, buckets, list(split))
            best = min(best, obj)
    return best
