"""Exact solvers for the paper's min-max integer programs (Eq. 2 and Eq. 3).

Both the layer-assignment problem (Eq. 2) and the data-assignment problem
(Eq. 3) have the same structure::

    minimize   max_j  w_j * v_j
    subject to sum_j v_j = TOTAL
               0 <= v_j <= cap_j,  v_j integer

where ``w_j`` are positive weights (group straggling rates, or per-pipeline
optimal stage costs) and ``cap_j`` are optional upper bounds coming from the
memory constraint.  The paper solves these with PuLP; because the structure
is a pure min-max with a single coupling constraint, an exact parametric
search is both simpler and faster:

* for a candidate objective value ``T`` the assignment is feasible iff
  ``sum_j min(floor(T / w_j), cap_j) >= TOTAL``;
* the optimal ``T`` is of the form ``w_j * k`` for some integer ``k``, so a
  binary search over the sorted candidate values finds the exact optimum.

The returned assignment is the lexicographically "balanced" one: each
variable gets the largest value allowed by the optimal ``T``, and the excess
is trimmed from the most expensive (largest ``w_j``) variables first, which
keeps every variable's individual cost no larger than the optimum.

The solver is a planner hot-path kernel (it runs once per candidate stage
ordering and once per micro-batch size), so two optimisations apply:

* the parametric feasibility test is a fused single pass with an early exit
  instead of materialising the trial assignment;
* an opt-in memo (``use_cache=True``) keyed on the *values* of
  ``(weights, total, caps, min_values)`` lets structurally identical
  pipelines (same straggling-rate multiset, different GPU ids) share one
  solve.  The cache is bounded and can be inspected/cleared with
  :func:`minmax_cache_stats` / :func:`clear_minmax_cache`.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compat import np
from ..core import kernel_timing

#: Below this problem size the ndarray round-trip costs more than the
#: python loop it replaces, so the numpy backend delegates to python.
_NUMPY_MIN_SIZE = 32


@dataclass
class MinMaxSolution:
    """Result of a min-max assignment problem."""

    values: List[int]
    objective: float
    feasible: bool


#: Value-keyed memo for ``solve_minmax_assignment(use_cache=True)`` calls.
_SOLUTION_CACHE: Dict[tuple, MinMaxSolution] = {}
_SOLUTION_CACHE_LIMIT = 200_000
_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_minmax_cache() -> None:
    """Drop every memoized solution (and reset the hit/miss counters)."""
    _SOLUTION_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def minmax_cache_stats() -> Dict[str, int]:
    """Diagnostics for the solution memo: size plus hit/miss counters."""
    return {
        "size": len(_SOLUTION_CACHE),
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
    }


def _max_assignable(weights: Sequence[float], caps: Sequence[float],
                    bound: float) -> List[int]:
    """Largest per-variable values whose cost stays within ``bound``."""
    values = []
    for weight, cap in zip(weights, caps):
        if weight <= 0:
            raise ValueError("weights must be positive")
        allowed = math.floor(bound / weight + 1e-9)
        if not math.isinf(cap):
            allowed = min(allowed, int(cap))
        values.append(max(0, allowed))
    return values


def solve_minmax_assignment(
    weights: Sequence[float],
    total: int,
    caps: Optional[Sequence[float]] = None,
    min_values: Optional[Sequence[int]] = None,
    use_cache: bool = False,
    kernels: str = "python",
    prune_above: Optional[float] = None,
) -> MinMaxSolution:
    """Solve ``min max_j w_j v_j  s.t.  sum v_j = total, 0 <= v_j <= cap_j``.

    Parameters
    ----------
    weights:
        Positive per-variable unit costs (``y_{i,j}`` or ``o_i`` in the paper).
        Variables with infinite weight can only receive 0.
    total:
        The total amount to distribute (``L`` layers or ``B/b`` micro-batches).
    caps:
        Optional per-variable upper bounds (memory-derived layer caps).
    min_values:
        Optional per-variable lower bounds (e.g. force at least one layer per
        stage when a stage may not be empty).
    use_cache:
        Memoize the solution keyed on the argument values.  Safe because the
        solver is a pure function; callers receive a fresh ``values`` list.
        The key deliberately excludes ``kernels``: the backends are
        bit-identical, so structurally identical solves share one entry
        regardless of backend.
    kernels:
        ``"numpy"`` vectorizes the parametric feasibility test and the
        final snap over ndarrays (bit-identical to the python loops —
        the arithmetic per element is the same IEEE-754 expression, and
        the demand comparison is done in exact int64).  Any other value
        keeps the pure-python reference loops.  Small problems always
        use python regardless.
    prune_above:
        Optional threshold from a caller that only cares about solutions
        with objective at or below it (e.g. the stage-ordering search's
        incumbent bottleneck).  When one parametric feasibility probe
        proves the optimum exceeds the threshold, the solve is abandoned
        and an infeasible sentinel returned — provably the same outcome
        the caller's "does it beat the incumbent?" comparison would
        reach, at the cost of one probe instead of a full bisection.
        Pruned outcomes are never cached (the memo only ever holds full
        solutions), and a cache hit returns the full solution regardless
        of the threshold.

    Returns
    -------
    MinMaxSolution
        ``values`` sums to ``total`` when feasible; ``objective`` is the
        minimal possible value of ``max_j w_j v_j``.
    """
    if use_cache:
        key = (
            tuple(weights), total,
            tuple(caps) if caps is not None else None,
            tuple(min_values) if min_values is not None else None,
        )
        cached = _SOLUTION_CACHE.get(key)
        if cached is not None:
            _CACHE_STATS["hits"] += 1
            return MinMaxSolution(values=list(cached.values),
                                  objective=cached.objective,
                                  feasible=cached.feasible)
        _CACHE_STATS["misses"] += 1
        start = time.perf_counter()
        solution = _solve_minmax(weights, total, caps, min_values, kernels,
                                 prune_above)
        kernel_timing.add("minmax", time.perf_counter() - start)
        if solution is None:
            return MinMaxSolution(values=[0] * len(weights),
                                  objective=math.inf, feasible=False)
        if len(_SOLUTION_CACHE) >= _SOLUTION_CACHE_LIMIT:
            _SOLUTION_CACHE.clear()
        _SOLUTION_CACHE[key] = MinMaxSolution(values=list(solution.values),
                                              objective=solution.objective,
                                              feasible=solution.feasible)
        return solution
    start = time.perf_counter()
    solution = _solve_minmax(weights, total, caps, min_values, kernels,
                             prune_above)
    kernel_timing.add("minmax", time.perf_counter() - start)
    if solution is None:
        return MinMaxSolution(values=[0] * len(weights), objective=math.inf,
                              feasible=False)
    return solution


def _solve_minmax(
    weights: Sequence[float],
    total: int,
    caps: Optional[Sequence[float]] = None,
    min_values: Optional[Sequence[int]] = None,
    kernels: str = "python",
    prune_above: Optional[float] = None,
) -> Optional[MinMaxSolution]:
    n = len(weights)
    if n == 0:
        return MinMaxSolution(values=[], objective=0.0, feasible=total == 0)
    if total < 0:
        raise ValueError("total must be non-negative")
    caps = list(caps) if caps is not None else [math.inf] * n
    mins = list(min_values) if min_values is not None else [0] * n
    if len(caps) != n or len(mins) != n:
        raise ValueError("caps/min_values must match the number of weights")

    use_np = kernels == "numpy" and np is not None and n >= _NUMPY_MIN_SIZE
    if use_np:
        # Vectorized twin of the sequential validation below, preserving
        # its first-violation semantics: the loop reacts to the *earliest*
        # offending element, and within an element checks the negative
        # minimum (raise) before the cap/weight conditions (infeasible).
        w_arr0 = np.asarray(weights, dtype=np.float64)
        cap_arr0 = np.asarray(caps, dtype=np.float64)
        mins_arr0 = np.asarray(mins, dtype=np.float64)
        w_inf = np.isinf(w_arr0)
        neg_min = mins_arr0 < 0
        trigger = neg_min \
            | (~np.isinf(cap_arr0) & (cap_arr0 < mins_arr0)) \
            | (w_inf & (mins_arr0 > 0))
        if bool(trigger.any()):
            if neg_min[int(np.argmax(trigger))]:
                raise ValueError("min_values must be non-negative")
            return MinMaxSolution(values=[0] * n, objective=math.inf,
                                  feasible=False)

        if sum(mins) > total:
            return MinMaxSolution(values=[0] * n, objective=math.inf,
                                  feasible=False)

        eff_caps_arr = np.where(w_inf, 0.0, cap_arr0)
        # The reference accumulates eff_caps sequentially; a different
        # summation order is only observable through the ``< total``
        # comparison when the sum is non-integral and lands within
        # rounding distance of ``total`` — integral caps (the planner's
        # layer caps always are) sum exactly in any order.
        if bool((np.floor(eff_caps_arr[np.isfinite(eff_caps_arr)])
                 == eff_caps_arr[np.isfinite(eff_caps_arr)]).all()):
            max_total = float(eff_caps_arr.sum())
        else:
            max_total = 0.0
            for cap in eff_caps_arr.tolist():
                max_total += cap
                if math.isinf(max_total):
                    break
        if max_total < total:
            return MinMaxSolution(values=[0] * n, objective=math.inf,
                                  feasible=False)
        if total == 0:
            if bool((mins_arr0 > 0).any()):
                return MinMaxSolution(values=[0] * n, objective=math.inf,
                                      feasible=False)
            return MinMaxSolution(values=[0] * n, objective=0.0,
                                  feasible=True)
        if bool((w_arr0 <= 0).any()):
            raise ValueError("weights must be positive")
        finite_w = w_arr0[~w_inf]
        if finite_w.size == 0:
            raise ValueError("max() arg is an empty sequence")
        lo, hi = 0.0, float(finite_w.max()) * total
        eff_caps = eff_caps_arr  # consumed by the numpy closures only
        trivial_mins = not bool(mins_arr0.any())
    else:
        for weight, cap, low in zip(weights, caps, mins):
            if low < 0:
                raise ValueError("min_values must be non-negative")
            if not math.isinf(cap) and cap < low:
                return MinMaxSolution(values=[0] * n, objective=math.inf,
                                      feasible=False)
            if math.isinf(weight) and low > 0:
                return MinMaxSolution(values=[0] * n, objective=math.inf,
                                      feasible=False)

        if sum(mins) > total:
            # The exact-sum constraint is unsatisfiable: the lower bounds
            # alone exceed the amount to distribute.
            return MinMaxSolution(values=[0] * n, objective=math.inf,
                                  feasible=False)

        # Effective capacity: infinite-weight variables can only take their
        # minimum (which must be zero, checked above).
        eff_caps = []
        for weight, cap in zip(weights, caps):
            if math.isinf(weight):
                eff_caps.append(0.0)
            else:
                eff_caps.append(cap)

        max_total = 0.0
        for cap in eff_caps:
            max_total += cap
            if math.isinf(max_total):
                break
        if max_total < total:
            return MinMaxSolution(values=[0] * n, objective=math.inf,
                                  feasible=False)
        if total == 0:
            if any(m > 0 for m in mins):
                # All-zero is forced by total == 0 but minimums require more.
                return MinMaxSolution(values=[0] * n, objective=math.inf,
                                      feasible=False)
            return MinMaxSolution(values=[0] * n, objective=0.0,
                                  feasible=True)

        # Candidate objective values are w_j * k for k in [1, total]; binary
        # search over k per weight is equivalent to a binary search on the
        # sorted union.
        lo, hi = 0.0, max(w for w in weights if not math.isinf(w)) * total

        # The fused closures below divide by the weights directly, so the
        # legacy positive-weight contract (_max_assignable's ValueError)
        # must be enforced before the search starts.
        for weight in weights:
            if weight <= 0:
                raise ValueError("weights must be positive")
        trivial_mins = not any(mins)

    # Fused feasibility test: single pass, no trial-assignment list, early
    # exit once the running total covers the demand.  The arithmetic matches
    # _max_assignable exactly so the snap below sees consistent floors.
    floor = math.floor

    if use_np:
        # Vectorized twins of the python closures below.  Per element the
        # float arithmetic is the exact same IEEE-754 expression
        # (``floor(bound / w + 1e-9)`` then the cap clamp — for the
        # non-negative caps that survive validation ``int(cap)`` equals
        # ``floor(cap)``, and an integral ``allowed <= cap`` iff
        # ``allowed <= floor(cap)``).  The demand comparison clips each
        # element to ``total`` first — any single element >= total decides
        # the comparison on its own — so the sum fits int64 exactly even
        # when near-zero weights blow individual floors up to ~1e16.
        w_arr = w_arr0
        cap_arr = np.floor(eff_caps_arr)
        mins_arr = mins_arr0
        total_f = float(total)
        # One scratch buffer shared by the ~64 bisection probes: every op
        # below writes through ``out=``, so a probe allocates nothing.
        # After the 0/total clip each element is an integral float bounded
        # by ``total``, so the float sum is exact (n * total << 2**53) and
        # compares to ``total`` exactly like the int64 cast-and-sum did.
        scratch = np.empty_like(w_arr)

        if trivial_mins:
            def feasible_for(bound: float) -> bool:
                np.divide(bound, w_arr, out=scratch)
                np.add(scratch, 1e-9, out=scratch)
                np.floor(scratch, out=scratch)
                np.minimum(scratch, cap_arr, out=scratch)
                np.maximum(scratch, 0.0, out=scratch)
                np.minimum(scratch, total_f, out=scratch)
                return float(scratch.sum()) >= total
        else:
            def feasible_for(bound: float) -> bool:
                np.divide(bound, w_arr, out=scratch)
                np.add(scratch, 1e-9, out=scratch)
                np.floor(scratch, out=scratch)
                np.minimum(scratch, cap_arr, out=scratch)
                np.maximum(scratch, 0.0, out=scratch)
                if bool((scratch < mins_arr).any()):
                    return False
                np.minimum(scratch, total_f, out=scratch)
                return float(scratch.sum()) >= total

        def max_assignable(bound: float) -> List[int]:
            allowed = np.floor(bound / w_arr + 1e-9)
            np.minimum(allowed, cap_arr, out=allowed)
            np.maximum(allowed, 0.0, out=allowed)
            return allowed.astype(np.int64).tolist()
    else:
        pairs = list(zip(weights, eff_caps))
        if trivial_mins:
            def feasible_for(bound: float) -> bool:
                assigned = 0
                for weight, cap in pairs:
                    allowed = floor(bound / weight + 1e-9)
                    if allowed > cap:
                        allowed = int(cap)
                    if allowed > 0:
                        assigned += allowed
                        if assigned >= total:
                            return True
                return assigned >= total
        else:
            def feasible_for(bound: float) -> bool:
                assigned = 0
                for (weight, cap), low in zip(pairs, mins):
                    allowed = floor(bound / weight + 1e-9)
                    if allowed > cap:
                        allowed = int(cap)
                    if allowed < 0:
                        allowed = 0
                    if allowed < low:
                        return False
                    assigned += allowed
                return assigned >= total

        def max_assignable(bound: float) -> List[int]:
            return _max_assignable(weights, eff_caps, bound)

    if not feasible_for(hi):
        return MinMaxSolution(values=[0] * n, objective=math.inf, feasible=False)

    # Threshold probe: any assignment achieving objective ``o`` satisfies
    # ``v_j <= floor(o / w_j) <= floor(o / w_j + 1e-9)``, so an infeasible
    # probe at ``prune_above`` proves every achievable objective exceeds
    # it — the full bisection cannot produce a winner below the caller's
    # threshold and is skipped wholesale (``None``, not cached).
    if prune_above is not None and prune_above > 0 \
            and not feasible_for(prune_above):
        return None

    # Binary search on the continuous bound, then snap to the exact discrete
    # optimum (the bound only matters through floor(bound / w_j)).  Once a
    # midpoint reproduces the endpoint it would replace, the interval is a
    # float fixed point: every further iteration recomputes the same mid
    # and rewrites the same endpoint, so breaking is bit-identical to
    # finishing all 64 rounds.
    for _ in range(64):
        mid = (lo + hi) / 2.0
        if feasible_for(mid):
            if hi == mid:
                break
            hi = mid
        else:
            if lo == mid:
                break
            lo = mid

    if use_np:
        def snap_objective(vals: List[int]) -> float:
            # w * float(v) is the same IEEE-754 product the scalar
            # expression computes, and max over the positive entries is
            # order-independent — bit-identical to the genexpr twin.
            v_arr = np.asarray(vals, dtype=np.float64)
            costs = w_arr[v_arr > 0] * v_arr[v_arr > 0]
            return float(costs.max()) if costs.size else 0.0
    else:
        def snap_objective(vals: List[int]) -> float:
            return max(
                (w * v for w, v in zip(weights, vals) if v > 0), default=0.0
            )

    # Snap: the achieved objective is determined by the actual assignment.
    values = max_assignable(hi)
    values = _trim_to_total(values, weights, mins, total)
    objective = snap_objective(values)

    # The objective of the final integral assignment can be slightly below the
    # searched bound; re-verify optimality by trying to beat it.
    improved = True
    while improved:
        improved = False
        tighter = objective * (1.0 - 1e-12)
        if tighter <= 0:
            break
        if feasible_for(tighter - 1e-9):
            candidate = max_assignable(tighter - 1e-9)
            candidate = _trim_to_total(candidate, weights, mins, total)
            cand_obj = snap_objective(candidate)
            if cand_obj < objective - 1e-12:
                values, objective = candidate, cand_obj
                improved = True
    return MinMaxSolution(values=values, objective=objective, feasible=True)


def _trim_to_total(values: List[int], weights: Sequence[float],
                   mins: Sequence[int], total: int) -> List[int]:
    """Reduce an over-full assignment down to exactly ``total``.

    Excess units are removed from the variables whose *current* cost
    (``w_j * v_j``) is largest, which never increases the max and keeps the
    assignment balanced.  Lower bounds are respected.

    Selection runs on a max-heap keyed ``(-cost, index)``: each pop yields
    the largest current cost, earliest index on exact float ties — the same
    variable the reference linear scan (strict ``>`` keeps the first
    maximum) would pick, so the removal sequence and the final values are
    bit-identical while the per-unit work drops from O(n) to O(log n).
    Only the popped variable's cost changes between removals, so every
    entry still in the heap remains current.
    """
    values = list(values)
    excess = sum(values) - total
    if excess < 0:
        raise ValueError("assignment does not cover the total")
    if excess == 0:
        return values
    heap = []
    for idx, (weight, value) in enumerate(zip(weights, values)):
        if value <= mins[idx]:
            continue
        cost = weight * value if not math.isinf(weight) else math.inf
        heap.append((-cost, idx))
    heapq.heapify(heap)
    while excess > 0:
        if not heap:
            raise RuntimeError("cannot trim assignment to the requested total")
        _, idx = heapq.heappop(heap)
        values[idx] -= 1
        excess -= 1
        if values[idx] > mins[idx]:
            weight = weights[idx]
            cost = weight * values[idx] if not math.isinf(weight) else math.inf
            heapq.heappush(heap, (-cost, idx))
    return values


def _trim_to_total_reference(values: List[int], weights: Sequence[float],
                             mins: Sequence[int], total: int) -> List[int]:
    """Pre-overhaul linear-scan trim, kept as the equivalence-test oracle."""
    values = list(values)
    excess = sum(values) - total
    if excess < 0:
        raise ValueError("assignment does not cover the total")
    while excess > 0:
        best_idx, best_cost = -1, -1.0
        for idx, (weight, value) in enumerate(zip(weights, values)):
            if value <= mins[idx]:
                continue
            cost = weight * value if not math.isinf(weight) else math.inf
            if cost > best_cost:
                best_cost, best_idx = cost, idx
        if best_idx < 0:
            raise RuntimeError("cannot trim assignment to the requested total")
        shrink = min(excess, values[best_idx] - mins[best_idx], 1)
        values[best_idx] -= shrink
        excess -= shrink
    return values


def brute_force_minmax(
    weights: Sequence[float],
    total: int,
    caps: Optional[Sequence[float]] = None,
) -> float:
    """Reference exhaustive solver used by the test-suite (tiny inputs only)."""
    n = len(weights)
    caps = list(caps) if caps is not None else [math.inf] * n
    best = math.inf

    def recurse(idx: int, remaining: int, current_max: float) -> None:
        nonlocal best
        if current_max >= best:
            return
        if idx == n - 1:
            cap = caps[idx]
            if not math.isinf(cap) and remaining > cap:
                return
            if math.isinf(weights[idx]) and remaining > 0:
                return
            cost = weights[idx] * remaining if remaining > 0 else 0.0
            best = min(best, max(current_max, cost))
            return
        upper = remaining if math.isinf(caps[idx]) else min(remaining, int(caps[idx]))
        if math.isinf(weights[idx]):
            upper = 0
        for value in range(upper + 1):
            cost = weights[idx] * value if value > 0 else 0.0
            recurse(idx + 1, remaining - value, max(current_max, cost))

    if n == 0:
        return 0.0 if total == 0 else math.inf
    recurse(0, total, 0.0)
    return best
