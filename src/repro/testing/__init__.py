"""Deterministic fault-injection utilities for the planning service.

Test-support code that ships with the package (so examples and
benchmarks can use it too), not test cases themselves — those live under
``tests/``.
"""

from .faults import (
    FAULT_CACHE_CORRUPTION,
    FAULT_CLOCK_SKEW,
    FAULT_KINDS,
    FAULT_PLANNER_EXCEPTION,
    FAULT_WORKER_CRASH,
    FakeClock,
    FaultInjector,
    FaultSchedule,
    InjectedPlannerError,
    PlannedFault,
    corrupt_solution_cache,
    hang_sweep_worker,
    kill_sweep_worker,
    storm_states,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_WORKER_CRASH",
    "FAULT_PLANNER_EXCEPTION",
    "FAULT_CACHE_CORRUPTION",
    "FAULT_CLOCK_SKEW",
    "FakeClock",
    "FaultInjector",
    "FaultSchedule",
    "InjectedPlannerError",
    "PlannedFault",
    "corrupt_solution_cache",
    "hang_sweep_worker",
    "kill_sweep_worker",
    "storm_states",
]
