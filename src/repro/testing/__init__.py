"""Test-support utilities that ship with the package.

Deterministic fault injection for the planning service (``faults``) and
old-vs-new kernel comparison assertions (``comparison``) — support code
that examples and benchmarks can use too, not test cases themselves;
those live under ``tests/``.
"""

from .comparison import (
    assert_kernel_equivalent,
    assert_plans_identical,
    plan_signature,
)
from .faults import (
    FAULT_CACHE_CORRUPTION,
    FAULT_CLOCK_SKEW,
    FAULT_KINDS,
    FAULT_PLANNER_EXCEPTION,
    FAULT_WORKER_CRASH,
    FakeClock,
    FaultInjector,
    FaultSchedule,
    InjectedPlannerError,
    PlannedFault,
    corrupt_solution_cache,
    hang_sweep_worker,
    kill_sweep_worker,
    storm_states,
)

__all__ = [
    "assert_kernel_equivalent",
    "assert_plans_identical",
    "plan_signature",
    "FAULT_KINDS",
    "FAULT_WORKER_CRASH",
    "FAULT_PLANNER_EXCEPTION",
    "FAULT_CACHE_CORRUPTION",
    "FAULT_CLOCK_SKEW",
    "FakeClock",
    "FaultInjector",
    "FaultSchedule",
    "InjectedPlannerError",
    "PlannedFault",
    "corrupt_solution_cache",
    "hang_sweep_worker",
    "kill_sweep_worker",
    "storm_states",
]
