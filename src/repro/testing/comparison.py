"""Old-vs-new comparison assertions for kernel-backend equivalence.

The PR-7 array-world kernels are only acceptable if they are *bit-identical*
to the reference python kernels: every plan field, every float.  These
helpers centralize that check with readable diffs so equivalence tests and
benchmarks stop re-implementing ad-hoc signature tuples.

``assert_plans_identical`` compares two materialized plans field by field
and raises one AssertionError listing every mismatch.  ``assert_kernel
_equivalent`` goes one level up: it plans the same (rates, tp, dp) instance
once per kernel backend and asserts the outcomes match exactly — including
the case where every backend agrees the instance is infeasible.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.topology import Cluster, make_cluster
from ..core.costmodel import KERNEL_BACKENDS, MalleusCostModel
from ..models.presets import paper_task
from ..models.spec import TrainingTask

__all__ = [
    "assert_kernel_equivalent",
    "assert_plans_identical",
    "plan_signature",
]


def plan_signature(plan) -> tuple:
    """Canonical structural fingerprint of a plan.

    Stage GPU sets are sorted (membership, not wire order, is what the
    solvers decide); everything else — layer counts, micro-batch shares,
    pipeline order — is taken verbatim.  Two plans with equal signatures
    describe the same parallelization.
    """
    return (
        plan.micro_batch_size,
        tuple(
            (
                pipeline.num_micro_batches,
                tuple(
                    (tuple(sorted(stage.group.gpu_ids)), stage.num_layers)
                    for stage in pipeline.stages
                ),
            )
            for pipeline in plan.pipelines
        ),
        tuple(sorted(plan.removed_gpus)),
    )


def _diff_plans(actual, expected, actual_label: str,
                expected_label: str) -> List[str]:
    """Collect human-readable field mismatches between two plans."""
    diffs: List[str] = []

    def check(field: str, a, b) -> None:
        if a != b:
            diffs.append(f"{field}: {actual_label}={a!r} "
                         f"{expected_label}={b!r}")

    check("micro_batch_size", actual.micro_batch_size,
          expected.micro_batch_size)
    check("num_layers", actual.num_layers, expected.num_layers)
    check("global_batch_size", actual.global_batch_size,
          expected.global_batch_size)
    check("dp_degree", actual.dp_degree, expected.dp_degree)
    check("removed_gpus", sorted(actual.removed_gpus),
          sorted(expected.removed_gpus))
    # Exact float comparison on purpose: the kernel contract is
    # bit-identity, not tolerance.
    check("estimated_step_time", actual.estimated_step_time,
          expected.estimated_step_time)
    common = min(len(actual.pipelines), len(expected.pipelines))
    for i in range(common):
        pa, pe = actual.pipelines[i], expected.pipelines[i]
        check(f"pipelines[{i}].num_micro_batches",
              pa.num_micro_batches, pe.num_micro_batches)
        stages = min(len(pa.stages), len(pe.stages))
        if len(pa.stages) != len(pe.stages):
            check(f"pipelines[{i}].pp_degree",
                  len(pa.stages), len(pe.stages))
        for j in range(stages):
            sa, se = pa.stages[j], pe.stages[j]
            check(f"pipelines[{i}].stages[{j}].num_layers",
                  sa.num_layers, se.num_layers)
            check(f"pipelines[{i}].stages[{j}].gpu_ids",
                  tuple(sorted(sa.group.gpu_ids)),
                  tuple(sorted(se.group.gpu_ids)))
    return diffs


def assert_plans_identical(actual, expected, actual_label: str = "actual",
                           expected_label: str = "expected") -> None:
    """Assert two :class:`ParallelizationPlan` objects match exactly.

    On mismatch raises a single AssertionError listing *every* differing
    field (``pipelines[i].stages[j].…`` paths included), so a failing
    equivalence test shows the whole divergence at once instead of the
    first unequal tuple element.
    """
    if actual is None and expected is None:
        return
    if actual is None or expected is None:
        raise AssertionError(
            f"plan presence differs: {actual_label}="
            f"{'None' if actual is None else 'plan'} "
            f"{expected_label}={'None' if expected is None else 'plan'}"
        )
    diffs = _diff_plans(actual, expected, actual_label, expected_label)
    if diffs:
        listing = "\n  ".join(diffs)
        raise AssertionError(
            f"plans differ ({actual_label} vs {expected_label}):\n  {listing}"
        )


def assert_kernel_equivalent(
    rates: Mapping[int, float],
    tp: int,
    dp: Optional[int],
    *,
    backends: Sequence[str] = ("python", "numpy"),
    task: Optional[TrainingTask] = None,
    cluster: Optional[Cluster] = None,
    global_batch_size: int = 16,
    model: str = "32b",
    micro_batch_candidates: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Plan one instance per kernel backend and assert identical outcomes.

    ``rates`` maps GPU id to straggling rate; when ``cluster`` is omitted
    the ids must be the contiguous range ``0..len(rates)-1`` and a cluster
    of ``tp``-GPU nodes is synthesized around them.  ``dp=None`` lets each
    planner sweep its own DP candidates — the sweeps must still agree.

    All backends must agree on feasibility; when feasible, the plans must
    be identical field by field (:func:`assert_plans_identical`) and the
    step-time estimates exactly equal.  Returns the per-backend
    :class:`~repro.core.planner.PlanningResult` map for further checks.
    """
    from ..core.planner import MalleusPlanner

    for backend in backends:
        if backend not in KERNEL_BACKENDS:
            raise ValueError(f"unknown kernel backend {backend!r}; "
                             f"expected one of {KERNEL_BACKENDS}")
    if cluster is None:
        ids = sorted(rates)
        if ids != list(range(len(ids))):
            raise ValueError(
                "rates must cover the contiguous GPU ids 0..n-1 when no "
                "cluster is supplied"
            )
        if len(ids) % tp != 0:
            raise ValueError(
                f"{len(ids)} GPUs do not divide into nodes of {tp}"
            )
        cluster = make_cluster(num_nodes=len(ids) // tp, gpus_per_node=tp)
    if task is None:
        task = paper_task(model, global_batch_size=global_batch_size)

    results: Dict[str, object] = {}
    for backend in backends:
        legacy = backend == "legacy"
        cost_model = MalleusCostModel(task.model, cluster, kernels=backend)
        planner = MalleusPlanner(
            task, cluster, cost_model=cost_model, tp_candidates=(tp,),
            legacy_kernels=legacy, kernels=backend,
        )
        results[backend] = planner.plan(
            dict(rates), dp=dp,
            micro_batch_candidates=micro_batch_candidates,
        )

    reference = backends[0]
    ref = results[reference]
    for backend in backends[1:]:
        res = results[backend]
        if res.feasible != ref.feasible:
            raise AssertionError(
                f"feasibility differs: {reference}={ref.feasible} "
                f"{backend}={res.feasible} for tp={tp} dp={dp} "
                f"n={len(rates)}"
            )
        if not ref.feasible:
            continue
        if res.estimated_step_time != ref.estimated_step_time:
            raise AssertionError(
                f"estimated_step_time differs: {reference}="
                f"{ref.estimated_step_time!r} {backend}="
                f"{res.estimated_step_time!r} for tp={tp} dp={dp}"
            )
        assert_plans_identical(res.plan, ref.plan, actual_label=backend,
                               expected_label=reference)
    return results
